"""Spanner algebra: combining extractions with join, union and projection.

Run with::

    python examples/algebra_join.py

Builds the algebra expression ``π_{name,email}( names ⋈ emails )`` over two
independent regex atoms, compiles it into a single deterministic sequential
eVA (Propositions 4.4–4.6 of the paper) and evaluates it with the
constant-delay algorithm.  The same expression is also evaluated the naive
way — each atom separately, operators applied on materialized mapping sets —
to show that both routes agree.
"""

from __future__ import annotations

from repro import Spanner
from repro.algebra.compile import evaluate_expression_setwise
from repro.algebra.expressions import Atom
from repro.workloads.documents import contact_document
from repro.workloads.spanners import contact_expression, figure1_document


def main() -> None:
    # --- the Figure 1 document -------------------------------------------------
    document = figure1_document()
    expression = contact_expression()
    print("algebra expression:", expression)
    print()

    spanner = Spanner.from_expression(expression)
    rows = spanner.extract(document)
    print(f"evaluated over the Figure 1 document ({len(rows)} rows):")
    for row in rows:
        print(f"  {row}")
    print()

    setwise = evaluate_expression_setwise(expression, document.text)
    assert setwise == set(spanner.evaluate(document))
    print("set-level evaluation agrees with the compiled automaton ✔")
    print()

    # --- union and projection on a larger document -----------------------------
    larger = contact_document(30, seed=1)
    emails_or_phones = (
        Atom(r"(.*<)contact{[a-z]+@[a-z.]+}(>.*)?")
        | Atom(r"(.*<)contact{[0-9]+-[0-9]+}(>.*)?")
    )
    union_spanner = Spanner.from_expression(emails_or_phones)
    contacts = sorted(row["contact"] for row in union_spanner.extract(larger))
    print(f"union spanner over {len(larger)} characters: {len(contacts)} contacts")
    print("  sample:", contacts[:5])

    stats = union_spanner.statistics(larger)
    print(
        f"compiled union automaton: {stats.num_states} states, "
        f"{stats.num_transitions} transitions, deterministic={stats.deterministic}"
    )


if __name__ == "__main__":
    main()
