"""Log analysis: extracting structured fields from a synthetic server log.

Run with::

    python examples/log_analysis.py [num_lines]

Shows two spanners over the same log document:

* a field extractor pulling the worker id and message of every ERROR line,
* a "gap" spanner extracting what lies between two anchor keywords,

and demonstrates the constant-delay enumeration on a spanner with many
outputs (all pairs of timestamps on the same line).
"""

from __future__ import annotations

import sys

from repro import Spanner
from repro.enumeration.enumerate import delay_profile
from repro.workloads.documents import server_log
from repro.workloads.spanners import keyword_pair_pattern


def main(num_lines: int = 100) -> None:
    document = server_log(num_lines, seed=7, error_rate=0.3)
    print(f"log document: {num_lines} lines, {len(document)} characters")
    print("first lines:")
    for _span, line in list(document.lines())[:3]:
        print(f"  {line}")
    print()

    # 1. Structured extraction of every ERROR line.
    error_spanner = Spanner.from_regex(
        r".*ERROR worker-(id{[0-9]}) (msg{[a-z 0-9]+})(\n.*)?"
    )
    errors = error_spanner.extract(document)
    print(f"ERROR lines extracted: {len(errors)}")
    for row in errors[:5]:
        print(f"  worker {row['id']}: {row['msg']}")
    print()

    # 2. Keyword-gap extraction: what appears between "worker-" and a
    #    following " timeout"?
    gap_spanner = Spanner.from_regex(keyword_pair_pattern("ERROR worker-", " timeout"))
    gaps = {row["gap"] for row in gap_spanner.extract(document)}
    print(f"workers that timed out: {sorted(gaps) if gaps else 'none'}")
    print()

    # 3. Constant-delay enumeration on a large output: every span between
    #    two colons (all time fields, quadratically many combinations).
    pair_spanner = Spanner.from_regex(".*:(pair{[0-9:]*}):.*")
    result = pair_spanner.preprocess(document)
    total = result.count()
    delays = delay_profile(result, limit=min(total, 1000))
    if delays:
        mean_delay = sum(delays) / len(delays)
        print(
            f"time-field spanner: {total} outputs, "
            f"mean delay {mean_delay * 1e6:.1f}µs over the first {len(delays)} outputs, "
            f"max {max(delays) * 1e6:.1f}µs"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
