"""Counting spanner outputs and the Census reduction (Section 5).

Run with::

    python examples/census_counting.py

Demonstrates Algorithm 3 (counting in O(|A| × |d|) for deterministic
sequential eVA) and the parsimonious reduction of Theorem 5.2 from the
Census problem — counting the words of a given length accepted by an NFA —
to counting the outputs of a functional VA.
"""

from __future__ import annotations

import time

from repro import Spanner
from repro.counting.census import CensusInstance
from repro.workloads.documents import dna_sequence
from repro.workloads.spanners import nested_capture_regex, random_census_nfa


def main() -> None:
    # --- Algorithm 3 on a spanner with a quadratic output ---------------------
    document = dna_sequence(3000, seed=9)
    spanner = Spanner.from_regex(nested_capture_regex(1))

    start = time.perf_counter()
    count = spanner.count(document)
    seconds = time.perf_counter() - start
    print(
        f"Algorithm 3: {count} output mappings over a {len(document)}-character "
        f"document counted in {seconds:.3f}s"
    )
    print()

    # --- the Census reduction (Theorem 5.2) -----------------------------------
    nfa = random_census_nfa(num_states=5, alphabet="ab", density=0.4, seed=5)
    print(f"random NFA: {nfa.num_states} states, {nfa.num_transitions} transitions")
    for length in range(2, 7):
        instance = CensusInstance(nfa, length)
        automaton, census_document = instance.to_spanner()
        direct = instance.solve_directly()
        via_spanner = instance.solve_via_spanner()
        assert direct == via_spanner
        print(
            f"  length {length}: {direct} accepted words  "
            f"(reduction: VA with {automaton.num_states} states over a "
            f"{len(census_document)}-character document, spanner count = {via_spanner})"
        )
    print()
    print(
        "The reduction is parsimonious: counting the spanner's outputs solves "
        "Census, which is why counting for non-deterministic functional VA is "
        "SpanL-complete (Theorem 5.2)."
    )


if __name__ == "__main__":
    main()
