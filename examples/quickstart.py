"""Quickstart: evaluate a document spanner with constant-delay enumeration.

Run with::

    python examples/quickstart.py

The example builds the contact-extraction spanner of the paper's Example 2.1,
evaluates it over the Figure 1 document, and shows the three evaluation modes
of the public API: full evaluation, lazy (constant-delay) enumeration, and
output counting without enumeration.
"""

from __future__ import annotations

from repro import Spanner
from repro.workloads.spanners import contact_pattern, figure1_document


def main() -> None:
    document = figure1_document()
    print(f"document ({len(document)} characters): {document.text!r}")
    print()

    spanner = Spanner.from_regex(contact_pattern())
    print(f"spanner variables: {sorted(spanner.variables())}")
    print()

    # 1. Materialized evaluation: a list of mappings (variable -> span).
    print("output mappings (paper notation):")
    for mapping in spanner.evaluate(document):
        print(f"  {mapping.paper_notation()}")
    print()

    # 2. The extracted text, the most convenient form for applications.
    print("extracted records:")
    for row in spanner.extract(document):
        print(f"  {row}")
    print()

    # 3. Lazy enumeration: mappings are produced one by one with constant
    #    delay after a single linear pass over the document.
    first = next(spanner.enumerate(document))
    print(f"first mapping from the lazy enumeration: {first.paper_notation()}")

    # 4. Counting without enumerating (Algorithm 3 of the paper).
    print(f"number of outputs (Algorithm 3): {spanner.count(document)}")

    # 5. A peek at the compiled automaton behind the scenes.
    stats = spanner.statistics(document)
    print(
        f"compiled deterministic seVA: {stats.num_states} states, "
        f"{stats.num_transitions} transitions"
    )


if __name__ == "__main__":
    main()
