"""Contact extraction at scale (the paper's Example 2.1 workload).

Run with::

    python examples/contact_extraction.py [num_records]

Generates a synthetic contact document with ``num_records`` records
(default 200), compiles the Example 2.1 spanner, and compares:

* counting the outputs with Algorithm 3 (no enumeration),
* full constant-delay enumeration,
* the time to the first output (which stays proportional to the
  preprocessing phase, not to the output size).

It also prints the compilation report, showing the sizes of each pipeline
stage (regex → VA → eVA → deterministic seVA).
"""

from __future__ import annotations

import sys
import time

from repro import Spanner
from repro.workloads.documents import contact_document
from repro.workloads.spanners import contact_pattern


def main(num_records: int = 200) -> None:
    document = contact_document(num_records, seed=42)
    print(f"document: {num_records} records, {len(document)} characters")

    spanner = Spanner.from_regex(contact_pattern())

    start = time.perf_counter()
    compiled = spanner.compiled(document)
    compile_seconds = time.perf_counter() - start
    print(
        f"compiled automaton: {compiled.num_states} states, "
        f"{compiled.num_transitions} transitions ({compile_seconds:.3f}s)"
    )
    print()
    print(spanner.compilation_report(document).summary())
    print()

    start = time.perf_counter()
    count = spanner.count(document)
    count_seconds = time.perf_counter() - start
    print(f"Algorithm 3 count: {count} mappings in {count_seconds:.4f}s")

    start = time.perf_counter()
    first = next(spanner.enumerate(document))
    first_seconds = time.perf_counter() - start
    print(f"first mapping after {first_seconds:.4f}s: {first.contents(document)}")

    start = time.perf_counter()
    rows = spanner.extract(document)
    total_seconds = time.perf_counter() - start
    print(f"full extraction: {len(rows)} records in {total_seconds:.4f}s")

    emails = sum(1 for row in rows if "email" in row)
    phones = sum(1 for row in rows if "phone" in row)
    print(f"  {emails} records with an email, {phones} with a phone number")
    print("  sample:", rows[: min(3, len(rows))])


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
