"""DNA motif extraction: overlapping matches and huge output sets.

Run with::

    python examples/dna_motifs.py [sequence_length]

Classic regex engines report non-overlapping matches only; document spanners
enumerate *all* mappings.  The example extracts every occurrence of a motif
(including overlapping ones), then uses the nested-capture spanner of the
paper's introduction — whose output is quadratic in the document — to show
why counting (Algorithm 3) and lazy constant-delay enumeration matter.
"""

from __future__ import annotations

import sys
import time

from repro import Spanner
from repro.workloads.documents import dna_sequence
from repro.workloads.spanners import nested_capture_regex


def main(sequence_length: int = 2000) -> None:
    document = dna_sequence(sequence_length, seed=3)
    print(f"sequence: {sequence_length} bases, starts with {document.text[:40]}...")
    print()

    # 1. All (overlapping) occurrences of a motif.
    motif_spanner = Spanner.from_regex(".*(hit{ACGT}).*")
    hits = motif_spanner.evaluate(document)
    print(f"occurrences of ACGT (overlapping included): {len(hits)}")
    positions = sorted(mapping["hit"].begin for mapping in hits)[:10]
    print(f"  first positions: {positions}")
    print()

    # 2. Regions between two anchor motifs.
    region_spanner = Spanner.from_regex(".*TATA(region{[ACGT]*})GC.*")
    regions = region_spanner.evaluate(document)
    print(f"TATA…GC regions: {len(regions)}")
    shortest = min((mapping["region"] for mapping in regions), key=len, default=None)
    if shortest is not None:
        print(f"  shortest region: {shortest.content(document)!r}")
    print()

    # 3. The quadratic-output spanner of the introduction: count first,
    #    then enumerate lazily.
    quadratic = Spanner.from_regex(nested_capture_regex(1))
    start = time.perf_counter()
    total = quadratic.count(document)
    count_seconds = time.perf_counter() - start
    print(
        f"nested-capture spanner: {total} output mappings "
        f"(counted in {count_seconds:.3f}s without enumerating)"
    )

    start = time.perf_counter()
    produced = 0
    for _mapping in quadratic.enumerate(document):
        produced += 1
        if produced >= 1000:
            break
    enumerate_seconds = time.perf_counter() - start
    print(
        f"first {produced} mappings enumerated in {enumerate_seconds:.3f}s "
        f"(the remaining {total - produced} are available on demand)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
