"""B9 — multi-document batch throughput: reference vs compiled vs processes.

Compares three ways of evaluating one spanner over a collection of
documents:

* ``reference``  — the legacy dict-based Algorithm 1, one document at a time;
* ``compiled``   — the integer-indexed runtime (compile once, reuse dense
  tables and scratch buffers across documents);
* ``processes``  — the compiled runtime fanned out over a multiprocessing
  pool (the automaton is pickled once per worker).

Three workloads are measured: the Census reduction of Theorem 5.2 (a large
automaton over a small alphabet — the worst case for per-character dict
walking), the Figure 1 contact-extraction scenario (a small automaton over
long natural documents), and the ``sparse-logs`` scenario (long documents,
rare matches — the quiescent-run fast-path regime, for which an extra
``compiled-nofast`` row runs the arena engine with the fast path disabled
and ``speedup_fastpath_vs_nofast`` reports the sprint's contribution).

Usage::

    python benchmarks/bench_batch.py [--smoke] [--output report.json]

``--smoke`` shrinks the workloads so the whole run takes a few seconds; it
is what CI runs on every push.  The JSON report is always written (default
``benchmarks/batch_report.json``) and uploaded as a CI artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.automata.transforms import to_deterministic_sequential_eva  # noqa: E402
from repro.core.documents import DocumentCollection  # noqa: E402
from repro.counting.census import CensusInstance  # noqa: E402
from repro.runtime.batch import run_batch  # noqa: E402
from repro.runtime.compiled import compile_eva  # noqa: E402
from repro.runtime.engine import (  # noqa: E402
    EvaluationScratch,
    evaluate_compiled_arena,
)
from repro.runtime.resilience import ResiliencePolicy  # noqa: E402
from repro.spanners.spanner import Spanner  # noqa: E402
from repro.workloads.collections import scenario  # noqa: E402
from repro.workloads.spanners import random_census_nfa  # noqa: E402


def timed_batch(compiled, collection, *, repeat: int = 1, **kwargs) -> tuple[float, int]:
    """Best wall-clock seconds of draining a full batch run, plus the count.

    The timed region drains the stream (i.e. runs the evaluation engine —
    and, in process mode, the freeze/ship/thaw round trip); the mapping
    count used for cross-engine verification is computed on one extra
    untimed run so that the shared DAG-counting cost does not dilute the
    engine comparison.
    """
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        for _doc_id, _result in run_batch(compiled, collection, **kwargs):
            pass
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    total = sum(
        result.count() for _doc_id, result in run_batch(compiled, collection, **kwargs)
    )
    return best, total


def timed_nofast(compiled, collection, *, repeat: int = 1) -> tuple[float, int]:
    """Best seconds of the arena engine with the quiescent fast path off.

    The pre-PR-shaped control for the sparse-logs workload: same dense
    tables, same shared encoded buffers and scratch, but every character
    walks the Python inner loop.
    """
    scratch = EvaluationScratch(compiled)
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        for _doc_id, document in collection.items():
            evaluate_compiled_arena(
                compiled, document, scratch=scratch, fast_path=False
            )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    total = sum(
        evaluate_compiled_arena(
            compiled, document, scratch=scratch, fast_path=False
        ).count()
        for _doc_id, document in collection.items()
    )
    return best, total


def timed_supervised_pair(compiled, collection, *, repeat, passes=10):
    """Best paired seconds of plain vs supervised serial drains.

    The supervised-overhead floor (<=2%) is far below the jitter of a
    single smoke-sized drain, so this measurement is built differently
    from the cross-engine rows: each sample drains the collection
    *passes* times (longer timed regions drown per-drain noise) and the
    plain/supervised samples are interleaved so slow machine drift hits
    both sides equally.  Returns ``(plain_best, supervised_best)``
    normalized to per-drain seconds.
    """
    policy = ResiliencePolicy()

    def sample(**kwargs) -> float:
        start = time.perf_counter()
        for _ in range(passes):
            for _pair in run_batch(compiled, collection, engine="compiled", **kwargs):
                pass
        return time.perf_counter() - start

    plain_best = supervised_best = None
    for _ in range(repeat):
        plain = sample()
        supervised = sample(policy=policy)
        plain_best = plain if plain_best is None else min(plain_best, plain)
        supervised_best = (
            supervised if supervised_best is None else min(supervised_best, supervised)
        )
    return plain_best / passes, supervised_best / passes


def census_collection(num_documents: int, num_states: int, length: int):
    """The census workload: one det seVA, many copies of its document."""
    instance = CensusInstance(
        random_census_nfa(num_states, "ab", density=0.35, seed=13), length
    )
    automaton, document = instance.to_spanner()
    deterministic = to_deterministic_sequential_eva(automaton, assume_sequential=True)
    collection = DocumentCollection(name="census")
    for index in range(num_documents):
        collection.add(document, doc_id=f"census-{index}")
    return compile_eva(deterministic, check_determinism=False), collection


def bench_workload(
    name, compiled, collection, *, repeat, max_workers, nofast=False, supervised=False
):
    """Measure all execution strategies on one workload.

    *nofast* adds a ``compiled-nofast`` row (the arena engine with the
    quiescent fast path disabled) and the ``speedup_fastpath_vs_nofast``
    ratio — reported on the sparse-match workload where the sprint is the
    headline change.

    *supervised* adds a ``supervised`` row — the same serial compiled run
    under the fault-tolerance layer with injection disabled — and the
    ``speedup_supervised_vs_plain`` ratio, gating the resilience layer's
    no-fault overhead (the acceptance criterion is <=2%, i.e. a floor of
    0.98 on the ratio).
    """
    total_chars = collection.total_length()
    rows = {}

    reference_seconds, reference_count = timed_batch(
        compiled, collection, engine="reference", repeat=repeat
    )
    compiled_seconds, compiled_count = timed_batch(
        compiled, collection, engine="compiled", repeat=repeat
    )
    process_seconds, process_count = timed_batch(
        compiled,
        collection,
        engine="compiled",
        mode="processes",
        chunk_size=max(1, len(collection) // (2 * max_workers)),
        max_workers=max_workers,
        repeat=repeat,
    )
    if not (reference_count == compiled_count == process_count):
        raise AssertionError(
            f"{name}: engines disagree — reference={reference_count}, "
            f"compiled={compiled_count}, processes={process_count}"
        )

    timed_rows = [
        ("reference", reference_seconds),
        ("compiled", compiled_seconds),
        ("processes", process_seconds),
    ]
    if nofast:
        nofast_seconds, nofast_count = timed_nofast(
            compiled, collection, repeat=repeat
        )
        if nofast_count != compiled_count:
            raise AssertionError(
                f"{name}: fast path changed the result — "
                f"fast={compiled_count}, nofast={nofast_count}"
            )
        timed_rows.append(("compiled-nofast", nofast_seconds))
    if supervised:
        plain_seconds, supervised_seconds = timed_supervised_pair(
            compiled, collection, repeat=max(5, repeat * 2)
        )
        _, supervised_count = timed_batch(
            compiled,
            collection,
            engine="compiled",
            policy=ResiliencePolicy(),
            repeat=1,
        )
        if supervised_count != compiled_count:
            raise AssertionError(
                f"{name}: supervision changed the result — "
                f"plain={compiled_count}, supervised={supervised_count}"
            )
        timed_rows.append(("supervised", supervised_seconds))

    for label, seconds in timed_rows:
        rows[label] = {
            "seconds": seconds,
            "chars_per_second": total_chars / seconds if seconds else float("inf"),
        }
    rows["speedup_compiled_vs_reference"] = reference_seconds / compiled_seconds
    rows["speedup_processes_vs_serial"] = compiled_seconds / process_seconds
    if nofast:
        rows["speedup_fastpath_vs_nofast"] = nofast_seconds / compiled_seconds
    if supervised:
        rows["speedup_supervised_vs_plain"] = plain_seconds / supervised_seconds
    return {
        "workload": name,
        "documents": len(collection),
        "total_chars": total_chars,
        "mappings": compiled_count,
        "results": rows,
    }


def print_report(entry) -> None:
    rows = entry["results"]
    print(
        f"\n### {entry['workload']}: {entry['documents']} documents, "
        f"{entry['total_chars']} chars, {entry['mappings']} mappings"
    )
    print(f"{'strategy':<16} {'seconds':>10} {'chars/s':>14}")
    for label, row in rows.items():
        if isinstance(row, dict):
            print(
                f"{label:<16} {row['seconds']:>10.4f} "
                f"{row['chars_per_second']:>14.0f}"
            )
    line = (
        f"compiled vs reference: {rows['speedup_compiled_vs_reference']:.2f}x   "
        f"processes vs serial: {rows['speedup_processes_vs_serial']:.2f}x"
    )
    if "speedup_fastpath_vs_nofast" in rows:
        line += f"   fast path vs nofast: {rows['speedup_fastpath_vs_nofast']:.2f}x"
    if "speedup_supervised_vs_plain" in rows:
        line += f"   supervised vs plain: {rows['speedup_supervised_vs_plain']:.2f}x"
    print(line)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workloads for CI (a few seconds)"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "batch_report.json"),
        help="path of the JSON report",
    )
    parser.add_argument(
        "--max-workers", type=int, default=min(4, os.cpu_count() or 1)
    )
    args = parser.parse_args(argv)

    if args.smoke:
        census_args = dict(num_documents=4, num_states=5, length=5)
        contact_args = dict(num_documents=4, scale=60)
        sparse_args = dict(num_documents=3, scale=1500)
        repeat = 2
    else:
        census_args = dict(num_documents=16, num_states=6, length=9)
        contact_args = dict(num_documents=16, scale=400)
        sparse_args = dict(num_documents=8, scale=2000)
        repeat = 3

    report = {
        "smoke": args.smoke,
        "max_workers": args.max_workers,
        "cpu_count": os.cpu_count(),
        "workloads": [],
    }
    if (os.cpu_count() or 1) < 2:
        print(
            "note: only one CPU is available — process mode pays its overhead "
            "without any parallel speedup on this machine"
        )

    compiled, collection = census_collection(**census_args)
    entry = bench_workload(
        "census", compiled, collection, repeat=repeat, max_workers=args.max_workers
    )
    report["workloads"].append(entry)
    print_report(entry)

    contacts = scenario(
        "contacts", num_documents=contact_args["num_documents"], scale=contact_args["scale"]
    )
    spanner = Spanner.from_regex(contacts.pattern)
    compiled = spanner.runtime("".join(doc.text for doc in contacts.collection))
    entry = bench_workload(
        "contacts",
        compiled,
        contacts.collection,
        repeat=repeat,
        max_workers=args.max_workers,
        supervised=True,
    )
    report["workloads"].append(entry)
    print_report(entry)

    sparse = scenario(
        "sparse-logs",
        num_documents=sparse_args["num_documents"],
        scale=sparse_args["scale"],
    )
    spanner = Spanner.from_regex(sparse.pattern)
    compiled = spanner.runtime("".join(doc.text for doc in sparse.collection))
    entry = bench_workload(
        "sparse-logs",
        compiled,
        sparse.collection,
        repeat=repeat,
        max_workers=args.max_workers,
        nofast=True,
    )
    report["workloads"].append(entry)
    print_report(entry)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
