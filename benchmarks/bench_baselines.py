"""B3 — constant-delay evaluation vs. the naive and polynomial-delay baselines.

The paper's motivation (Sections 1 and 3): an output set can be huge, so the
evaluation strategy matters.  Three strategies are compared on the
nested-capture spanner, whose output grows quadratically with the document:

* the constant-delay algorithm (preprocess once, then enumerate),
* the polynomial-delay flashlight baseline (no determinization, higher
  per-output cost),
* the naive baseline (materialize all runs before producing anything).

The expected shape: naive explodes first, polynomial delay scales but with a
visibly higher per-output cost, constant delay wins as outputs grow —
mirroring the comparison with [13] discussed in the related-work section.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive import NaiveEnumerator
from repro.baselines.polydelay import PolynomialDelayEnumerator
from repro.regex.compiler import compile_to_va
from repro.spanners.spanner import Spanner
from repro.workloads.spanners import nested_capture_regex

LENGTHS = [20, 40, 80]


@pytest.fixture(scope="module")
def workload():
    pattern = nested_capture_regex(1)
    spanner = Spanner.from_regex(pattern)
    va = compile_to_va(pattern, "a")
    compiled = spanner.compiled("a")
    return pattern, spanner, va, compiled


@pytest.mark.parametrize("length", LENGTHS)
def test_constant_delay_total_time(benchmark, workload, length):
    _pattern, spanner, _va, _compiled = workload
    document = "a" * length
    benchmark.extra_info["outputs"] = (length + 1) * (length + 2) // 2
    benchmark(lambda: sum(1 for _ in spanner.enumerate(document)))


@pytest.mark.parametrize("length", LENGTHS)
def test_polynomial_delay_total_time(benchmark, workload, length):
    _pattern, _spanner, _va, compiled = workload
    document = "a" * length
    enumerator = PolynomialDelayEnumerator(compiled)
    benchmark(lambda: sum(1 for _ in enumerator.enumerate(document)))


@pytest.mark.parametrize("length", LENGTHS[:2])
def test_naive_total_time(benchmark, workload, length):
    # The naive baseline is already painful at these sizes; larger documents
    # are excluded to keep the harness runtime reasonable.
    _pattern, _spanner, va, _compiled = workload
    document = "a" * length
    enumerator = NaiveEnumerator(va)
    benchmark(lambda: len(enumerator.evaluate(document)))


@pytest.mark.parametrize("length", LENGTHS)
def test_constant_delay_time_to_first_output(benchmark, workload, length):
    """Time to the *first* output: linear for the constant-delay algorithm."""
    _pattern, spanner, _va, _compiled = workload
    document = "a" * length
    benchmark(lambda: next(iter(spanner.enumerate(document))))
