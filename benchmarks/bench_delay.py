"""B2 — the enumeration delay does not grow with the document (Section 3.2.2).

The defining property of the algorithm: after preprocessing, the time
between two consecutive outputs depends only on the number of variables of
the automaton, not on ``|d|``.  The benchmark enumerates a fixed number of
outputs of the nested-capture spanner (whose output set grows quadratically
with the document) for documents of increasing size; the per-output time
should stay flat while the number of available outputs explodes.
"""

from __future__ import annotations

import pytest

from repro.enumeration.enumerate import delay_profile, enumerate_mappings
from repro.spanners.spanner import Spanner
from repro.workloads.spanners import nested_capture_regex

OUTPUTS_PER_RUN = 500


@pytest.fixture(scope="module")
def nested_spanner() -> Spanner:
    return Spanner.from_regex(nested_capture_regex(1))


@pytest.mark.parametrize("length", [100, 200, 400, 800])
def test_delay_per_output_is_constant_in_document_length(benchmark, nested_spanner, length):
    document = "a" * length
    result = nested_spanner.preprocess(document)
    benchmark.extra_info["document_length"] = length
    benchmark.extra_info["total_outputs"] = result.count()

    def consume_fixed_number_of_outputs() -> int:
        produced = 0
        for _ in enumerate_mappings(result):
            produced += 1
            if produced >= OUTPUTS_PER_RUN:
                break
        return produced

    produced = benchmark(consume_fixed_number_of_outputs)
    assert produced == OUTPUTS_PER_RUN


@pytest.mark.parametrize("length", [200, 800])
def test_maximum_observed_delay(benchmark, nested_spanner, length):
    """Record the maximum single-output delay (reported via extra_info)."""
    document = "a" * length
    result = nested_spanner.preprocess(document)

    def worst_delay() -> float:
        return max(delay_profile(result, limit=OUTPUTS_PER_RUN))

    maximum = benchmark(worst_delay)
    benchmark.extra_info["document_length"] = length
    benchmark.extra_info["max_delay_seconds"] = maximum
