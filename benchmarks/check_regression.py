"""Benchmark regression gate: compare a report against a committed baseline.

CI runs the benchmark smokes (``bench_batch.py --smoke``,
``bench_enumerate.py --smoke``) and then this script, which fails the build
when the compiled paths regress.  Absolute seconds are not comparable
across machines, so the gate checks the *ratio* metrics the reports
already carry — the ``speedup_*_vs_reference`` entries under a workload's
``results``, each comparing two engines within the same run on the same
machine (machine-dependent ratios like ``speedup_processes_vs_serial``
are not gated): a current ratio may not fall below
``baseline / tolerance``, i.e. with the default ``--tolerance 1.5`` a
>1.5x slowdown of a compiled path relative to its in-run reference fails.

``--min-speedup key=value`` additionally enforces an absolute floor on
*any* ratio metric a workload's results carry (not only the
``_vs_reference`` ones) — the acceptance criterion that arena enumeration
stays at least 1.5x faster per mapping than the reference walker is pinned
with ``--min-speedup speedup_arena_vs_reference=1.5``, and the
quiescent-run fast path's contribution with
``--min-speedup speedup_fastpath_vs_nofast=2.0``.

``--soft-min-speedup key=value`` is the same floor applied in *report-only*
mode: a value below the floor prints ``SOFT-FAIL`` but never fails the
build.  It exists for metrics whose floor is only meaningful on capable
hardware — the shard-parallel wall-clock speedup cannot reach 1.5x on a
one-core CI runner no matter how good the engine is, so ``run_all.py``
gates it hard on multi-core machines and softly elsewhere.  A soft floor
whose metric matches no workload still fails loudly: an unmonitored gate
is a typo, not a pass.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/enumerate_smoke.json \
        --current benchmarks/enumerate_report.json \
        --tolerance 1.5 \
        --min-speedup speedup_arena_vs_reference=1.5
"""

from __future__ import annotations

import argparse
import json
import sys


def load_workloads(path: str) -> dict[str, dict]:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    return {entry["workload"]: entry for entry in report.get("workloads", [])}


def ratio_metrics(entry: dict) -> dict[str, float]:
    """The machine-portable ratio metrics of one workload entry.

    Only engine-vs-reference ratios measured within a single run are
    gated (``speedup_*_vs_reference``): both sides run on the same
    machine in the same process, so the ratio transfers across hardware.
    ``speedup_processes_vs_serial`` is deliberately excluded — it is
    dominated by pool-spawn overhead and ``cpu_count`` and would flap on
    runners with different core counts.
    """
    return {
        key: value
        for key, value in entry.get("results", {}).items()
        if key.startswith("speedup_")
        and key.endswith("_vs_reference")
        and isinstance(value, (int, float))
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="freshly produced report JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="maximum allowed slowdown factor vs the baseline ratios (default 1.5)",
    )
    parser.add_argument(
        "--min-speedup",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="absolute floor for a ratio metric, e.g. speedup_arena_vs_reference=1.5 "
        "(repeatable; applied to every workload carrying the metric)",
    )
    parser.add_argument(
        "--soft-min-speedup",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="like --min-speedup, but a value below the floor only prints "
        "SOFT-FAIL instead of failing the build (a floor matching no "
        "workload still fails; for machine-dependent metrics such as the "
        "shard-parallel wall-clock speedup on low-core runners)",
    )
    args = parser.parse_args(argv)

    def parse_floors(items: list[str], flag: str) -> dict[str, float]:
        parsed: dict[str, float] = {}
        for item in items:
            key, _, value = item.partition("=")
            try:
                parsed[key] = float(value)
            except ValueError:
                parser.error(f"{flag} needs KEY=FLOAT, got {item!r}")
        return parsed

    floors = parse_floors(args.min_speedup, "--min-speedup")
    soft_floors = parse_floors(args.soft_min_speedup, "--soft-min-speedup")
    overlap = sorted(set(floors) & set(soft_floors))
    if overlap:
        parser.error(
            f"metrics cannot be both hard- and soft-gated: {', '.join(overlap)}"
        )

    baseline = load_workloads(args.baseline)
    current = load_workloads(args.current)

    failures: list[str] = []
    soft_failures: list[str] = []
    checked = 0
    floors_applied = {key: 0 for key in floors}
    soft_floors_applied = {key: 0 for key in soft_floors}
    for name, base_entry in baseline.items():
        cur_entry = current.get(name)
        if cur_entry is None:
            failures.append(f"{name}: workload present in baseline but missing from report")
            continue
        base_ratios = ratio_metrics(base_entry)
        cur_ratios = ratio_metrics(cur_entry)
        for key, base_value in base_ratios.items():
            cur_value = cur_ratios.get(key)
            if cur_value is None:
                failures.append(f"{name}.{key}: metric missing from report")
                continue
            checked += 1
            allowed = base_value / args.tolerance
            status = "ok" if cur_value >= allowed else "FAIL"
            print(
                f"{name}.{key}: current={cur_value:.2f}x baseline={base_value:.2f}x "
                f"(min allowed {allowed:.2f}x) {status}"
            )
            if cur_value < allowed:
                failures.append(
                    f"{name}.{key}: {cur_value:.2f}x is a >{args.tolerance}x slowdown "
                    f"vs the baseline {base_value:.2f}x"
                )
        for key, floor in floors.items():
            # Floors apply to any numeric ratio in the results, including
            # in-run controls like speedup_fastpath_vs_nofast that the
            # tolerance gate deliberately ignores.
            cur_value = cur_entry.get("results", {}).get(key)
            if not isinstance(cur_value, (int, float)):
                continue
            floors_applied[key] += 1
            checked += 1
            status = "ok" if cur_value >= floor else "FAIL"
            print(f"{name}.{key}: current={cur_value:.2f}x (floor {floor:.2f}x) {status}")
            if cur_value < floor:
                failures.append(
                    f"{name}.{key}: {cur_value:.2f}x is below the absolute floor {floor:.2f}x"
                )
        for key, floor in soft_floors.items():
            cur_value = cur_entry.get("results", {}).get(key)
            if not isinstance(cur_value, (int, float)):
                continue
            soft_floors_applied[key] += 1
            checked += 1
            status = "ok" if cur_value >= floor else "SOFT-FAIL (report only)"
            print(
                f"{name}.{key}: current={cur_value:.2f}x "
                f"(soft floor {floor:.2f}x) {status}"
            )
            if cur_value < floor:
                soft_failures.append(
                    f"{name}.{key}: {cur_value:.2f}x is below the soft floor "
                    f"{floor:.2f}x (reported, not failing)"
                )

    # A floor that matched no workload at all is a disabled gate, not a
    # pass: a renamed (or typo'd) metric must fail loudly, or the floor
    # silently stops protecting the acceptance criterion it pins.  This
    # applies to soft floors too — soft means "don't fail on the value",
    # not "fine if the metric vanished".
    for flag, applied_map in (
        ("--min-speedup", floors_applied),
        ("--soft-min-speedup", soft_floors_applied),
    ):
        for key, applied in applied_map.items():
            if applied == 0:
                failures.append(
                    f"{flag} {key}: no workload in the report carries this "
                    "metric — renamed, typo'd, or no longer emitted?"
                )

    if not checked:
        failures.append("no ratio metrics were compared — wrong report files?")
    if soft_failures:
        print("\nsoft floors below target (reported, not failing the build):")
        for soft in soft_failures:
            print(f"  - {soft}")
    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbenchmark regression check passed ({checked} metrics).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
