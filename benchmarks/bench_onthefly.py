"""Ablation — up-front determinization vs. on-the-fly determinization.

Section 4's closing remark suggests feeding the translations to Algorithm 1
on-the-fly instead of materializing the deterministic seVA.  The benchmark
compares, for the contact-extraction workload:

* evaluation with the automaton determinized up front (compilation cost paid
  once, excluded from the measurement),
* evaluation of the non-deterministic eVA with lazily constructed subsets
  (no compilation, higher per-position constant),
* the one-shot cost "compile + evaluate" of the up-front route, which is the
  fair comparison when a spanner is used on a single document.
"""

from __future__ import annotations

import pytest

from repro.automata.transforms import to_deterministic_sequential_eva, va_to_eva
from repro.enumeration.evaluate import evaluate
from repro.enumeration.onthefly import evaluate_on_the_fly
from repro.regex.compiler import compile_to_va
from repro.workloads.documents import contact_document
from repro.workloads.spanners import contact_pattern

RECORDS = [50, 100]


@pytest.fixture(scope="module")
def workload():
    documents = {records: contact_document(records, seed=7) for records in RECORDS}
    alphabet = frozenset().union(*(set(doc.text) for doc in documents.values()))
    nondeterministic = va_to_eva(compile_to_va(contact_pattern(), alphabet))
    deterministic = to_deterministic_sequential_eva(nondeterministic)
    return documents, nondeterministic, deterministic


@pytest.mark.parametrize("records", RECORDS)
def test_upfront_determinization_evaluation(benchmark, workload, records):
    documents, _nondeterministic, deterministic = workload
    document = documents[records]
    benchmark.extra_info["det_states"] = deterministic.num_states
    count = benchmark(
        lambda: sum(1 for _ in evaluate(deterministic, document, check_determinism=False))
    )
    assert count == records


@pytest.mark.parametrize("records", RECORDS)
def test_on_the_fly_evaluation(benchmark, workload, records):
    documents, nondeterministic, _deterministic = workload
    document = documents[records]
    benchmark.extra_info["eva_states"] = nondeterministic.num_states
    count = benchmark(lambda: sum(1 for _ in evaluate_on_the_fly(nondeterministic, document)))
    assert count == records


@pytest.mark.parametrize("records", [50])
def test_compile_plus_evaluate_single_document(benchmark, workload, records):
    documents, nondeterministic, _deterministic = workload
    document = documents[records]

    def compile_then_evaluate() -> int:
        deterministic = to_deterministic_sequential_eva(nondeterministic)
        return sum(1 for _ in evaluate(deterministic, document, check_determinism=False))

    count = benchmark(compile_then_evaluate)
    assert count == records
