"""B4 — counting outputs in O(|A| × |d|) (Theorem 5.1, Algorithm 3).

Algorithm 3 counts without enumerating.  The benchmark measures it on the
nested-capture spanner (quadratically many outputs) and on the contact
spanner, against the alternative of counting by full enumeration; the gap
widens with the output size while Algorithm 3 stays linear in ``|d|``.
"""

from __future__ import annotations

import pytest

from repro.counting.count import count_mappings
from repro.spanners.spanner import Spanner
from repro.workloads.spanners import nested_capture_regex


@pytest.fixture(scope="module")
def quadratic_spanner() -> Spanner:
    return Spanner.from_regex(nested_capture_regex(1))


@pytest.mark.parametrize("length", [100, 200, 400, 800])
def test_algorithm3_counting_scales_linearly(benchmark, quadratic_spanner, length):
    document = "a" * length
    automaton = quadratic_spanner.compiled(document)
    expected = (length + 1) * (length + 2) // 2
    benchmark.extra_info["document_length"] = length
    benchmark.extra_info["outputs_counted"] = expected
    count = benchmark(lambda: count_mappings(automaton, document, check_determinism=False))
    assert count == expected


@pytest.mark.parametrize("length", [100, 200])
def test_counting_by_enumeration_for_comparison(benchmark, quadratic_spanner, length):
    document = "a" * length
    result = quadratic_spanner.preprocess(document)
    benchmark.extra_info["outputs_counted"] = (length + 1) * (length + 2) // 2
    benchmark(lambda: sum(1 for _ in result))


@pytest.mark.parametrize("records", [50, 100, 200])
def test_counting_contact_documents(benchmark, contact_spanner, contact_documents, records):
    document = contact_documents[records]
    automaton = contact_spanner.compiled(document)
    benchmark.extra_info["document_length"] = len(document)
    count = benchmark(lambda: count_mappings(automaton, document, check_determinism=False))
    assert count == records
