"""B10 — per-mapping enumeration delay: reference walker vs arena walker.

Algorithm 2's promise is a *per-mapping* delay that depends only on the
number of variables.  This benchmark measures that delay distribution for
the two enumeration paths:

* ``reference`` — the recursive object walker over the legacy
  ``DagNode``/``LazyList`` graph (:mod:`repro.enumeration.enumerate`);
* ``arena``     — the integer walker over the flat
  :class:`~repro.runtime.dag.CompiledResultDag` produced natively by the
  compiled engine (:mod:`repro.runtime.dag`).

Both enumerate the *same* spanner output (the preprocessing phase is run
once per path and excluded from the timed region); reported are the
p50/p99/max of the :func:`~repro.enumeration.enumerate.delay_profile`
samples plus the mean per-mapping delay, and the ratio
``speedup_arena_vs_reference`` (reference mean / arena mean).

Two workloads bracket the enumeration regimes: the output-heavy nested
capture formula (``Θ(n⁴)`` mappings per document) and the Figure 1 contact
extraction (few mappings over long documents).  A third entry
(``sparse-logs-preprocessing``) times the *preprocessing* phase itself on
the sparse-match log workload — the regime the quiescent-run fast path
targets — comparing the reference engine, the arena engine, and the arena
engine with the fast path disabled.

Usage::

    python benchmarks/bench_enumerate.py [--smoke] [--output report.json]

``--smoke`` shrinks the workloads so the whole run takes a few seconds; it
is what CI runs on every push.  The JSON report is always written (default
``benchmarks/enumerate_report.json``), shares the artifact shape of
``bench_batch.py`` and is compared against the committed baseline by
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.documents import Document  # noqa: E402
from repro.enumeration.enumerate import delay_profile  # noqa: E402
from repro.enumeration.evaluate import evaluate as reference_evaluate  # noqa: E402
from repro.runtime.compiled import compile_eva  # noqa: E402
from repro.runtime.engine import (  # noqa: E402
    EvaluationScratch,
    evaluate_compiled_arena,
)
from repro.spanners.spanner import Spanner  # noqa: E402
from repro.workloads.collections import NESTED_PATTERN  # noqa: E402
from repro.workloads.documents import (  # noqa: E402
    contact_document,
    random_document,
    server_log,
)
from repro.workloads.spanners import contact_pattern  # noqa: E402


def percentile(ordered: list[float], fraction: float) -> float:
    """The *fraction*-percentile of an ascending-sorted sample."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def profile_stats(delays: list[float]) -> dict:
    """p50/p99/max/mean of one delay profile, in seconds per mapping."""
    ordered = sorted(delays)
    mean = sum(delays) / len(delays) if delays else 0.0
    return {
        "mappings": len(delays),
        "p50_seconds": percentile(ordered, 0.50),
        "p99_seconds": percentile(ordered, 0.99),
        "max_seconds": ordered[-1] if ordered else 0.0,
        "mean_seconds": mean,
        "mappings_per_second": (1.0 / mean) if mean else float("inf"),
    }


def bench_workload(name: str, pattern: str, text: str, *, limit: int, repeat: int) -> dict:
    """Profile both enumeration paths over one (pattern, document) pair.

    Preprocessing runs once per path outside the timed region; the best
    (lowest-mean) profile of *repeat* runs is kept for each path, damping
    scheduler noise.
    """
    spanner = Spanner.from_regex(pattern)
    automaton = spanner.compiled(text)
    compiled = compile_eva(automaton, check_determinism=False)

    reference_result = reference_evaluate(automaton, text, check_determinism=False)
    arena_result = evaluate_compiled_arena(compiled, text)

    def best_profile(result) -> list[float]:
        best: list[float] | None = None
        for _ in range(repeat):
            delays = delay_profile(result, limit=limit)
            if best is None or sum(delays) < sum(best):
                best = delays
        return best or []

    reference_delays = best_profile(reference_result)
    arena_delays = best_profile(arena_result)
    if len(reference_delays) != len(arena_delays):
        raise AssertionError(
            f"{name}: paths enumerated different output sizes — "
            f"reference={len(reference_delays)}, arena={len(arena_delays)}"
        )

    rows = {
        "reference": profile_stats(reference_delays),
        "arena": profile_stats(arena_delays),
    }
    arena_mean = rows["arena"]["mean_seconds"]
    rows["speedup_arena_vs_reference"] = (
        rows["reference"]["mean_seconds"] / arena_mean if arena_mean else float("inf")
    )
    return {
        "workload": name,
        "documents": 1,
        "total_chars": len(text),
        "mappings": rows["arena"]["mappings"],
        "results": rows,
    }


def bench_preprocessing(name: str, pattern: str, text: str, *, repeat: int) -> dict:
    """Time the preprocessing phase (Algorithm 1) on one (pattern, document).

    Three paths: the reference dict engine, the arena engine, and the arena
    engine with the quiescent-run fast path disabled — the control showing
    what the sprint itself buys on sparse-match documents.  The document is
    a :class:`Document`, so the arena paths share one cached encoding.
    """
    spanner = Spanner.from_regex(pattern)
    automaton = spanner.compiled(text)
    compiled = compile_eva(automaton, check_determinism=False)
    scratch = EvaluationScratch(compiled)
    document = Document(text)

    def best_seconds(run) -> float:
        best = None
        for _ in range(repeat):
            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    counts = {
        "reference": reference_evaluate(
            automaton, text, check_determinism=False
        ).count(),
        "arena": evaluate_compiled_arena(compiled, document, scratch=scratch).count(),
        "arena-nofast": evaluate_compiled_arena(
            compiled, document, scratch=scratch, fast_path=False
        ).count(),
    }
    if len(set(counts.values())) != 1:
        raise AssertionError(f"{name}: paths disagree — {counts}")

    rows = {
        "reference": {
            "seconds": best_seconds(
                lambda: reference_evaluate(automaton, text, check_determinism=False)
            )
        },
        "arena": {
            "seconds": best_seconds(
                lambda: evaluate_compiled_arena(compiled, document, scratch=scratch)
            )
        },
        "arena-nofast": {
            "seconds": best_seconds(
                lambda: evaluate_compiled_arena(
                    compiled, document, scratch=scratch, fast_path=False
                )
            )
        },
    }
    arena_seconds = rows["arena"]["seconds"]
    rows["speedup_arena_vs_reference"] = (
        rows["reference"]["seconds"] / arena_seconds if arena_seconds else float("inf")
    )
    rows["speedup_fastpath_vs_nofast"] = (
        rows["arena-nofast"]["seconds"] / arena_seconds
        if arena_seconds
        else float("inf")
    )
    return {
        "workload": name,
        "documents": 1,
        "total_chars": len(text),
        "mappings": counts["arena"],
        "results": rows,
    }


def print_preprocessing_report(entry: dict) -> None:
    rows = entry["results"]
    print(
        f"\n### {entry['workload']}: {entry['total_chars']} chars, "
        f"{entry['mappings']} mappings (preprocessing time)"
    )
    print(f"{'path':<14} {'seconds':>10} {'chars/s':>14}")
    for label in ("reference", "arena", "arena-nofast"):
        seconds = rows[label]["seconds"]
        rate = entry["total_chars"] / seconds if seconds else float("inf")
        print(f"{label:<14} {seconds:>10.4f} {rate:>14.0f}")
    print(
        f"arena vs reference: {rows['speedup_arena_vs_reference']:.2f}x   "
        f"fast path vs nofast: {rows['speedup_fastpath_vs_nofast']:.2f}x"
    )


def print_report(entry: dict) -> None:
    rows = entry["results"]
    print(
        f"\n### {entry['workload']}: {entry['total_chars']} chars, "
        f"{entry['mappings']} mappings profiled"
    )
    print(f"{'path':<12} {'p50 µs':>10} {'p99 µs':>10} {'max µs':>10} {'mean µs':>10}")
    for label in ("reference", "arena"):
        row = rows[label]
        print(
            f"{label:<12} {row['p50_seconds'] * 1e6:>10.2f} "
            f"{row['p99_seconds'] * 1e6:>10.2f} {row['max_seconds'] * 1e6:>10.2f} "
            f"{row['mean_seconds'] * 1e6:>10.2f}"
        )
    print(f"arena vs reference (mean per-mapping delay): {rows['speedup_arena_vs_reference']:.2f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workloads for CI (a few seconds)"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "enumerate_report.json"),
        help="path of the JSON report",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        nested_length, contact_records, limit, repeat = 30, 40, 4000, 3
        sparse_lines = 2500
    else:
        nested_length, contact_records, limit, repeat = 60, 150, 20000, 5
        sparse_lines = 4000

    report = {"smoke": args.smoke, "cpu_count": os.cpu_count(), "workloads": []}

    entry = bench_workload(
        "nested-captures",
        NESTED_PATTERN,
        random_document(nested_length, alphabet="ab", seed=7).text,
        limit=limit,
        repeat=repeat,
    )
    report["workloads"].append(entry)
    print_report(entry)

    entry = bench_workload(
        "contacts",
        contact_pattern(),
        contact_document(contact_records, seed=11).text,
        limit=limit,
        repeat=repeat,
    )
    report["workloads"].append(entry)
    print_report(entry)

    entry = bench_preprocessing(
        "sparse-logs-preprocessing",
        r".*ERROR worker-w{[0-9]} .*",
        server_log(
            sparse_lines, seed=17, error_rate=0.005, levels=("INFO", "WARN")
        ).text,
        repeat=repeat,
    )
    report["workloads"].append(entry)
    print_preprocessing_report(entry)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
