"""B1 — preprocessing time is linear in the document (Section 3.2, complexity).

The paper claims Algorithm 1 preprocesses a deterministic sequential eVA
``A`` over a document ``d`` in ``O(|A| × |d|)``.  This benchmark runs the
preprocessing phase of the contact-extraction spanner over documents whose
length doubles between runs: the mean time per run should roughly double as
well (linear shape), which the pytest-benchmark table makes visible.
"""

from __future__ import annotations

import pytest

from repro.enumeration.evaluate import evaluate


@pytest.mark.parametrize("records", [25, 50, 100, 200])
def test_preprocessing_scales_linearly_with_document(
    benchmark, contact_spanner, contact_documents, records
):
    document = contact_documents[records]
    automaton = contact_spanner.compiled(document)
    benchmark.extra_info["document_length"] = len(document)
    benchmark.extra_info["automaton_size"] = automaton.size
    benchmark(lambda: evaluate(automaton, document, check_determinism=False))


@pytest.mark.parametrize("records", [50, 200])
def test_preprocessing_plus_full_enumeration(
    benchmark, contact_spanner, contact_documents, records
):
    """Total time O(|A|·|d| + |output|): preprocessing plus the enumeration."""
    document = contact_documents[records]
    automaton = contact_spanner.compiled(document)
    benchmark.extra_info["document_length"] = len(document)

    def run() -> int:
        result = evaluate(automaton, document, check_determinism=False)
        return sum(1 for _ in result)

    outputs = benchmark(run)
    benchmark.extra_info["outputs"] = outputs
    assert outputs == records
