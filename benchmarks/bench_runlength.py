"""B11 — run-length kernels vs the scalar engine on counting.

Algorithm 3's scalar loop pays one Python-level fold per character (or
per sprint segment on quiescent stretches); the run-length kernel
(:mod:`repro.runtime.runlength`) replaces a run of ``k`` equal classes
with one matrix power — ``O(log k)`` sparse-row products, ``O(1)`` for
functional classes — plus a content-keyed memo over delimiter-bounded
segments.  Two workloads pin the claim from both ends:

* ``sparse-logs-count`` — the standard log scenario (mean run length
  ~1.4): runs are short, so the win comes from the **segment memo** (a
  few dozen distinct line shapes, counted once each) rather than from
  exponentiation;
* ``dense-captures-count`` — one capture pattern over a document of
  giant uniform runs: the ``general``-kind matrix powers and (when
  importable) the exact int64 numpy path carry the run.

Gated ratio (core-independent, both workloads):

* ``speedup_runlength_count_vs_scalar`` — the pure-python run-length
  count vs the scalar fold with the sprint disabled, the apples-to-
  apples chars-actually-folded comparison (floor 5x in ``run_all.py``).

Reported, not gated:

* ``speedup_runlength_count_vs_fastpath`` — vs the scalar count *with*
  its quiescent sprint.  Honest disclosure: on sparse logs the sprint
  already skips most characters at C speed, so this sits below 1x
  there (which is exactly why ``kernel="auto"`` keeps short-run
  documents on the scalar path), while run-heavy documents clear it
  comfortably;
* ``speedup_runlength_numpy_vs_scalar`` — the auto numpy/python mix
  (equal to the pure-python ratio when numpy is absent).

The dense workload also asserts the generalized-sprint arena is
bit-identical to the scalar arena (fast path on and off) and that every
count path yields the same exact integer.

Usage::

    python benchmarks/bench_runlength.py [--smoke] [--output report.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime.engine import (  # noqa: E402
    EvaluationScratch,
    count_compiled,
    evaluate_compiled_arena,
)
from repro.runtime.runlength import (  # noqa: E402
    count_runlength,
    evaluate_runlength_arena,
    numpy_available,
    runlength_kernel,
)
from repro.spanners.spanner import Spanner  # noqa: E402
from repro.workloads.collections import scenario  # noqa: E402

ARENA_ARRAYS = (
    "node_markers",
    "node_positions",
    "node_starts",
    "node_ends",
    "cell_nodes",
    "cell_nexts",
    "final_entries",
)


def best_of(repeat: int, run) -> float:
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def bench_counting(workload: str, compiled, document, *, repeat: int) -> dict:
    total_chars = len(document)
    scratch = EvaluationScratch(compiled)

    # Correctness first: every path must produce the same exact integer.
    mappings = count_compiled(compiled, document, scratch=scratch)
    for label, value in (
        ("scalar-nofast", count_compiled(compiled, document, fast_path=False)),
        ("runlength", count_runlength(compiled, document, use_numpy=False)),
        ("runlength-auto", count_runlength(compiled, document)),
    ):
        if value != mappings:
            raise AssertionError(
                f"{workload}: {label} counted {value}, scalar {mappings}"
            )

    # The kernel and its memo tables persist on the automaton, so the
    # timed region measures the steady state of repeated counting — the
    # same state every facade/batch/shard call after the first sees.
    runlength_kernel(compiled)

    nofast_seconds = best_of(
        repeat,
        lambda: count_compiled(
            compiled, document, scratch=scratch, fast_path=False
        ),
    )
    fastpath_seconds = best_of(
        repeat,
        lambda: count_compiled(compiled, document, scratch=scratch),
    )
    runlength_seconds = best_of(
        repeat,
        lambda: count_runlength(compiled, document, use_numpy=False),
    )
    numpy_seconds = best_of(
        repeat,
        lambda: count_runlength(compiled, document),
    )

    rows = {
        "scalar-nofast": {
            "seconds": nofast_seconds,
            "chars_per_second": total_chars / nofast_seconds,
        },
        "scalar-fastpath": {
            "seconds": fastpath_seconds,
            "chars_per_second": total_chars / fastpath_seconds,
        },
        "runlength": {
            "seconds": runlength_seconds,
            "chars_per_second": total_chars / runlength_seconds,
        },
        "runlength-auto-numpy": {
            "seconds": numpy_seconds,
            "chars_per_second": total_chars / numpy_seconds,
        },
        "speedup_runlength_count_vs_scalar": nofast_seconds / runlength_seconds,
        "speedup_runlength_count_vs_fastpath": (
            fastpath_seconds / runlength_seconds
        ),
        "speedup_runlength_numpy_vs_scalar": nofast_seconds / numpy_seconds,
    }
    return {
        "workload": workload,
        "documents": 1,
        "total_chars": total_chars,
        "mappings": mappings,
        "numpy": numpy_available(),
        "results": rows,
    }


def assert_arena_identity(compiled, document) -> None:
    serial = evaluate_compiled_arena(compiled, document)
    for fast_path in (True, False):
        arena = evaluate_runlength_arena(
            compiled, document, fast_path=fast_path
        )
        for name in ARENA_ARRAYS:
            if list(getattr(arena, name)) != list(getattr(serial, name)):
                raise AssertionError(
                    f"run-length arena differs from scalar "
                    f"(fast_path={fast_path}): {name}"
                )


def print_report(entry) -> None:
    rows = entry["results"]
    print(
        f"\n### {entry['workload']}: {entry['total_chars']} chars, "
        f"{entry['mappings']} mappings, numpy={entry['numpy']}"
    )
    print(f"{'strategy':<22} {'seconds':>10} {'chars/s':>14}")
    for label in (
        "scalar-nofast",
        "scalar-fastpath",
        "runlength",
        "runlength-auto-numpy",
    ):
        row = rows[label]
        print(
            f"{label:<22} {row['seconds']:>10.4f} "
            f"{row['chars_per_second']:>14.0f}"
        )
    print(
        f"runlength vs scalar: {rows['speedup_runlength_count_vs_scalar']:.2f}x   "
        f"vs fastpath: {rows['speedup_runlength_count_vs_fastpath']:.2f}x   "
        f"numpy-auto vs scalar: {rows['speedup_runlength_numpy_vs_scalar']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small documents for CI (a few seconds)"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "runlength_report.json"),
        help="path of the JSON report",
    )
    args = parser.parse_args(argv)

    lines = 8000 if args.smoke else 40000
    run_length = 5000 if args.smoke else 20000
    run_pairs = 20 if args.smoke else 40
    repeat = 3 if args.smoke else 5

    workloads = []

    bench = scenario("sparse-logs", num_documents=1, scale=lines)
    document = next(iter(bench.collection))
    spanner = Spanner.from_regex(bench.pattern)
    workloads.append(
        bench_counting(
            "sparse-logs-count",
            spanner.runtime(document),
            document,
            repeat=repeat,
        )
    )
    print_report(workloads[-1])

    # Giant uniform runs with the capture class fanning out: the
    # `general` count kind, matrix powers, and the numpy int64 path.
    dense_doc = ("a" * run_length + "b") * run_pairs + "a" * run_length
    dense_spanner = Spanner.from_regex(".*x{a+}.*")
    dense_compiled = dense_spanner.runtime(dense_doc)
    assert_arena_identity(dense_compiled, dense_doc)
    workloads.append(
        bench_counting(
            "dense-captures-count", dense_compiled, dense_doc, repeat=repeat
        )
    )
    print_report(workloads[-1])

    report = {
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "numpy": numpy_available(),
        "workloads": workloads,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
