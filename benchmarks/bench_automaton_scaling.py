"""B8 — preprocessing scales linearly in the automaton size (Section 3.2).

The ``O(|A| × |d|)`` bound is linear in the automaton as well as in the
document.  The benchmark fixes the document and grows the automaton by
taking spanners that are disjunctions of an increasing number of keyword
extractions; the time per run should grow roughly linearly with the size of
the compiled automaton (recorded in ``extra_info``).
"""

from __future__ import annotations

import pytest

from repro.enumeration.evaluate import evaluate
from repro.spanners.spanner import Spanner
from repro.workloads.documents import server_log

KEYWORDS = [
    "timeout", "reset", "login", "logout", "miss", "full", "served", "retrying",
]


def disjunction_pattern(num_keywords: int) -> str:
    """``.* (k1|k2|…) w{[a-z]+} .*`` — grows with the number of keywords."""
    alternatives = "|".join(KEYWORDS[:num_keywords])
    return rf".*({alternatives}) (w{{[a-z]+}}).*"


@pytest.fixture(scope="module")
def log_document():
    return server_log(150, seed=21)


@pytest.mark.parametrize("num_keywords", [1, 2, 4, 8])
def test_preprocessing_scales_with_automaton_size(benchmark, log_document, num_keywords):
    spanner = Spanner.from_regex(disjunction_pattern(num_keywords))
    automaton = spanner.compiled(log_document)
    benchmark.extra_info["automaton_states"] = automaton.num_states
    benchmark.extra_info["automaton_transitions"] = automaton.num_transitions
    benchmark.extra_info["document_length"] = len(log_document)
    benchmark(lambda: evaluate(automaton, log_document, check_determinism=False))


@pytest.mark.parametrize("num_keywords", [2, 8])
def test_compilation_cost_scales_with_pattern(benchmark, log_document, num_keywords):
    pattern = disjunction_pattern(num_keywords)
    alphabet = frozenset(log_document.text)

    def compile_pipeline():
        from repro.spanners.pipeline import CompilationPipeline

        automaton, _report = CompilationPipeline(pattern, alphabet).compile()
        return automaton.num_states

    states = benchmark(compile_pipeline)
    benchmark.extra_info["det_states"] = states
