"""Standalone experiment report generator.

Runs compact versions of the B1–B8 experiments and prints the Markdown
tables recorded in ``EXPERIMENTS.md``.  Usage::

    python benchmarks/report.py

The script is deliberately lighter than the pytest-benchmark harness (single
timed run per cell, medium-sized inputs) so that the whole report regenerates
in about a minute on a laptop.
"""

from __future__ import annotations

import statistics
import time

from repro.automata.transforms import to_deterministic_sequential_eva, va_to_eva
from repro.baselines.naive import NaiveEnumerator
from repro.baselines.polydelay import PolynomialDelayEnumerator
from repro.counting.census import CensusInstance
from repro.counting.count import count_mappings
from repro.enumeration.enumerate import delay_profile
from repro.enumeration.evaluate import evaluate
from repro.regex.compiler import compile_to_va
from repro.spanners.spanner import Spanner
from repro.workloads.documents import contact_document, server_log
from repro.workloads.spanners import (
    contact_expression,
    contact_pattern,
    nested_capture_regex,
    proposition42_va,
    random_census_nfa,
    random_functional_va,
)


def timed(function, repeat: int = 3):
    """Return (best seconds, result) over *repeat* runs."""
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a Markdown table."""
    lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def experiment_b1() -> str:
    spanner = Spanner.from_regex(contact_pattern())
    rows = []
    for records in (50, 100, 200, 400):
        document = contact_document(records, seed=7)
        automaton = spanner.compiled(document)
        seconds, _ = timed(lambda: evaluate(automaton, document, check_determinism=False))
        rows.append([records, len(document), f"{seconds * 1e3:.2f} ms"])
    return "### B1 — preprocessing time vs. document length\n\n" + table(
        ["records", "|d|", "preprocessing"], rows
    )


def experiment_b2() -> str:
    spanner = Spanner.from_regex(nested_capture_regex(1))
    rows = []
    for length in (100, 200, 400, 800):
        document = "a" * length
        result = spanner.preprocess(document)
        delays = delay_profile(result, limit=500)
        rows.append(
            [
                length,
                result.count(),
                f"{statistics.mean(delays) * 1e6:.1f} µs",
                f"{max(delays) * 1e6:.1f} µs",
            ]
        )
    return "### B2 — enumeration delay vs. document length (first 500 outputs)\n\n" + table(
        ["|d|", "total outputs", "mean delay", "max delay"], rows
    )


def experiment_b3() -> str:
    pattern = nested_capture_regex(1)
    spanner = Spanner.from_regex(pattern)
    va = compile_to_va(pattern, "a")
    compiled = spanner.compiled("a")
    rows = []
    for length in (20, 40, 80):
        document = "a" * length
        outputs = (length + 1) * (length + 2) // 2
        cd_seconds, _ = timed(lambda: sum(1 for _ in spanner.enumerate(document)), repeat=2)
        pd_seconds, _ = timed(
            lambda: sum(1 for _ in PolynomialDelayEnumerator(compiled).enumerate(document)),
            repeat=2,
        )
        if length <= 40:
            naive_seconds, _ = timed(lambda: len(NaiveEnumerator(va).evaluate(document)), repeat=1)
            naive_cell = f"{naive_seconds * 1e3:.1f} ms"
        else:
            naive_cell = "—"
        rows.append(
            [
                length,
                outputs,
                f"{cd_seconds * 1e3:.1f} ms",
                f"{pd_seconds * 1e3:.1f} ms",
                naive_cell,
            ]
        )
    return "### B3 — total evaluation time: constant delay vs. baselines\n\n" + table(
        ["|d|", "outputs", "constant delay", "poly delay [13]-style", "naive"], rows
    )


def experiment_b4() -> str:
    spanner = Spanner.from_regex(nested_capture_regex(1))
    rows = []
    for length in (200, 400, 800, 1600):
        document = "a" * length
        automaton = spanner.compiled(document)
        seconds, count = timed(
            lambda: count_mappings(automaton, document, check_determinism=False)
        )
        rows.append([length, count, f"{seconds * 1e3:.2f} ms"])
    return "### B4 — Algorithm 3 counting time vs. document length\n\n" + table(
        ["|d|", "outputs counted", "counting time"], rows
    )


def experiment_b5() -> str:
    rows = []
    for pairs in (2, 4, 6, 8):
        automaton = proposition42_va(pairs)
        seconds, extended = timed(lambda: va_to_eva(automaton), repeat=1)
        outgoing = sum(1 for _ in extended.variable_transitions_from("c0"))
        rows.append(
            [pairs, automaton.num_transitions, 2 ** pairs, outgoing, f"{seconds * 1e3:.1f} ms"]
        )
    functional_rows = []
    for blocks, variables in ((4, 2), (6, 3), (8, 4)):
        automaton = random_functional_va(blocks, variables, "ab", seed=11)
        seconds, det = timed(
            lambda: to_deterministic_sequential_eva(automaton, assume_sequential=True), repeat=1
        )
        functional_rows.append(
            [
                f"{automaton.num_states} states / {variables} vars",
                2 ** automaton.num_states,
                det.num_states,
                f"{seconds * 1e3:.1f} ms",
            ]
        )
    return (
        "### B5 — translation blowups (Propositions 4.2 / 4.3)\n\n"
        + table(
            ["ℓ (pairs)", "VA transitions", "2^ℓ lower bound", "eVA transitions from c0", "time"],
            rows,
        )
        + "\n\n"
        + table(
            ["functional VA", "2^n worst case", "det seVA states", "time"],
            functional_rows,
        )
    )


def experiment_b6() -> str:
    expression = contact_expression()
    spanner = Spanner.from_expression(expression)
    rows = []
    for records in (5, 10, 20, 40):
        document = contact_document(records, seed=3)
        seconds, outputs = timed(lambda: len(spanner.evaluate(document)), repeat=2)
        rows.append([records, len(document), outputs, f"{seconds * 1e3:.1f} ms"])
    return (
        "### B6 — algebra expression (π(names ⋈ emails)) via the compiled automaton\n\n"
        + table(["records", "|d|", "outputs", "evaluation time"], rows)
    )


def experiment_b7() -> str:
    rows = []
    nfa = random_census_nfa(5, "ab", density=0.35, seed=13)
    for length in (4, 6, 8):
        instance = CensusInstance(nfa, length)
        direct_seconds, direct = timed(instance.solve_directly)
        spanner_seconds, via_spanner = timed(instance.solve_via_spanner, repeat=1)
        rows.append(
            [
                length,
                direct,
                f"{direct_seconds * 1e3:.2f} ms",
                via_spanner,
                f"{spanner_seconds * 1e3:.1f} ms",
            ]
        )
    return "### B7 — Census: direct DFA count vs. the Theorem 5.2 spanner reduction\n\n" + table(
        ["word length", "count (direct)", "time (direct)", "count (spanner)", "time (spanner)"],
        rows,
    )


def experiment_b8() -> str:
    document = server_log(150, seed=21)
    keywords = ["timeout", "reset", "login", "logout", "miss", "full", "served", "retrying"]
    rows = []
    for num_keywords in (1, 2, 4, 8):
        pattern = rf".*({'|'.join(keywords[:num_keywords])}) (w{{[a-z]+}}).*"
        spanner = Spanner.from_regex(pattern)
        automaton = spanner.compiled(document)
        seconds, _ = timed(
            lambda: evaluate(automaton, document, check_determinism=False), repeat=2
        )
        rows.append(
            [num_keywords, automaton.num_states, automaton.num_transitions, f"{seconds * 1e3:.1f} ms"]
        )
    return "### B8 — preprocessing time vs. automaton size (fixed document)\n\n" + table(
        ["keywords", "det seVA states", "det seVA transitions", "preprocessing"], rows
    )


EXPERIMENTS = [
    experiment_b1,
    experiment_b2,
    experiment_b3,
    experiment_b4,
    experiment_b5,
    experiment_b6,
    experiment_b7,
    experiment_b8,
]


def main() -> None:
    for experiment in EXPERIMENTS:
        print(experiment())
        print()


if __name__ == "__main__":
    main()
