"""B12 — chunk-fed streaming vs the whole-document arena engine.

Measures what streaming is *for* on the ``tailing-logs`` scenario:

* **first-result latency** — how long until the first mapping reaches the
  caller.  The whole-document engine must finish preprocessing the entire
  document before its arena yields anything; the streaming evaluator in
  ``emit="incremental"`` mode delivers a match as soon as the chunk that
  settles it has been fed.
* **peak buffered arena** — the largest number of arena cells alive at
  once.  The whole-document arena grows with the number of matches; the
  streaming evaluator flushes settled mappings and compacts, so its
  buffer tracks the in-flight state only.
* **throughput** — end-to-end seconds for the full stream, as the cost
  check: chunk-fed evaluation re-enters the engine loop per chunk, so it
  should stay within a modest factor of the whole-document run.

All three ratios are gated by CI with absolute floors (see
``run_all.py``): streaming must *beat* the whole-document engine on
first-result latency (1.5×) and peak buffer (1.2×), and
``speedup_streaming_throughput_vs_arena`` must stay above 0.5× — a
catastrophic chunk-overhead regression fails the build.

Usage::

    python benchmarks/bench_streaming.py [--smoke] [--output report.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime.engine import EvaluationScratch, evaluate_compiled_arena  # noqa: E402
from repro.runtime.streaming import StreamingEvaluator  # noqa: E402
from repro.spanners.spanner import Spanner  # noqa: E402
from repro.workloads.collections import chunked_document, scenario  # noqa: E402


def time_arena(runtime, document, *, repeat: int):
    """Whole-document run: (first-result seconds, total seconds, cells)."""
    scratch = EvaluationScratch(runtime)
    best_first = best_total = None
    cells = mappings = 0
    for _ in range(repeat):
        start = time.perf_counter()
        result = evaluate_compiled_arena(runtime, document, scratch=scratch)
        count = 0
        first = None
        for _mapping in result:
            if first is None:
                first = time.perf_counter() - start
            count += 1
        total = time.perf_counter() - start
        first = total if first is None else first
        best_first = first if best_first is None else min(best_first, first)
        best_total = total if best_total is None else min(best_total, total)
        cells = len(result.cell_nodes)
        mappings = count
    return best_first, best_total, cells, mappings


def time_streaming(runtime, document, *, chunk_size: int, repeat: int):
    """Chunk-fed incremental run: (first seconds, total seconds, peak cells)."""
    best_first = best_total = None
    peak = mappings = 0
    for _ in range(repeat):
        evaluator = StreamingEvaluator(runtime, emit="incremental")
        start = time.perf_counter()
        first = None
        count = 0
        for chunk in chunked_document(document, chunk_size):
            delivered = evaluator.feed(chunk)
            if delivered and first is None:
                first = time.perf_counter() - start
            count += len(delivered)
        for _mapping in evaluator.finish().residual:
            if first is None:
                first = time.perf_counter() - start
            count += 1
        total = time.perf_counter() - start
        first = total if first is None else first
        best_first = first if best_first is None else min(best_first, first)
        best_total = total if best_total is None else min(best_total, total)
        peak = evaluator.peak_arena_cells
        mappings = count
    return best_first, best_total, peak, mappings


def bench_workload(name: str, *, num_documents: int, scale: int, chunk_size: int, repeat: int):
    workload = scenario(name, num_documents=num_documents, scale=scale)
    spanner = Spanner.from_regex(workload.pattern)
    runtime = spanner.runtime("".join(doc.text for doc in workload.collection))

    arena_first = arena_total = stream_first = stream_total = 0.0
    arena_cells = stream_peak = total_mappings = 0
    for document in workload.collection:
        a_first, a_total, a_cells, a_count = time_arena(
            runtime, document, repeat=repeat
        )
        s_first, s_total, s_peak, s_count = time_streaming(
            runtime, document, chunk_size=chunk_size, repeat=repeat
        )
        if a_count != s_count:
            raise AssertionError(
                f"{name}: engines disagree — arena={a_count}, streaming={s_count}"
            )
        arena_first += a_first
        arena_total += a_total
        stream_first += s_first
        stream_total += s_total
        arena_cells += a_cells
        stream_peak += s_peak
        total_mappings += a_count

    results = {
        "arena": {
            "first_result_seconds": arena_first,
            "total_seconds": arena_total,
            "arena_cells": arena_cells,
        },
        "streaming": {
            "first_result_seconds": stream_first,
            "total_seconds": stream_total,
            "peak_arena_cells": stream_peak,
            "chunk_size": chunk_size,
        },
        "speedup_first_result_vs_arena": arena_first / stream_first
        if stream_first
        else float("inf"),
        "speedup_peak_cells_vs_arena": arena_cells / stream_peak
        if stream_peak
        else float("inf"),
        "speedup_streaming_throughput_vs_arena": arena_total / stream_total
        if stream_total
        else float("inf"),
    }
    return {
        "workload": name,
        "documents": len(workload.collection),
        "total_chars": workload.total_length,
        "mappings": total_mappings,
        "results": results,
    }


def print_report(entry) -> None:
    rows = entry["results"]
    print(
        f"\n### {entry['workload']}: {entry['documents']} documents, "
        f"{entry['total_chars']} chars, {entry['mappings']} mappings"
    )
    print(f"{'strategy':<12} {'first result':>14} {'total':>10} {'buffered cells':>15}")
    print(
        f"{'arena':<12} {rows['arena']['first_result_seconds']:>13.4f}s "
        f"{rows['arena']['total_seconds']:>9.4f}s "
        f"{rows['arena']['arena_cells']:>15}"
    )
    print(
        f"{'streaming':<12} {rows['streaming']['first_result_seconds']:>13.4f}s "
        f"{rows['streaming']['total_seconds']:>9.4f}s "
        f"{rows['streaming']['peak_arena_cells']:>15}"
    )
    print(
        f"first result: {rows['speedup_first_result_vs_arena']:.2f}x earlier   "
        f"peak buffer: {rows['speedup_peak_cells_vs_arena']:.2f}x smaller   "
        f"throughput: {rows['speedup_streaming_throughput_vs_arena']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workloads for CI (a few seconds)"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "streaming_report.json"),
        help="path of the JSON report",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        workloads = [dict(num_documents=2, scale=2500, chunk_size=2048, repeat=2)]
    else:
        workloads = [dict(num_documents=4, scale=12000, chunk_size=8192, repeat=3)]

    report = {"smoke": args.smoke, "cpu_count": os.cpu_count(), "workloads": []}
    for config in workloads:
        entry = bench_workload("tailing-logs", **config)
        report["workloads"].append(entry)
        print_report(entry)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
