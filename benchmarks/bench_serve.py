"""B13 — the ``repro serve`` front-end under concurrent multi-tenant load.

Boots the asyncio server in-process (ephemeral port) and drives it with
many concurrent clients — all sessions **open before any feeds**, so the
server demonstrably sustains the full session count at once — over the
``tailing-logs`` scenario.  Every client uses the same pattern and
alphabet, so the shared plan cache compiles once and serves the rest
from memory.  Reported per workload:

* **requests_per_second** — completed sessions over the wall-clock of
  the whole storm (opens included).
* **latency_p50_ms / latency_p99_ms** — per-request latency (open →
  ``done`` event), nearest-rank percentiles.
* **speedup_p99_vs_budget** — the latency budget over the measured p99;
  CI floors this at 1.0, i.e. p99 must stay inside the budget.
* **speedup_serve_vs_direct** — direct in-process
  ``StreamingEvaluator`` time over server wall-clock for the same work:
  the cost of the HTTP/session layer, tracked as a trajectory ratio.
* **plan_cache_hit_ratio** — from ``/metrics``; with N sessions on one
  pattern it must approach (N-1)/N, and CI floors it at 0.5.

The bench also asserts the differential check (server mappings ==
direct mappings) and that ``peak_active_sessions`` reached the full
concurrency — a server that serialized the opens would fail here, not
just look slow.

Usage::

    python benchmarks/bench_serve.py [--smoke] [--output report.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.server import ReproServer, ServerConfig, SpannerService, StreamClient  # noqa: E402
from repro.server.client import fetch_json  # noqa: E402
from repro.spanners.spanner import Spanner  # noqa: E402
from repro.workloads.collections import chunked_document, scenario  # noqa: E402

#: The per-request latency budgets the p99 is gated against (milliseconds).
#: Smoke runs on shared CI runners with ~50 sessions multiplexed onto one
#: event loop, so the budget is deliberately generous — the floor catches
#: order-of-magnitude regressions (a blocking call in the accept path, an
#: O(sessions) scan per event), not scheduler jitter.
P99_BUDGET_MS = {"smoke": 4000.0, "full": 20000.0}


def percentile(samples: list[float], point: float) -> float:
    ordered = sorted(samples)
    rank = max(1, -(-point * len(ordered) // 100))  # nearest rank, ceil
    return ordered[int(rank) - 1]


def direct_time(pattern: str, alphabet: str, documents, *, chunk_size: int):
    """The same work without the server: one evaluator per session."""
    spanner = Spanner.from_regex(pattern)
    start = time.perf_counter()
    mappings = 0
    for document in documents:
        evaluator = spanner.stream(
            alphabet=alphabet, emit="incremental", retain_settled=False
        )
        for chunk in chunked_document(document, chunk_size):
            mappings += len(evaluator.feed(chunk))
        mappings += sum(1 for _mapping in evaluator.finish().residual)
    return time.perf_counter() - start, mappings


async def storm(
    service: SpannerService,
    port: int,
    pattern: str,
    alphabet: str,
    documents,
    *,
    concurrency: int,
    chunk_size: int,
):
    """Open *concurrency* sessions at once, then feed each a document."""
    host = service.config.host
    jobs = [documents[index % len(documents)] for index in range(concurrency)]
    start = time.perf_counter()

    async def open_one(index: int):
        opened_at = time.perf_counter()
        client = await StreamClient.open(
            host, port, pattern, alphabet=alphabet, emit="incremental"
        )
        if client.status != 200:
            raise AssertionError(
                f"session {index} refused: {client.status} {client.error_body}"
            )
        return client, opened_at

    opened = await asyncio.gather(*(open_one(index) for index in range(concurrency)))
    peak_active = service.metrics.snapshot()["sessions"]["peak_active"]
    if peak_active < concurrency:
        raise AssertionError(
            f"server never held all sessions at once: peak_active={peak_active}, "
            f"expected >= {concurrency}"
        )

    async def drive(client: StreamClient, opened_at: float, document):
        for chunk in chunked_document(document, chunk_size):
            await client.feed(chunk)
        events = await client.finish()
        latency = time.perf_counter() - opened_at
        await client.close()
        done = events[-1] if events else {}
        if not done.get("done"):
            raise AssertionError(f"session ended without a done event: {events[-3:]}")
        return latency, done.get("mappings", 0)

    outcomes = await asyncio.gather(
        *(
            drive(client, opened_at, document)
            for (client, opened_at), document in zip(opened, jobs)
        )
    )
    elapsed = time.perf_counter() - start
    latencies = [latency for latency, _count in outcomes]
    mappings = sum(count for _latency, count in outcomes)
    return elapsed, latencies, mappings, peak_active


async def bench_workload(
    name: str,
    *,
    num_documents: int,
    scale: int,
    concurrency: int,
    chunk_size: int,
    budget_ms: float,
):
    workload = scenario(name, num_documents=num_documents, scale=scale)
    documents = list(workload.collection)
    # Declare exactly the characters the documents use: the sessions are
    # about serving throughput, not alphabet-width compilation.
    alphabet = "".join(sorted({char for doc in documents for char in doc.text}))
    jobs = [documents[index % len(documents)] for index in range(concurrency)]

    direct_seconds, direct_mappings = direct_time(
        workload.pattern, alphabet, jobs, chunk_size=chunk_size
    )

    config = ServerConfig(
        port=0,
        max_sessions=concurrency,
        idle_timeout=120.0,
        plan_cache_size=8,
    )
    service = SpannerService(config)
    server = ReproServer(service)
    await server.start()
    try:
        elapsed, latencies, served_mappings, peak_active = await storm(
            service,
            server.port,
            workload.pattern,
            alphabet,
            documents,
            concurrency=concurrency,
            chunk_size=chunk_size,
        )
        _status, metrics = await fetch_json(config.host, server.port, "/metrics")
    finally:
        await server.close()

    if served_mappings != direct_mappings:
        raise AssertionError(
            f"{name}: engines disagree — served={served_mappings}, "
            f"direct={direct_mappings}"
        )

    p50_ms = percentile(latencies, 50.0) * 1000.0
    p99_ms = percentile(latencies, 99.0) * 1000.0
    results = {
        "serve": {
            "requests": concurrency,
            "concurrency": concurrency,
            "elapsed_seconds": elapsed,
            "peak_active_sessions": peak_active,
            "chunk_size": chunk_size,
        },
        "direct": {"total_seconds": direct_seconds},
        "requests_per_second": concurrency / elapsed if elapsed else float("inf"),
        "latency_p50_ms": p50_ms,
        "latency_p99_ms": p99_ms,
        "latency_budget_ms": budget_ms,
        "speedup_p99_vs_budget": budget_ms / p99_ms if p99_ms else float("inf"),
        "speedup_serve_vs_direct": direct_seconds / elapsed
        if elapsed
        else float("inf"),
        "plan_cache_hit_ratio": metrics["plan_cache"]["hit_ratio"],
    }
    return {
        "workload": f"{name}-serve",
        "documents": len(documents),
        "total_chars": workload.total_length,
        "mappings": served_mappings,
        "results": results,
    }


def print_report(entry) -> None:
    rows = entry["results"]
    serve = rows["serve"]
    print(
        f"\n### {entry['workload']}: {serve['concurrency']} concurrent sessions, "
        f"{entry['total_chars']} chars/doc-set, {entry['mappings']} mappings"
    )
    print(
        f"throughput: {rows['requests_per_second']:.1f} req/s   "
        f"p50: {rows['latency_p50_ms']:.1f}ms   "
        f"p99: {rows['latency_p99_ms']:.1f}ms (budget {rows['latency_budget_ms']:.0f}ms)"
    )
    print(
        f"peak active: {serve['peak_active_sessions']}   "
        f"plan-cache hit ratio: {rows['plan_cache_hit_ratio']:.3f}   "
        f"serve vs direct: {rows['speedup_serve_vs_direct']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workloads for CI (a few seconds)"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "serve_report.json"),
        help="path of the JSON report",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        configs = [
            dict(
                num_documents=2,
                scale=1500,
                concurrency=50,
                chunk_size=1024,
                budget_ms=P99_BUDGET_MS["smoke"],
            )
        ]
    else:
        configs = [
            dict(
                num_documents=4,
                scale=8000,
                concurrency=64,
                chunk_size=4096,
                budget_ms=P99_BUDGET_MS["full"],
            )
        ]

    report = {"smoke": args.smoke, "cpu_count": os.cpu_count(), "workloads": []}
    for config in configs:
        entry = asyncio.run(bench_workload("tailing-logs", **config))
        report["workloads"].append(entry)
        print_report(entry)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
