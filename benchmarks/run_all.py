"""Run the benchmark suite, gate it, and emit the BENCH_10.json snapshot.

One entry point for everything CI (and a developer refreshing baselines)
needs:

1. run the seven report-producing benchmarks (``bench_batch.py``,
   ``bench_enumerate.py``, ``bench_algebra.py``, ``bench_streaming.py``,
   ``bench_serve.py``, ``bench_shard.py``, ``bench_runlength.py``), in
   smoke mode by default;
2. gate every report against its committed baseline with
   ``check_regression.py`` (ratio tolerance plus the absolute floors the
   acceptance criteria pin — including the streaming first-result-latency
   and peak-buffer floors, and the serving throughput / p99-budget /
   plan-cache-hit-ratio floors).  Gates are **core-aware**: the
   shard-parallel wall-clock floor (>=1.5x with 2+ workers) is enforced
   hard only on runners with at least four cores; below that the floor is
   physically unreachable regardless of engine quality, so it runs
   through ``--soft-min-speedup`` (reported, never failing) while the
   core-independent shard overhead ratios stay gated hard everywhere;
3. write a consolidated perf-trajectory snapshot — ``BENCH_10.json`` at the
   repository root — containing only the machine-portable ratio metrics of
   every workload (plus ``cpu_count``, the effective shard worker count,
   and whether/which numpy backed the run-length kernel's int64 path, so
   the ratios can be read in context), so the repo history carries one
   comparable perf number set per PR.

Usage::

    python benchmarks/run_all.py [--full] [--skip-gates] [--output BENCH_10.json]

``--full`` runs the full-size workloads instead of the CI smokes (and
skips the gates: the committed baselines are smoke-sized, so comparing
full-size ratios against them would be meaningless); ``--skip-gates``
produces reports and the snapshot without failing on regressions
(baseline refresh workflow).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

#: (script, report file, baseline file, extra check_regression arguments)
SUITE = [
    (
        "bench_batch.py",
        "batch_report.json",
        os.path.join("baselines", "batch_smoke.json"),
        # The sparse-logs acceptance criterion: the quiescent fast path must
        # keep a >=2x edge over the same engine with the sprint disabled.
        # The resilience acceptance criterion: with injection disabled the
        # supervised serial path must stay at parity with the plain
        # compiled run (its no-fault cost is a couple of None-checks per
        # document; the interleaved paired measurement on the contacts
        # workload reads ~1.00, i.e. well inside the <=2% budget).  The
        # floor is set below the measured value for the same reason as
        # every other gate here — shared-runner jitter headroom — so only
        # a genuine supervision tax fails the build.
        [
            "--min-speedup",
            "speedup_fastpath_vs_nofast=2.0",
            "--min-speedup",
            "speedup_supervised_vs_plain=0.9",
        ],
    ),
    (
        "bench_enumerate.py",
        "enumerate_report.json",
        os.path.join("baselines", "enumerate_smoke.json"),
        # Floor 1.3 is a safety net against the arena regressing toward
        # parity; the >=1.5x acceptance evidence is the committed baseline
        # (and any quiet machine), while shared runners get jitter headroom.
        # The sparse-logs-preprocessing entry additionally carries the
        # fast-path floor, mirroring the batch gate.
        [
            "--min-speedup",
            "speedup_arena_vs_reference=1.3",
            "--min-speedup",
            "speedup_fastpath_vs_nofast=2.0",
        ],
    ),
    (
        "bench_algebra.py",
        "algebra_report.json",
        os.path.join("baselines", "algebra_smoke.json"),
        [],
    ),
    (
        "bench_streaming.py",
        "streaming_report.json",
        os.path.join("baselines", "streaming_smoke.json"),
        # The streaming acceptance criteria: a first result must arrive
        # well before the whole-document arena finishes preprocessing,
        # the incremental buffer must stay below the full arena, and
        # chunk-fed throughput must not collapse.
        [
            "--min-speedup",
            "speedup_first_result_vs_arena=1.5",
            "--min-speedup",
            "speedup_peak_cells_vs_arena=1.2",
            "--min-speedup",
            "speedup_streaming_throughput_vs_arena=0.5",
        ],
    ),
    (
        "bench_serve.py",
        "serve_report.json",
        os.path.join("baselines", "serve_smoke.json"),
        # The serving acceptance criteria: the p99 request latency must
        # stay inside the committed budget, throughput must not collapse
        # (the smoke drives 50 concurrent sessions, so 20 req/s is a
        # generous floor even on a one-core runner), and the shared plan
        # cache must actually share — 50 sessions on one pattern sit at
        # a 0.98 hit ratio, so 0.5 only fails if sharing breaks.
        [
            "--min-speedup",
            "speedup_p99_vs_budget=1.0",
            "--min-speedup",
            "requests_per_second=20.0",
            "--min-speedup",
            "plan_cache_hit_ratio=0.5",
        ],
    ),
    (
        "bench_shard.py",
        "shard_report.json",
        os.path.join("baselines", "shard_smoke.json"),
        # Core-independent shard floors, gated hard on every runner: the
        # capture-free summary pass must stay within a constant factor of
        # one serial scan (measured ~1x; 0.4 leaves jitter headroom), and
        # the whole inline decomposition — summaries, stitch, replays,
        # relocation, all on one core — must not fall below a quarter of
        # serial speed (measured ~0.5x).  The machine-dependent wall-clock
        # floor is appended per-run in main(), hard or soft by cpu count.
        [
            "--min-speedup",
            "speedup_summary_pass_vs_serial=0.4",
            "--min-speedup",
            "speedup_sharded_inline_vs_serial=0.25",
        ],
    ),
    (
        "bench_runlength.py",
        "runlength_report.json",
        os.path.join("baselines", "runlength_smoke.json"),
        # The run-length acceptance criterion: counting through the run
        # kernels (pure-python rows) must hold a >=5x edge over the
        # scalar per-character fold on both the sparse-logs and the
        # dense-run workload (measured ~14x and ~50x; the floor leaves
        # shared-runner jitter headroom).  The vs-fastpath and numpy
        # ratios are reported in the snapshot but deliberately ungated:
        # the first is sub-1x on sparse logs by design (the scalar
        # sprint skips at C speed there — which is why kernel="auto"
        # keeps short-run documents scalar), the second depends on
        # whether the runner installed numpy.
        ["--min-speedup", "speedup_runlength_count_vs_scalar=5.0"],
    ),
]

#: The shard-parallel acceptance floor: >=1.5x wall clock with 2+ workers.
#: Only enforceable where the hardware can express it — a one- or two-core
#: runner cannot reach 1.5x with the summary pass costing ~1 serial scan —
#: so below four cores it is soft-gated (reported, not failing).
SHARD_WALLCLOCK_FLOOR = "speedup_sharded_vs_serial=1.5"


def _numpy_snapshot() -> dict:
    """numpy presence/version of the interpreter running the suite."""
    try:
        import numpy
    except ImportError:
        return {"available": False, "version": None}
    return {"available": True, "version": numpy.__version__}


def run(command: list[str]) -> int:
    print("+", " ".join(command), flush=True)
    return subprocess.call(command, cwd=REPO_ROOT)


def ratio_summary(report_path: str) -> dict:
    """The machine-portable ratio metrics of one report, by workload."""
    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    summary = {}
    for entry in report.get("workloads", []):
        ratios = {
            key: round(value, 3)
            for key, value in entry.get("results", {}).items()
            if key.startswith("speedup_")
            and isinstance(value, (int, float))
            # speedup_processes_vs_serial depends on cpu_count and
            # pool-spawn cost; committing it would churn the trajectory
            # file with machine noise on every refresh.
            and key != "speedup_processes_vs_serial"
        }
        summary[entry["workload"]] = {
            "documents": entry.get("documents"),
            "total_chars": entry.get("total_chars"),
            "mappings": entry.get("mappings"),
            **ratios,
        }
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true", help="full-size workloads (default: smoke)"
    )
    parser.add_argument(
        "--skip-gates",
        action="store_true",
        help="produce reports and the snapshot without failing on regressions",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="path of the consolidated snapshot (default: BENCH_10.json at the "
        "repo root for smoke runs, BENCH_10_full.json for --full so a local "
        "full-size run never overwrites the committed smoke trajectory)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        name = "BENCH_10_full.json" if args.full else "BENCH_10.json"
        args.output = os.path.join(REPO_ROOT, name)

    mode_args = [] if args.full else ["--smoke"]
    # The committed baselines are smoke-sized; full-size ratios are
    # scale-dependent (same workload names, different instances), so
    # gating them against the smoke baselines would be meaningless.
    skip_gates = args.skip_gates or args.full
    if args.full and not args.skip_gates:
        print("note: --full skips the regression gates (baselines are smoke-sized)")
    failures: list[str] = []
    cpu_count = os.cpu_count() or 1
    snapshot = {
        "pr": 10,
        "smoke": not args.full,
        "cpu_count": cpu_count,
        # The run-length count ratios depend on whether the exact-int64
        # numpy path backed long general runs; record presence and
        # version so a trajectory diff can tell engine changes from
        # environment changes.
        "numpy": _numpy_snapshot(),
        "benchmarks": {},
    }

    for script, report_name, baseline, extra in SUITE:
        report_path = os.path.join(BENCH_DIR, report_name)
        code = run(
            [sys.executable, os.path.join(BENCH_DIR, script)]
            + mode_args
            + ["--output", report_path]
        )
        if code != 0:
            failures.append(f"{script} exited with {code}")
            continue
        snapshot["benchmarks"][script.removeprefix("bench_").removesuffix(".py")] = (
            ratio_summary(report_path)
        )
        if script == "bench_shard.py":
            # The wall-clock speedup only means something next to the
            # worker count that produced it; record both in the snapshot.
            with open(report_path, "r", encoding="utf-8") as handle:
                shard_report = json.load(handle)
            snapshot["shard_workers"] = shard_report.get("workers")
            gate_flag = "--min-speedup" if cpu_count >= 4 else "--soft-min-speedup"
            extra = extra + [gate_flag, SHARD_WALLCLOCK_FLOOR]
        if skip_gates:
            continue
        code = run(
            [
                sys.executable,
                os.path.join(BENCH_DIR, "check_regression.py"),
                "--baseline",
                os.path.join(BENCH_DIR, baseline),
                "--current",
                report_path,
                "--tolerance",
                "1.5",
            ]
            + extra
        )
        if code != 0:
            failures.append(f"regression gate failed for {report_name}")

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    print(f"\nperf-trajectory snapshot written to {args.output}")

    if failures:
        print("\nbenchmark suite FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("benchmark suite passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
