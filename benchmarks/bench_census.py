"""B7 — the Census reduction and the cost of counting for functional VA
(Theorem 5.2).

Counting the outputs of a *deterministic sequential* eVA is cheap
(Theorem 5.1); counting for a non-deterministic functional VA is
SpanL-complete, and the only generic route through this library is to
determinize first (cost ``O(2^|A|)``) and then run Algorithm 3.  The
benchmark makes that asymmetry concrete on Census instances: the direct
DFA-based count, the brute-force enumeration of accepted words, and the
count obtained through the spanner reduction.
"""

from __future__ import annotations

import pytest

from repro.counting.census import CensusInstance
from repro.workloads.spanners import random_census_nfa


def make_instance(num_states: int, length: int) -> CensusInstance:
    return CensusInstance(
        random_census_nfa(num_states, "ab", density=0.35, seed=13), length
    )


@pytest.mark.parametrize("length", [4, 6, 8])
def test_census_direct_dfa_count(benchmark, length):
    instance = make_instance(5, length)
    count = benchmark(instance.solve_directly)
    benchmark.extra_info["count"] = count


@pytest.mark.parametrize("length", [4, 6, 8])
def test_census_bruteforce_enumeration(benchmark, length):
    instance = make_instance(5, length)
    count = benchmark(instance.solve_by_enumeration)
    benchmark.extra_info["count"] = count
    assert count == instance.solve_directly()


@pytest.mark.parametrize("length", [4, 6])
def test_census_via_spanner_reduction(benchmark, length):
    instance = make_instance(5, length)
    count = benchmark(instance.solve_via_spanner)
    benchmark.extra_info["count"] = count
    assert count == instance.solve_directly()


@pytest.mark.parametrize("length", [4, 6])
def test_census_via_compiled_spanner_reduction(benchmark, length):
    # The compiled integer Algorithm 3 on class-indexed tables, counting
    # several passes through one reusable EvaluationScratch — the
    # steady-state batch-counting shape.
    instance = make_instance(5, length)
    count = benchmark(lambda: instance.solve_via_compiled_spanner(repeat=4))
    benchmark.extra_info["count"] = count
    assert count == instance.solve_directly()


@pytest.mark.parametrize("num_states", [3, 5, 7])
def test_census_reduction_construction_cost(benchmark, num_states):
    instance = make_instance(num_states, 5)

    def build():
        automaton, document = instance.to_spanner()
        return automaton.num_states, len(document)

    states, doc_length = benchmark(build)
    benchmark.extra_info["reduction_states"] = states
    benchmark.extra_info["document_length"] = doc_length
