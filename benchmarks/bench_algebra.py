"""B6 — algebra operator constructions and end-to-end algebra evaluation
(Proposition 4.4, Propositions 4.5/4.6).

Measures (a) the size and construction time of automaton-level join / union /
projection on functional eVA, and (b) the end-to-end evaluation of an algebra
expression over contact documents through the full pipeline, compared with
the set-level evaluation of the same expression.
"""

from __future__ import annotations

import pytest

from repro.algebra.automaton_ops import join_eva, project_eva, union_eva
from repro.algebra.compile import evaluate_expression_setwise
from repro.automata.transforms import va_to_eva
from repro.regex.compiler import compile_to_va
from repro.spanners.spanner import Spanner
from repro.workloads.documents import contact_document
from repro.workloads.spanners import contact_expression

LEFT_PATTERN = "x{a+}b*"
RIGHT_PATTERN = "x{a+}y{b*}"
ALPHABET = "ab"


@pytest.fixture(scope="module")
def operand_evas():
    left = va_to_eva(compile_to_va(LEFT_PATTERN, ALPHABET))
    right = va_to_eva(compile_to_va(RIGHT_PATTERN, ALPHABET))
    return left, right


def test_join_construction(benchmark, operand_evas):
    left, right = operand_evas
    joined = benchmark(lambda: join_eva(left, right))
    benchmark.extra_info["left_states"] = left.num_states
    benchmark.extra_info["right_states"] = right.num_states
    benchmark.extra_info["join_states"] = joined.num_states
    assert joined.num_states <= left.num_states * right.num_states


def test_union_construction(benchmark, operand_evas):
    left, right = operand_evas
    union = benchmark(lambda: union_eva(left, right))
    benchmark.extra_info["union_states"] = union.num_states
    assert union.num_states <= left.num_states + right.num_states + 1


def test_projection_construction(benchmark, operand_evas):
    _left, right = operand_evas
    projected = benchmark(lambda: project_eva(right, ["y"]))
    benchmark.extra_info["projected_states"] = projected.num_states
    assert projected.num_states <= right.num_states


@pytest.mark.parametrize("records", [5, 10, 20])
def test_algebra_expression_via_compiled_automaton(benchmark, records):
    expression = contact_expression()
    spanner = Spanner.from_expression(expression)
    document = contact_document(records, seed=3)
    count = benchmark(lambda: len(spanner.evaluate(document)))
    benchmark.extra_info["outputs"] = count


@pytest.mark.parametrize("records", [5, 10])
def test_algebra_expression_setwise_for_comparison(benchmark, records):
    expression = contact_expression()
    document = contact_document(records, seed=3)
    count = benchmark(lambda: len(evaluate_expression_setwise(expression, document.text)))
    benchmark.extra_info["outputs"] = count
