"""B6 — algebra operator constructions and end-to-end algebra evaluation
(Proposition 4.4, Propositions 4.5/4.6).

Measures (a) the size and construction time of automaton-level join / union /
projection on functional eVA, and (b) the end-to-end evaluation of an algebra
expression over contact documents through the full pipeline, compared with
the set-level evaluation of the same expression.

Run as a script, it additionally benchmarks the cost-based optimizer against
the monolithic compile-then-enumerate route on the ``join-heavy`` workload
(a join of periodic atoms whose fused product automaton has ``Θ(∏ periods)``
states) and writes a JSON report CI gates against
``benchmarks/baselines/algebra_smoke.json``::

    python benchmarks/bench_algebra.py --smoke --output benchmarks/algebra_report.json

In the report, ``reference`` is the monolithic route (compile the whole
expression into one automaton, determinize up front, then enumerate — the
paper's Propositions 4.5/4.6 evaluation); ``speedup_hybrid_vs_reference``
is the gated, machine-portable ratio.  ``monolithic_otf`` (the monolithic
automaton evaluated by the lazily determinizing subset engine) is reported
for context but not gated.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest  # noqa: E402

from repro.algebra.automaton_ops import join_eva, project_eva, union_eva  # noqa: E402
from repro.algebra.compile import evaluate_expression_setwise  # noqa: E402
from repro.automata.transforms import va_to_eva  # noqa: E402
from repro.regex.compiler import compile_to_va  # noqa: E402
from repro.spanners.spanner import Spanner  # noqa: E402
from repro.workloads.documents import contact_document  # noqa: E402
from repro.workloads.spanners import contact_expression  # noqa: E402

LEFT_PATTERN = "x{a+}b*"
RIGHT_PATTERN = "x{a+}y{b*}"
ALPHABET = "ab"


@pytest.fixture(scope="module")
def operand_evas():
    left = va_to_eva(compile_to_va(LEFT_PATTERN, ALPHABET))
    right = va_to_eva(compile_to_va(RIGHT_PATTERN, ALPHABET))
    return left, right


def test_join_construction(benchmark, operand_evas):
    left, right = operand_evas
    joined = benchmark(lambda: join_eva(left, right))
    benchmark.extra_info["left_states"] = left.num_states
    benchmark.extra_info["right_states"] = right.num_states
    benchmark.extra_info["join_states"] = joined.num_states
    assert joined.num_states <= left.num_states * right.num_states


def test_union_construction(benchmark, operand_evas):
    left, right = operand_evas
    union = benchmark(lambda: union_eva(left, right))
    benchmark.extra_info["union_states"] = union.num_states
    assert union.num_states <= left.num_states + right.num_states + 1


def test_projection_construction(benchmark, operand_evas):
    _left, right = operand_evas
    projected = benchmark(lambda: project_eva(right, ["y"]))
    benchmark.extra_info["projected_states"] = projected.num_states
    assert projected.num_states <= right.num_states


@pytest.mark.parametrize("records", [5, 10, 20])
def test_algebra_expression_via_compiled_automaton(benchmark, records):
    expression = contact_expression()
    spanner = Spanner.from_expression(expression)
    document = contact_document(records, seed=3)
    count = benchmark(lambda: len(spanner.evaluate(document)))
    benchmark.extra_info["outputs"] = count


@pytest.mark.parametrize("records", [5, 10])
def test_algebra_expression_setwise_for_comparison(benchmark, records):
    expression = contact_expression()
    document = contact_document(records, seed=3)
    count = benchmark(lambda: len(evaluate_expression_setwise(expression, document.text)))
    benchmark.extra_info["outputs"] = count


# ---------------------------------------------------------------------- #
# Script mode: optimizer (hybrid) vs monolithic compile-then-enumerate
# ---------------------------------------------------------------------- #


def timed_route(expression, collection, engine: str, repeat: int) -> tuple[float, int]:
    """Best end-to-end seconds (fresh compile + full batch) and the count.

    A fresh :class:`Spanner` per repetition keeps compilation inside the
    timed region — the whole point of the comparison is that the hybrid
    plan never pays the monolithic product construction + determinization.
    """
    best = None
    total = 0
    for _ in range(repeat):
        start = time.perf_counter()
        spanner = Spanner.from_expression(expression, engine=engine)
        total = sum(result.count() for _doc_id, result in spanner.run_batch(collection))
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, total


def bench_optimizer_workload(*, num_documents: int, length: int, repeat: int) -> dict:
    """The ``join-heavy`` workload: hybrid vs monolithic routes."""
    from repro.workloads.collections import scenario

    built = scenario("join-heavy", num_documents=num_documents, scale=length)
    expression = built.expression
    collection = built.collection

    # Probe the plan over the batch's union alphabet (a document holding
    # exactly those characters), which is the key run_batch resolves
    # against; fail fast if the cost model ever stops cutting this
    # expression — the "hybrid" lane below would otherwise silently time
    # a fused plan and the gate failure would mislead.
    hybrid_plan = Spanner.from_expression(expression).plan(
        "".join(sorted(collection.alphabet()))
    )
    if hybrid_plan.engine != "hybrid":
        raise AssertionError(
            f"join-heavy is expected to produce a hybrid plan, got "
            f"{hybrid_plan.engine!r} ({hybrid_plan.reason})"
        )
    hybrid_seconds, hybrid_count = timed_route(expression, collection, "auto", repeat)
    mono_seconds, mono_count = timed_route(expression, collection, "compiled", repeat)
    otf_seconds, otf_count = timed_route(expression, collection, "compiled-otf", repeat)
    if not (hybrid_count == mono_count == otf_count):
        raise AssertionError(
            f"join-heavy: routes disagree — hybrid={hybrid_count}, "
            f"monolithic={mono_count}, monolithic_otf={otf_count}"
        )

    total_chars = collection.total_length()
    rows = {
        label: {
            "seconds": seconds,
            "chars_per_second": total_chars / seconds if seconds else float("inf"),
        }
        for label, seconds in (
            ("hybrid", hybrid_seconds),
            ("reference", mono_seconds),
            ("monolithic_otf", otf_seconds),
        )
    }
    rows["speedup_hybrid_vs_reference"] = mono_seconds / hybrid_seconds
    rows["speedup_hybrid_vs_monolithic_otf"] = otf_seconds / hybrid_seconds
    return {
        "workload": "join_heavy",
        "documents": len(collection),
        "total_chars": total_chars,
        "mappings": hybrid_count,
        "hybrid_plan_engine": hybrid_plan.engine,
        "results": rows,
    }


def print_report(entry: dict) -> None:
    rows = entry["results"]
    print(
        f"\n### {entry['workload']}: {entry['documents']} documents, "
        f"{entry['total_chars']} chars, {entry['mappings']} mappings"
    )
    print(f"{'route':<16} {'seconds':>10} {'chars/s':>14}")
    for label in ("hybrid", "reference", "monolithic_otf"):
        row = rows[label]
        print(f"{label:<16} {row['seconds']:>10.4f} {row['chars_per_second']:>14.0f}")
    print(
        f"hybrid vs monolithic (compile-then-enumerate): "
        f"{rows['speedup_hybrid_vs_reference']:.2f}x   "
        f"vs monolithic on-the-fly: {rows['speedup_hybrid_vs_monolithic_otf']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="optimizer (hybrid) vs monolithic algebra evaluation"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI (a few seconds)"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "algebra_report.json"),
        help="path of the JSON report",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        workload_args = dict(num_documents=6, length=1200, repeat=2)
    else:
        workload_args = dict(num_documents=16, length=2000, repeat=3)

    entry = bench_optimizer_workload(**workload_args)
    print_report(entry)
    report = {"smoke": args.smoke, "cpu_count": os.cpu_count(), "workloads": [entry]}
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
