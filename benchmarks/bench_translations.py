"""B5 — cost of the Section 4 translations (Propositions 4.1–4.3, 4.2 family).

Two measurements:

* the Proposition 4.2 family: a sequential VA with ``3ℓ+2`` states whose
  smallest equivalent eVA needs ``2^ℓ`` extended transitions — the benchmark
  records the measured transition counts so the exponential shape is visible;
* functional VA → deterministic seVA (Proposition 4.3): compilation time and
  resulting sizes for random functional VA of growing size, which stay far
  below the ``2^n`` worst case in practice.
"""

from __future__ import annotations

import pytest

from repro.automata.transforms import to_deterministic_sequential_eva, va_to_eva
from repro.workloads.spanners import proposition42_va, random_functional_va


@pytest.mark.parametrize("pairs", [2, 4, 6, 8])
def test_prop42_va_to_eva_blowup(benchmark, pairs):
    automaton = proposition42_va(pairs)

    def translate():
        extended = va_to_eva(automaton)
        return sum(1 for _ in extended.variable_transitions_from("c0"))

    outgoing = benchmark(translate)
    benchmark.extra_info["pairs"] = pairs
    benchmark.extra_info["va_transitions"] = automaton.num_transitions
    benchmark.extra_info["eva_transitions_from_initial"] = outgoing
    assert outgoing >= 2 ** pairs


@pytest.mark.parametrize("num_blocks,num_variables", [(4, 2), (6, 3), (8, 4)])
def test_functional_va_to_deterministic_seva(benchmark, num_blocks, num_variables):
    automaton = random_functional_va(
        num_blocks=num_blocks, num_variables=num_variables, alphabet="ab", seed=11
    )

    def translate():
        return to_deterministic_sequential_eva(automaton, assume_sequential=True)

    deterministic = benchmark(translate)
    benchmark.extra_info["va_states"] = automaton.num_states
    benchmark.extra_info["det_seva_states"] = deterministic.num_states
    benchmark.extra_info["det_seva_transitions"] = deterministic.num_transitions
    # Proposition 4.3: at most 2^n states.
    assert deterministic.num_states <= 2 ** automaton.num_states


@pytest.mark.parametrize("pairs", [2, 3, 4])
def test_arbitrary_va_full_pipeline(benchmark, pairs):
    """Proposition 4.1 route: sequentialization + determinization."""
    automaton = proposition42_va(pairs)
    deterministic = benchmark(lambda: to_deterministic_sequential_eva(automaton))
    benchmark.extra_info["det_seva_states"] = deterministic.num_states
    benchmark.extra_info["det_seva_transitions"] = deterministic.num_transitions
