"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module reproduces one experiment of ``DESIGN.md`` §5 (B1–B8).
The pytest-benchmark tables give the raw timings; the companion script
``benchmarks/report.py`` re-runs the same workloads standalone and prints the
scaling tables recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import pytest

from repro.spanners.spanner import Spanner
from repro.workloads.documents import contact_document
from repro.workloads.spanners import contact_pattern


@pytest.fixture(scope="session")
def contact_spanner() -> Spanner:
    """The Example 2.1 spanner, compiled once per session."""
    spanner = Spanner.from_regex(contact_pattern())
    # Warm the compilation cache with the alphabet of the benchmark documents.
    spanner.compiled(contact_document(5, seed=0))
    return spanner


@pytest.fixture(scope="session")
def contact_documents() -> dict[int, object]:
    """Contact documents of increasing size, shared across benchmarks."""
    return {records: contact_document(records, seed=7) for records in (25, 50, 100, 200)}
