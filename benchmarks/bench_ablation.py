"""Ablation — why the lazy-list DAG matters (Section 3.2.2 data structures).

Algorithm 1's O(|A| × |d|) preprocessing rests on the O(1) ``add`` /
``lazycopy`` / ``append`` operations of the shared-cell list structure.  The
ablation replaces it with eager Python-list copies (same algorithm, same
outputs) and measures the gap on the nested-capture workload, where the
number of partial runs grows with the square of the document.
"""

from __future__ import annotations

import pytest

from repro.baselines.eager import EagerCopyEvaluator
from repro.enumeration.evaluate import evaluate
from repro.spanners.spanner import Spanner
from repro.workloads.spanners import nested_capture_regex

LENGTHS = [50, 100, 200]


@pytest.fixture(scope="module")
def compiled_automaton():
    spanner = Spanner.from_regex(nested_capture_regex(1))
    return spanner.compiled("a")


@pytest.mark.parametrize("length", LENGTHS)
def test_lazy_list_preprocessing(benchmark, compiled_automaton, length):
    document = "a" * length
    benchmark.extra_info["document_length"] = length
    benchmark(lambda: evaluate(compiled_automaton, document, check_determinism=False))


@pytest.mark.parametrize("length", LENGTHS)
def test_eager_copy_preprocessing(benchmark, compiled_automaton, length):
    document = "a" * length
    evaluator = EagerCopyEvaluator(compiled_automaton)
    benchmark.extra_info["document_length"] = length
    benchmark(lambda: evaluator.partial_outputs(document))


def test_both_variants_agree(compiled_automaton):
    document = "a" * 30
    lazy = set(evaluate(compiled_automaton, document, check_determinism=False))
    eager = EagerCopyEvaluator(compiled_automaton).evaluate(document)
    assert lazy == eager
