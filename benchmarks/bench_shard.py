"""B10 — intra-document shard parallelism on one large sparse log.

Every other benchmark parallelizes across documents; this one measures
the shard-parallel engine (:mod:`repro.runtime.sharding`) *within* a
single document: split the class-id buffer into shards, summarize each
shard's state→frontier map concurrently with replaying the first shard,
stitch, then replay the reachable shards concurrently.

Three strategies are timed on one big ``sparse-logs`` document:

* ``serial``        — ``evaluate_compiled_arena`` (the baseline every
  shard run must be bit-identical to);
* ``sharded-inline`` — the same shard decomposition executed in-process
  (no pool): its cost vs serial is the pure decomposition overhead, a
  **core-independent** ratio (``speedup_sharded_inline_vs_serial``,
  expected around 0.5 on sprint-heavy input because summaries + replays
  do roughly one extra scan);
* ``sharded-pool``  — shards fanned out to a persistent worker pool
  (spawned outside the timed region); ``speedup_sharded_vs_serial`` is
  the headline wall-clock ratio, and the only machine-dependent one.

The report also carries ``speedup_summary_pass_vs_serial`` — serial
seconds over the summed in-task summary-pass seconds — which pins the
claim that the capture-free pass reuses the quiescent sprint and stays
within a constant factor of one serial scan regardless of core count.
CI gates the core-independent ratios everywhere and the wall-clock
speedup only on runners with enough cores to express it (see
``run_all.py``).

Usage::

    python benchmarks/bench_shard.py [--smoke] [--workers N] [--output report.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runtime.engine import (  # noqa: E402
    EvaluationScratch,
    count_compiled,
    evaluate_compiled_arena,
)
from repro.runtime.sharding import (  # noqa: E402
    ShardMetrics,
    ShardPool,
    evaluate_sharded,
)
from repro.spanners.spanner import Spanner  # noqa: E402
from repro.workloads.collections import scenario  # noqa: E402

ARENA_ARRAYS = (
    "node_markers",
    "node_positions",
    "node_starts",
    "node_ends",
    "cell_nodes",
    "cell_nexts",
    "final_entries",
)


def best_of(repeat: int, run) -> float:
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def bench_document(compiled, document, *, workers: int, repeat: int) -> dict:
    # At least four shards even with two workers: two-shard plans have no
    # interior shard, so the summary pass would never run and the
    # summary-overhead ratio could not be measured.
    shards = max(workers, 4)
    total_chars = len(document)
    scratch = EvaluationScratch(compiled)
    serial_arena = evaluate_compiled_arena(compiled, document, scratch=scratch)
    mappings = count_compiled(compiled, document, scratch=scratch)

    serial_seconds = best_of(
        repeat,
        lambda: evaluate_compiled_arena(compiled, document, scratch=scratch),
    )

    # Inline decomposition: same shard plan, no pool — the overhead of
    # summaries + stitch + replay when nothing runs concurrently.
    inline_metrics = ShardMetrics()
    inline_seconds = best_of(
        repeat,
        lambda: evaluate_sharded(
            compiled, document, shards=shards, metrics=inline_metrics
        ),
    )

    pool_metrics = ShardMetrics()
    with ShardPool(compiled, workers) as pool:
        pool_arena = evaluate_sharded(
            compiled, document, pool=pool, shards=shards, metrics=pool_metrics
        )
        for name in ARENA_ARRAYS:
            if list(getattr(pool_arena, name)) != list(getattr(serial_arena, name)):
                raise AssertionError(f"sharded arena differs from serial: {name}")
        pool_seconds = best_of(
            repeat,
            lambda: evaluate_sharded(
                compiled, document, pool=pool, shards=shards, metrics=pool_metrics
            ),
        )

    # In-task pass split (summed task durations — core-independent):
    # averaged over every pooled run recorded above.
    snapshot = pool_metrics.snapshot()
    runs = snapshot["documents_sharded"]
    summary_seconds = snapshot["summary_seconds"] / runs
    replay_seconds = snapshot["replay_seconds"] / runs

    rows = {
        "serial": {
            "seconds": serial_seconds,
            "chars_per_second": total_chars / serial_seconds,
        },
        "sharded-inline": {
            "seconds": inline_seconds,
            "chars_per_second": total_chars / inline_seconds,
        },
        "sharded-pool": {
            "seconds": pool_seconds,
            "chars_per_second": total_chars / pool_seconds,
        },
        "summary_pass_seconds": summary_seconds,
        "replay_pass_seconds": replay_seconds,
        "speedup_sharded_vs_serial": serial_seconds / pool_seconds,
        "speedup_sharded_inline_vs_serial": serial_seconds / inline_seconds,
        "speedup_summary_pass_vs_serial": (
            serial_seconds / summary_seconds if summary_seconds else float("inf")
        ),
    }
    return {
        "workload": "sparse-logs-single-doc",
        "documents": 1,
        "total_chars": total_chars,
        "mappings": mappings,
        "shards": shards,
        "results": rows,
    }


def print_report(entry, workers: int) -> None:
    rows = entry["results"]
    print(
        f"\n### {entry['workload']}: {entry['total_chars']} chars, "
        f"{entry['mappings']} mappings, {workers} workers"
    )
    print(f"{'strategy':<16} {'seconds':>10} {'chars/s':>14}")
    for label in ("serial", "sharded-inline", "sharded-pool"):
        row = rows[label]
        print(
            f"{label:<16} {row['seconds']:>10.4f} "
            f"{row['chars_per_second']:>14.0f}"
        )
    print(
        f"pass split: summary {rows['summary_pass_seconds']:.4f}s, "
        f"replay {rows['replay_pass_seconds']:.4f}s"
    )
    print(
        f"sharded vs serial: {rows['speedup_sharded_vs_serial']:.2f}x   "
        f"inline vs serial: {rows['speedup_sharded_inline_vs_serial']:.2f}x   "
        f"summary pass vs serial: {rows['speedup_summary_pass_vs_serial']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small document for CI (a few seconds)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, min(4, os.cpu_count() or 1)),
        help="shard worker count (default: cpu count clamped to [2, 4] — "
        "at least 2 so the decomposition is always exercised)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "shard_report.json"),
        help="path of the JSON report",
    )
    args = parser.parse_args(argv)
    if args.workers < 2:
        parser.error(f"--workers must be at least 2, got {args.workers}")

    lines = 8000 if args.smoke else 60000
    repeat = 3 if args.smoke else 5

    if (os.cpu_count() or 1) < 2:
        print(
            "note: only one CPU is available — the pooled run pays task "
            "shipping without any parallel speedup on this machine (CI "
            "soft-gates the wall-clock floor here; the core-independent "
            "overhead ratios are still gated hard)"
        )

    bench = scenario("sparse-logs", num_documents=1, scale=lines)
    document = next(iter(bench.collection))
    spanner = Spanner.from_regex(bench.pattern)
    compiled = spanner.runtime(document)

    entry = bench_document(compiled, document, workers=args.workers, repeat=repeat)
    print_report(entry, args.workers)

    report = {
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "workloads": [entry],
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nreport written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
