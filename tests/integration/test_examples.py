"""Smoke tests: every example script runs end-to-end with small inputs."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    """Import an example script as a module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name,kwargs",
    [
        ("quickstart", {}),
        ("contact_extraction", {"num_records": 20}),
        ("log_analysis", {"num_lines": 25}),
        ("dna_motifs", {"sequence_length": 300}),
        ("algebra_join", {}),
        ("census_counting", {}),
    ],
)
def test_example_runs(capsys, name, kwargs):
    module = load_example(name)
    module.main(**kwargs)
    output = capsys.readouterr().out
    assert output.strip(), f"example {name} produced no output"
