"""End-to-end tests of the ``repro serve`` subsystem.

Boots the real asyncio server on an ephemeral port inside each test and
drives it with the reference :class:`~repro.server.client.StreamClient`:

* **equivalence** — a session's emitted mappings match a direct
  :meth:`Spanner.stream` run over the same adversarial chunkings
  (including the delivered-then-retracted conflicts incremental mode may
  legitimately refuse, which the server must surface as in-band
  ``streaming`` errors, not wrong answers);
* **shared-cache eviction** — a plan cache under pressure evicts while
  sessions holding the evicted entries are still feeding, without
  corrupting them;
* **admission control** — opens past the session cap get 429 +
  ``Retry-After`` and the slot frees on session close;
* **/metrics** — the plan-cache hit ratio is visible after the second
  identical request, gauges return to zero, idle sessions expire.
"""

from __future__ import annotations

import asyncio
import json

from repro import Spanner, StreamingError
from repro.server import ReproServer, ServerConfig, SpannerService, StreamClient
from repro.server.client import fetch_json
from repro.server.service import AdmissionError

from harness import adversarial_chunkings, adversarial_documents

PATTERN = ".*x{a+b}.*"


def serve(config: ServerConfig):
    """Decorator-style runner: build service+server, run the body, close."""

    def run(body):
        async def main():
            service = SpannerService(config)
            server = ReproServer(service)
            await server.start()
            try:
                return await body(server, service)
            finally:
                await server.close()

        return asyncio.run(main())

    return run


def span_set(events):
    """Canonical mapping set from the server's NDJSON mapping events."""
    return frozenset(
        json.dumps(event["mapping"], sort_keys=True)
        for event in events
        if "mapping" in event
    )


def direct_outcome(pattern: str, alphabet: str, chunks):
    """What Spanner.stream does on the same feed: a mapping set or an error."""
    spanner = Spanner.from_regex(pattern)
    evaluator = spanner.stream(alphabet=alphabet, emit="incremental")
    collected = []
    try:
        for chunk in chunks:
            collected.extend(evaluator.feed(chunk))
    except StreamingError:
        return "streaming-error", None
    collected.extend(evaluator.finish().residual)
    return "ok", frozenset(
        json.dumps(
            {var: [span.begin, span.end] for var, span in mapping.items()},
            sort_keys=True,
        )
        for mapping in collected
    )


class TestEquivalence:
    def test_sessions_match_direct_streaming_over_adversarial_chunkings(self):
        documents = [doc for doc in adversarial_documents(seed=3) if doc]
        config = ServerConfig(port=0, idle_timeout=30.0, plan_cache_size=16)

        @serve(config)
        async def _(server, service):
            for text in documents:
                alphabet = "".join(sorted(set(text)))
                for label, chunks in adversarial_chunkings(text, seed=7):
                    if label.startswith("bytes-"):
                        continue  # the JSON protocol carries decoded text
                    expected_kind, expected = direct_outcome(
                        PATTERN, alphabet, chunks
                    )
                    client = await StreamClient.open(
                        server.config.host, server.port, PATTERN, alphabet=alphabet
                    )
                    assert client.status == 200, client.error_body
                    for chunk in chunks:
                        await client.feed(chunk)
                    events = await client.finish()
                    await client.close()
                    errors = [e for e in events if "error" in e]
                    if expected_kind == "streaming-error":
                        assert errors and errors[0]["code"] == "streaming", (
                            f"doc={text!r} chunking={label!r}: direct run "
                            f"raised but the server answered {events!r}"
                        )
                        continue
                    assert not errors, f"doc={text!r} chunking={label!r}: {errors}"
                    assert events[-1]["done"] is True
                    got = span_set(events)
                    assert got == expected, (
                        f"doc={text!r} chunking={label!r}: server={sorted(got)} "
                        f"direct={sorted(expected)}"
                    )

    def test_on_finish_mode_delivers_everything_unsettled(self):
        config = ServerConfig(port=0)

        @serve(config)
        async def _(server, service):
            client = await StreamClient.open(
                server.config.host, server.port, PATTERN,
                alphabet="ab", emit="on_finish",
            )
            await client.feed("aa")
            await client.feed("ba")
            events = await client.finish()
            await client.close()
            mapping_events = [e for e in events if "mapping" in e]
            assert mapping_events, events
            assert all(e["settled"] is False for e in mapping_events)
            incremental = direct_outcome(PATTERN, "ab", ["aa", "ba"])[1]
            assert span_set(events) == incremental


class TestSharedCacheEviction:
    def test_eviction_under_pressure_keeps_in_flight_sessions_correct(self):
        # Three distinct patterns through a 2-entry cache: opening the
        # third evicts the first while its session is still feeding.
        patterns = [".*x{a+b}.*", ".*y{ab+}.*", ".*z{aab}.*"]
        config = ServerConfig(port=0, plan_cache_size=2)

        @serve(config)
        async def _(server, service):
            clients = []
            for pattern in patterns:
                clients.append(
                    await StreamClient.open(
                        server.config.host, server.port, pattern, alphabet="ab"
                    )
                )
            assert all(client.status == 200 for client in clients)
            stats = service.plan_cache.stats()
            assert stats.evictions >= 1
            assert stats.entries <= 2

            # Every session — including the one whose entry was evicted —
            # still evaluates correctly on text fed *after* the eviction.
            text = "aabba"
            for client, pattern in zip(clients, patterns):
                await client.feed(text[:3])
                await client.feed(text[3:])
            for client, pattern in zip(clients, patterns):
                events = await client.finish()
                await client.close()
                assert events[-1]["done"] is True, (pattern, events)
                expected = direct_outcome(pattern, "ab", [text])[1]
                assert span_set(events) == expected, pattern

            # Reopening the evicted pattern simply recompiles: a miss,
            # not an error.
            reopened = await StreamClient.open(
                server.config.host, server.port, patterns[0], alphabet="ab"
            )
            assert reopened.status == 200
            assert reopened.ready["plan_cache"] in ("hit", "miss")
            await reopened.finish()
            await reopened.close()


class TestAdmissionControl:
    def test_rejects_past_cap_and_recovers(self):
        config = ServerConfig(port=0, max_sessions=2)

        @serve(config)
        async def _(server, service):
            host = server.config.host
            first = await StreamClient.open(host, server.port, PATTERN, alphabet="ab")
            second = await StreamClient.open(host, server.port, PATTERN, alphabet="ab")
            assert (first.status, second.status) == (200, 200)

            third = await StreamClient.open(host, server.port, PATTERN, alphabet="ab")
            assert third.status == 429
            assert "session cap" in third.error_body["error"]
            # The default AdmissionError carries retry_after=1.0: the header
            # must be exactly its integer form, and the machine-readable
            # value rides in the body.
            assert third.headers["retry-after"] == "1"
            assert third.error_body["retry_after"] == 1.0
            assert service.metrics.snapshot()["sessions"]["rejected"] == 1

            # Finishing one session frees its admission slot.
            await first.finish()
            await first.close()
            retry = await StreamClient.open(host, server.port, PATTERN, alphabet="ab")
            assert retry.status == 200
            await retry.finish()
            await second.finish()
            await retry.close()
            await second.close()
            assert service.active_sessions == 0

    def test_retry_after_header_rounds_up(self):
        # Retry-After is delta-seconds: a fractional backoff must round
        # *up* (0.3s -> "1", 1.2s -> "2"), never truncate to a header
        # that invites retrying before the window reopens.
        config = ServerConfig(port=0, max_sessions=2)

        @serve(config)
        async def _(server, service):
            host = server.config.host
            for backoff, expected in [(0.3, "1"), (1.0, "1"), (1.2, "2"), (4.0, "4")]:

                def reject(request, _backoff=backoff):
                    raise AdmissionError("session cap reached", retry_after=_backoff)

                original = service.open_session
                service.open_session = reject
                try:
                    client = await StreamClient.open(
                        host, server.port, PATTERN, alphabet="ab"
                    )
                finally:
                    service.open_session = original
                assert client.status == 429
                assert client.headers["retry-after"] == expected, backoff
                assert client.error_body["retry_after"] == backoff

    def test_session_byte_cap_surfaces_in_band(self):
        config = ServerConfig(port=0, max_session_bytes=8)

        @serve(config)
        async def _(server, service):
            client = await StreamClient.open(
                server.config.host, server.port, PATTERN, alphabet="ab"
            )
            await client.feed("abab")
            await client.feed("ababab")  # 10 bytes total > 8
            events = await client.finish()
            await client.close()
            errors = [e for e in events if e.get("code") == "too_large"]
            assert errors and "per-session cap" in errors[0]["error"]
            assert service.metrics.snapshot()["sessions"]["failed"] == 1

    def test_session_arena_cell_cap_surfaces_in_band(self):
        # A tiny cell budget trips the resource guard once the evaluator
        # has accumulated live arena state; the session fails with a typed
        # in-band event instead of an opaque disconnect.
        config = ServerConfig(port=0, max_session_arena_cells=2)

        @serve(config)
        async def _(server, service):
            client = await StreamClient.open(
                server.config.host, server.port, PATTERN, alphabet="ab"
            )
            for _ in range(6):
                await client.feed("aaaa")
            events = await client.finish()
            await client.close()
            errors = [e for e in events if e.get("code") == "resource_limit"]
            assert errors and "arena cells" in errors[0]["error"]
            assert service.metrics.snapshot()["sessions"]["failed"] == 1
            resilience = service.metrics.snapshot()["resilience"]
            assert resilience["resource_limit_trips"] >= 1


class TestMetricsEndpoint:
    def test_plan_cache_hit_ratio_positive_on_second_identical_request(self):
        config = ServerConfig(port=0)

        @serve(config)
        async def _(server, service):
            host = server.config.host
            for expected_outcome in ("miss", "hit"):
                client = await StreamClient.open(
                    host, server.port, PATTERN, alphabet="ab"
                )
                assert client.ready["plan_cache"] == expected_outcome
                await client.feed("aab")
                await client.finish()
                await client.close()

            status, metrics = await fetch_json(host, server.port, "/metrics")
            assert status == 200
            assert metrics["plan_cache"]["hit_ratio"] > 0
            assert metrics["plan_cache"]["hits"] == 1
            assert metrics["sessions"]["opened"] == 2
            assert metrics["sessions"]["active"] == 0
            assert metrics["sessions"]["peak_active"] == 1
            assert metrics["data"]["mappings_emitted"] > 0
            assert metrics["requests_total"] >= 2
            assert metrics["latency_seconds"]["recorded"] >= 2

    def test_healthz(self):
        config = ServerConfig(port=0)

        @serve(config)
        async def _(server, service):
            status, body = await fetch_json(
                server.config.host, server.port, "/healthz"
            )
            assert (status, body) == (200, {"status": "ok"})

    def test_idle_session_expires_with_in_band_error(self):
        config = ServerConfig(port=0, idle_timeout=0.2)

        @serve(config)
        async def _(server, service):
            client = await StreamClient.open(
                server.config.host, server.port, PATTERN, alphabet="ab"
            )
            assert client.status == 200
            # Send nothing: the server must time the session out on its own.
            event = await client.read_event()
            assert event["code"] == "idle_timeout"
            await client.close()
            assert service.metrics.snapshot()["sessions"]["expired"] == 1
            assert service.active_sessions == 0


class TestHttpErrors:
    @staticmethod
    async def raw_exchange(host, port, payload: bytes) -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(payload)
        await writer.drain()
        from repro.server.client import _read_head

        status, headers = await _read_head(reader)
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b"{}"
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return status, json.loads(body)

    def test_malformed_pattern_is_400(self):
        config = ServerConfig(port=0)

        @serve(config)
        async def _(server, service):
            client = await StreamClient.open(
                server.config.host, server.port, "x{", alphabet="ab"
            )
            assert client.status == 400
            assert "expected" in client.error_body["error"]

    def test_bad_opening_json_is_400(self):
        config = ServerConfig(port=0)

        @serve(config)
        async def _(server, service):
            body = b"this is not json\n"
            status, payload = await self.raw_exchange(
                server.config.host,
                server.port,
                b"POST /v1/stream HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body),
            )
            assert status == 400
            assert "not valid JSON" in payload["error"]

    def test_unknown_path_is_404_and_wrong_method_405(self):
        config = ServerConfig(port=0)

        @serve(config)
        async def _(server, service):
            host = server.config.host
            status, payload = await fetch_json(host, server.port, "/nope")
            assert status == 404
            status, payload = await self.raw_exchange(
                host,
                server.port,
                b"GET /v1/stream HTTP/1.1\r\nHost: t\r\n\r\n",
            )
            assert status == 405

    def test_unknown_emit_mode_is_400(self):
        config = ServerConfig(port=0)

        @serve(config)
        async def _(server, service):
            client = await StreamClient.open(
                server.config.host, server.port, PATTERN,
                alphabet="ab", emit="sometimes",
            )
            assert client.status == 400
            assert "unknown emit mode" in client.error_body["error"]


class TestConcurrency:
    def test_interleaved_sessions_do_not_cross_talk(self):
        # Two patterns, four sessions, feeds interleaved through the
        # shared loop: every session must see exactly its own results.
        config = ServerConfig(port=0, max_sessions=8)
        jobs = [
            (".*x{a+b}.*", "aabab"),
            (".*y{ab+}.*", "babba"),
            (".*x{a+b}.*", "bbaab"),
            (".*y{ab+}.*", "ababa"),
        ]

        @serve(config)
        async def _(server, service):
            async def run_job(pattern, text):
                client = await StreamClient.open(
                    server.config.host, server.port, pattern, alphabet="ab"
                )
                for char in text:
                    await client.feed(char)
                events = await client.finish()
                await client.close()
                return span_set(events)

            results = await asyncio.gather(
                *(run_job(pattern, text) for pattern, text in jobs)
            )
            for (pattern, text), got in zip(jobs, results):
                expected = direct_outcome(pattern, "ab", [text])[1]
                assert got == expected, (pattern, text)
            assert service.metrics.snapshot()["sessions"]["peak_active"] >= 2
