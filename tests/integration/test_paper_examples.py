"""Integration tests reproducing the paper's worked examples exactly.

* Figure 1 / Example 2.1 — the contact-extraction spanner and its two
  output mappings, with the exact spans of the figure.
* Figures 3–6 — the extended VA ``A`` evaluated over ``d = ab`` with
  Algorithm 1, producing the three mappings µ1, µ2, µ3 of Section 3.2.2.
* Figure 2 — the functional VA whose two runs define the same mapping.
* Proposition 4.2 — the ``2^ℓ`` lower-bound family.
"""

from repro import Span, Spanner
from repro.core.mappings import Mapping
from repro.automata.transforms import to_deterministic_sequential_eva, va_to_eva
from repro.counting.count import count_mappings
from repro.enumeration.evaluate import evaluate
from repro.workloads.spanners import (
    contact_pattern,
    figure1_document,
    figure2_va,
    figure3_eva,
    proposition42_va,
)


class TestFigure1:
    """The running example of Section 1 and Figure 1."""

    def test_two_mappings_with_exact_spans(self):
        spanner = Spanner.from_regex(contact_pattern())
        document = figure1_document()
        mappings = set(spanner.evaluate(document))

        mu1 = Mapping(
            {"name": Span.from_paper(1, 5), "email": Span.from_paper(7, 13)}
        )
        mu2 = Mapping(
            {"name": Span.from_paper(16, 20), "phone": Span.from_paper(22, 28)}
        )
        assert mappings == {mu1, mu2}

    def test_extracted_text(self):
        spanner = Spanner.from_regex(contact_pattern())
        rows = spanner.extract(figure1_document())
        by_name = {row["name"]: row for row in rows}
        assert by_name["John"]["email"] == "j@g.be"
        assert by_name["Jane"]["phone"] == "555-12"

    def test_counting_agrees(self):
        spanner = Spanner.from_regex(contact_pattern())
        assert spanner.count(figure1_document()) == 2


class TestFigure2:
    """The functional VA with two runs defining the same mapping."""

    def test_duplicate_runs_single_mapping(self):
        va = figure2_va()
        document = "aa"
        runs = list(va.runs(document))
        assert len(runs) == 2  # two different variable orders
        assert len({run.mapping() for run in runs}) == 1

    def test_constant_delay_algorithm_outputs_once(self):
        va = figure2_va()
        det = to_deterministic_sequential_eva(va)
        outputs = list(evaluate(det, "aa"))
        assert outputs == [Mapping({"x": Span(0, 2), "y": Span(0, 2)})]


class TestFigures3to6:
    """The worked example of Section 3.2.2: A over d = ab."""

    EXPECTED = {
        # µ1: x = [1, 3⟩, y = [2, 3⟩ in the paper's 1-based notation.
        Mapping({"x": Span.from_paper(1, 3), "y": Span.from_paper(2, 3)}),
        # µ2: x = [2, 3⟩, y = [1, 3⟩.
        Mapping({"x": Span.from_paper(2, 3), "y": Span.from_paper(1, 3)}),
        # µ3: x = y = [1, 3⟩.
        Mapping({"x": Span.from_paper(1, 3), "y": Span.from_paper(1, 3)}),
    }

    def test_reference_semantics(self):
        assert figure3_eva().evaluate("ab") == self.EXPECTED

    def test_algorithm1_and_2(self):
        result = evaluate(figure3_eva(), "ab")
        assert set(result) == self.EXPECTED

    def test_dag_structure_matches_figure6(self):
        # Figure 6 shows 8 DAG nodes excluding ⊥ for this run of the
        # algorithm; only 7 of them are reachable from the two final lists
        # at the end (the ({⊣x,⊣y}, 2) node created in Capturing(2) for q9
        # is superseded in Capturing(3)).
        result = evaluate(figure3_eva(), "ab")
        assert result.count() == 3
        assert result.node_count() >= 6

    def test_counting_algorithm3(self):
        assert count_mappings(figure3_eva(), "ab") == 3

    def test_figure3_is_deterministic_sequential_functional(self):
        eva = figure3_eva()
        assert eva.is_deterministic()
        assert eva.is_sequential()
        assert eva.is_functional()


class TestProposition42:
    """The exponential lower bound family for sequential VA → eVA."""

    def test_extended_transitions_lower_bound(self):
        for pairs in (1, 2, 3, 4, 5):
            va = proposition42_va(pairs)
            eva = va_to_eva(va)
            outgoing = sum(1 for _ in eva.variable_transitions_from("c0"))
            assert outgoing >= 2 ** pairs

    def test_family_semantics(self):
        # Each accepting run picks x_i or y_i per pair: 2^pairs mappings.
        for pairs in (1, 2, 3):
            va = proposition42_va(pairs)
            assert len(va.evaluate("a")) == 2 ** pairs

    def test_family_through_full_pipeline(self):
        va = proposition42_va(3)
        det = to_deterministic_sequential_eva(va, assume_sequential=True)
        assert set(evaluate(det, "a")) == va.evaluate("a")
        assert count_mappings(det, "a") == 8
