"""End-to-end integration tests across the whole stack.

These tests take realistic workloads through the public API and check that
all evaluation routes (constant-delay algorithm, Algorithm 3 counting,
naive baseline, polynomial-delay baseline, Table 1 reference semantics)
agree with each other.
"""

import pytest

from repro import Spanner
from repro.baselines.naive import naive_evaluate
from repro.baselines.polydelay import PolynomialDelayEnumerator
from repro.counting.count import count_mappings
from repro.enumeration.enumerate import delay_profile
from repro.regex.compiler import compile_to_va
from repro.regex.parser import parse_regex
from repro.regex.semantics import evaluate_regex
from repro.workloads.documents import contact_document, dna_sequence, server_log
from repro.workloads.spanners import contact_pattern, keyword_pair_pattern, nested_capture_regex


class TestContactExtraction:
    def test_extraction_scales_with_records(self):
        spanner = Spanner.from_regex(contact_pattern())
        for records in (1, 5, 20):
            document = contact_document(records, seed=records)
            rows = spanner.extract(document)
            assert len(rows) == records
            assert spanner.count(document) == records

    def test_every_row_is_well_formed(self):
        spanner = Spanner.from_regex(contact_pattern())
        document = contact_document(10, seed=3)
        for row in spanner.extract(document):
            assert row["name"][0].isupper()
            assert ("email" in row) != ("phone" in row)
            if "email" in row:
                assert "@" in row["email"]
            else:
                assert "-" in row["phone"]


class TestLogAnalysis:
    def test_error_worker_extraction(self):
        pattern = r".*ERROR worker-(id{[0-9]}) (msg{[a-z 0-9]+})(\n.*)?"
        spanner = Spanner.from_regex(pattern)
        document = server_log(15, seed=2, error_rate=1.0)
        rows = spanner.extract(document)
        assert rows, "expected at least one ERROR line"
        assert all(row["id"].isdigit() for row in rows)

    def test_keyword_pair_extraction(self):
        spanner = Spanner.from_regex(keyword_pair_pattern("ERROR ", " timeout"))
        document = "x ERROR worker-1 timeout y\nERROR worker-2 ok\n"
        gaps = {row["gap"] for row in spanner.extract(document)}
        assert gaps == {"worker-1"}


class TestDnaMotifs:
    def test_motif_context_extraction(self):
        # Extract what lies between two anchor motifs.
        spanner = Spanner.from_regex(".*ACG(between{[ACGT]*})TGC.*")
        document = "TTACGAATGCGG"
        rows = spanner.extract(document)
        assert {row["between"] for row in rows} == {"AA"}

    def test_all_occurrences_of_motif(self):
        spanner = Spanner.from_regex(".*(hit{ACA}).*")
        document = dna_sequence(200, seed=1)
        rows = spanner.evaluate(document)
        # Overlapping occurrences are all reported, unlike with re.findall.
        text = document.text
        occurrences = sum(
            1 for start in range(len(text) - 2) if text[start:start + 3] == "ACA"
        )
        assert occurrences > 0
        assert len(rows) == occurrences


class TestCrossEngineAgreement:
    PATTERNS_AND_DOCUMENTS = [
        ("a*x{a}a*", "aaaa"),
        ("x{a+}y{b+}", "aabb"),
        ("(x{a}|y{b})c*", "ac"),
        (".*x{ab}.*", "abab"),
        ("x{.*}", "abc"),
        ("x{a*}y{a*}", "aaa"),
    ]

    @pytest.mark.parametrize("pattern,document", PATTERNS_AND_DOCUMENTS)
    def test_all_engines_agree(self, pattern, document):
        alphabet = frozenset(document) | frozenset("ab")
        reference = evaluate_regex(pattern, document)

        spanner = Spanner.from_regex(pattern)
        constant_delay = set(spanner.evaluate(document))
        assert constant_delay == reference

        assert spanner.count(document) == len(reference)

        va = compile_to_va(pattern, alphabet)
        assert naive_evaluate(va, document) == reference

        compiled = spanner.compiled(document)
        assert PolynomialDelayEnumerator(compiled).evaluate(document) == reference
        assert count_mappings(compiled, document) == len(reference)


class TestQuadraticOutputWorkload:
    def test_nested_captures_output_size(self):
        spanner = Spanner.from_regex(nested_capture_regex(1))
        document = "a" * 20
        # x1 ranges over all spans of the document.
        expected = (len(document) + 1) * (len(document) + 2) // 2
        assert spanner.count(document) == expected

    def test_delays_do_not_depend_on_position(self):
        spanner = Spanner.from_regex(nested_capture_regex(1))
        document = "a" * 30
        result = spanner.preprocess(document)
        delays = delay_profile(result, limit=200)
        assert len(delays) == 200
        # Smoke-level check of the constant-delay property: no recorded
        # delay is wildly larger than the median (allowing generous noise
        # for the interpreter and the first output).
        ordered = sorted(delays)
        median = ordered[len(ordered) // 2]
        assert max(delays) < max(median * 500, 0.01)


class TestExecutionPlanAcceptance:
    """The ISSUE 2 acceptance scenarios, end to end through the facade."""

    def test_census_enumerate_and_count_never_build_dag_nodes(self, monkeypatch):
        from repro.counting.census import CensusInstance
        from repro.enumeration import dag as dag_module
        from repro.workloads.spanners import random_census_nfa

        instance = CensusInstance(random_census_nfa(5, "ab", density=0.35, seed=13), 4)
        automaton, document = instance.to_spanner()
        spanner = Spanner.from_va(automaton)
        expected = instance.solve_directly()

        def forbidden(*args, **kwargs):
            raise AssertionError("the compiled plan must not build DagNode objects")

        monkeypatch.setattr(dag_module.DagNode, "__init__", forbidden)
        plan = spanner.plan(document)
        assert plan.engine in ("compiled", "compiled-otf")
        assert spanner.count(document) == expected
        assert len(list(spanner.enumerate(document))) == expected

    def test_nondeterministic_eva_runs_compiled_otf_without_determinize(self, monkeypatch):
        import repro.spanners.pipeline as pipeline_module
        from repro.automata import transforms
        from repro.automata.transforms import va_to_eva

        extended = va_to_eva(compile_to_va(parse_regex("(aa|a)*x{b+}"), "ab"))
        assert not extended.is_deterministic()
        assert extended.is_sequential()
        expected = {str(m) for m in extended.evaluate("aabb")}

        spanner = Spanner.from_eva(extended, engine="compiled-otf")
        for module in (transforms, pipeline_module):
            monkeypatch.setattr(
                module,
                "determinize",
                lambda *a, **k: pytest.fail("compiled-otf must not determinize"),
            )
        assert {str(m) for m in spanner.enumerate("aabb")} == expected
        assert spanner.count("aabb") == len(expected)
