"""Unit tests for the Spanner facade and the compilation pipeline."""

import pytest

from repro import Document, Mapping, Span, Spanner
from repro.core.errors import CompilationError
from repro.algebra.expressions import Atom
from repro.automata.transforms import to_deterministic_sequential_eva
from repro.regex.parser import parse_regex
from repro.spanners.pipeline import CompilationPipeline
from repro.workloads.spanners import figure2_va, figure3_eva


class TestConstruction:
    def test_from_regex_text(self):
        spanner = Spanner.from_regex("x{a+}")
        assert spanner.variables() == frozenset({"x"})

    def test_from_regex_ast(self):
        spanner = Spanner.from_regex(parse_regex("x{a}"))
        assert spanner.evaluate("a") == [Mapping({"x": Span(0, 1)})]

    def test_from_va(self):
        spanner = Spanner.from_va(figure2_va())
        assert set(spanner.evaluate("a")) == figure2_va().evaluate("a")

    def test_from_eva(self):
        spanner = Spanner.from_eva(figure3_eva())
        assert set(spanner.evaluate("ab")) == figure3_eva().evaluate("ab")

    def test_from_expression(self):
        expression = Atom("x{a}b")
        spanner = Spanner.from_expression(expression)
        assert spanner.evaluate("ab") == [Mapping({"x": Span(0, 1)})]

    def test_plain_constructor_with_string(self):
        assert Spanner("x{a}").count("a") == 1

    def test_invalid_source(self):
        with pytest.raises(CompilationError):
            Spanner(3.14)

    def test_repr(self):
        assert "Spanner" in repr(Spanner("a"))


class TestEvaluation:
    def test_evaluate_enumerate_count_agree(self):
        spanner = Spanner.from_regex("a*x{a}a*")
        document = "aaaa"
        evaluated = spanner.evaluate(document)
        enumerated = list(spanner.enumerate(document))
        assert set(evaluated) == set(enumerated)
        assert spanner.count(document) == len(evaluated) == 4

    def test_extract(self):
        spanner = Spanner.from_regex(".*name{[A-Z][a-z]+} .*")
        rows = spanner.extract("hi Ada and Bob !")
        names = sorted(row["name"] for row in rows)
        assert names == ["Ada", "Bob"]

    def test_call_shortcut(self):
        spanner = Spanner.from_regex("x{a}")
        assert spanner("a") == spanner.evaluate("a")

    def test_document_object_accepted(self):
        spanner = Spanner.from_regex("x{a+}")
        assert spanner.evaluate(Document("aa")) == [Mapping({"x": Span(0, 2)})]

    def test_empty_output(self):
        spanner = Spanner.from_regex("x{a}")
        assert spanner.evaluate("b") == []
        assert spanner.count("b") == 0

    def test_empty_document(self):
        spanner = Spanner.from_regex("x{a*}")
        assert spanner.evaluate("") == [Mapping({"x": Span(0, 0)})]

    def test_no_variable_spanner_boolean_matching(self):
        spanner = Spanner.from_regex("(ab)+")
        assert spanner.evaluate("abab") == [Mapping.EMPTY]
        assert spanner.evaluate("aba") == []

    def test_wildcards_follow_document_alphabet(self):
        spanner = Spanner.from_regex(".*x{a}.*")
        assert spanner.count("za!") == 1
        assert spanner.count("zz") == 0

    def test_preprocess_exposes_result_dag(self):
        spanner = Spanner.from_regex("x{a}")
        result = spanner.preprocess("a")
        assert result.count() == 1


class TestCompilationAndCaching:
    def test_compiled_is_deterministic_and_sequential(self):
        spanner = Spanner.from_regex("(x{a}|y{b})c")
        automaton = spanner.compiled("abc")
        assert automaton.is_deterministic()
        assert automaton.is_sequential()

    def test_cache_reused_for_same_alphabet(self):
        spanner = Spanner.from_regex(".*x{a}.*")
        first = spanner.compiled("aba")
        second = spanner.compiled("aab")
        assert first is second

    def test_cache_extends_for_new_alphabet(self):
        spanner = Spanner.from_regex(".*x{a}.*")
        first = spanner.compiled("aa")
        second = spanner.compiled("az")
        assert first is not second

    def test_alphabet_independent_source_compiled_once(self):
        spanner = Spanner.from_regex("x{a}b")
        assert spanner.compiled("ab") is spanner.compiled("zzz")

    def test_statistics(self):
        stats = Spanner.from_regex("x{a}b").statistics("ab")
        assert stats.deterministic
        assert stats.sequential
        assert stats.num_variables == 1

    def test_compilation_report(self):
        report = Spanner.from_regex("x{a}b").compilation_report("ab")
        assert report.total_seconds >= 0
        assert report.final_stage.num_states > 0
        assert "stage" in report.summary()


class TestPipeline:
    def test_pipeline_from_regex(self):
        pipeline = CompilationPipeline("x{a}b")
        automaton, report = pipeline.compile()
        assert automaton.is_deterministic()
        assert [stage.name for stage in report.stages][0] == "regex→VA"

    def test_pipeline_from_va(self):
        pipeline = CompilationPipeline(figure2_va())
        automaton, _ = pipeline.compile()
        assert automaton.evaluate("a") == figure2_va().evaluate("a")

    def test_pipeline_from_eva(self):
        pipeline = CompilationPipeline(figure3_eva())
        automaton, _ = pipeline.compile()
        assert automaton.evaluate("ab") == figure3_eva().evaluate("ab")

    def test_pipeline_from_expression(self):
        pipeline = CompilationPipeline(Atom("x{a}b") & Atom("y{a}b"))
        automaton, _ = pipeline.compile()
        reference = to_deterministic_sequential_eva(
            figure2_va()
        )  # only used to ensure imports stay exercised
        assert reference.is_deterministic()
        assert automaton.variables() == frozenset({"x", "y"})

    def test_pipeline_rejects_unknown_source(self):
        with pytest.raises(CompilationError):
            CompilationPipeline(object())

    def test_source_needs_alphabet(self):
        assert CompilationPipeline(".*x{a}").source_needs_alphabet()
        assert not CompilationPipeline("x{a}b").source_needs_alphabet()
        assert CompilationPipeline(Atom(".*") & Atom("x{a}")).source_needs_alphabet()

    def test_pipeline_statistics(self):
        stats = CompilationPipeline("x{a}b").statistics()
        assert stats.deterministic
        assert stats.sequential

    def test_report_final_stage_requires_stages(self):
        from repro.spanners.pipeline import CompilationReport

        with pytest.raises(CompilationError):
            CompilationReport().final_stage
