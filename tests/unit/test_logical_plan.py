"""Unit tests for the logical plan layer and each rewrite rule."""

import pytest

from repro.core.errors import CompilationError
from repro.algebra.expressions import Atom, Join, Projection, UnionExpr
from repro.algebra.logical import (
    LogicalAtom,
    LogicalJoin,
    LogicalProject,
    LogicalUnion,
    expression_from_logical,
    logical_from_expression,
    render_logical,
)
from repro.algebra.optimizer import (
    estimate_fused_states,
    flatten_operators,
    push_projections,
    reorder_joins,
)


def atoms(*patterns):
    return tuple(Atom(pattern) for pattern in patterns)


class TestConversions:
    def test_round_trip_preserves_structure(self):
        a, b, c = atoms("x{a}", "y{b}", "z{a+}")
        expression = Projection(Join(UnionExpr(a, b), c), ["x", "z"])
        logical = logical_from_expression(expression)
        rebuilt = expression_from_logical(logical)
        assert isinstance(rebuilt, Projection)
        assert rebuilt.keep == frozenset({"x", "z"})
        assert isinstance(rebuilt.child, Join)
        assert isinstance(rebuilt.child.left, UnionExpr)
        assert rebuilt.child.right is c

    def test_variables_match_expression(self):
        a, b = atoms("x{a}b", "y{b}")
        expression = Projection(a.join(b), ["x"])
        logical = logical_from_expression(expression)
        assert logical.variables() == expression.variables() == frozenset({"x"})

    def test_nary_nodes_fold_left_deep(self):
        a, b, c = atoms("x{a}", "y{b}", "z{a}")
        nary = LogicalJoin(
            (LogicalAtom(a), LogicalAtom(b), LogicalAtom(c))
        )
        folded = expression_from_logical(nary)
        assert isinstance(folded, Join)
        assert isinstance(folded.left, Join)
        assert folded.right is c

    def test_invalid_nodes_rejected(self):
        with pytest.raises(CompilationError):
            LogicalAtom("not an atom")
        with pytest.raises(CompilationError):
            LogicalUnion((LogicalAtom(Atom("x{a}")),))

    def test_render_logical_tree_shape(self):
        a, b = atoms("x{a}", "y{b}")
        text = render_logical(
            LogicalProject(LogicalJoin((LogicalAtom(a), LogicalAtom(b))), ["x"])
        )
        lines = text.splitlines()
        assert lines[0].startswith("π[x]")
        assert any("⋈" in line for line in lines)
        assert sum("atom[" in line for line in lines) == 2


class TestFlattenOperators:
    def test_nested_unions_become_nary(self):
        a, b, c = atoms("x{a}", "x{b}", "x{a+}")
        logical = logical_from_expression(UnionExpr(UnionExpr(a, b), c))
        flat = flatten_operators(logical)
        assert isinstance(flat, LogicalUnion)
        assert len(flat.operands) == 3
        assert all(isinstance(op, LogicalAtom) for op in flat.operands)

    def test_nested_joins_become_nary(self):
        a, b, c = atoms("x{a}", "y{b}", "z{a}")
        logical = logical_from_expression(Join(a.join(b), c))
        flat = flatten_operators(logical)
        assert isinstance(flat, LogicalJoin)
        assert len(flat.operands) == 3

    def test_union_join_boundary_not_merged(self):
        a, b, c = atoms("x{a}", "x{b}", "y{a}")
        logical = logical_from_expression(Join(UnionExpr(a, b), c))
        flat = flatten_operators(logical)
        assert isinstance(flat, LogicalJoin)
        assert len(flat.operands) == 2
        assert isinstance(flat.operands[0], LogicalUnion)


class TestPushProjections:
    def test_adjacent_projections_merge(self):
        (a,) = atoms("x{a}y{b}z{a}")
        logical = logical_from_expression(
            Projection(Projection(a, ["x", "y"]), ["y", "z"])
        )
        pushed = push_projections(logical)
        assert isinstance(pushed, LogicalProject)
        assert pushed.keep == frozenset({"y"})
        assert isinstance(pushed.child, LogicalAtom)

    def test_projection_distributes_over_union(self):
        a, b = atoms("x{a}y{b}", "x{b}y{a}")
        logical = logical_from_expression(Projection(UnionExpr(a, b), ["x"]))
        pushed = push_projections(logical)
        assert isinstance(pushed, LogicalUnion)
        assert all(
            isinstance(op, LogicalProject) and op.keep == frozenset({"x"})
            for op in pushed.operands
        )

    def test_projection_pushes_through_join_keeping_shared(self):
        left, right = atoms("x{a}y{b}", "y{b}z{a}")
        logical = logical_from_expression(Projection(Join(left, right), ["x"]))
        pushed = push_projections(logical)
        # The outer projection must survive (y is shared but projected away)
        assert isinstance(pushed, LogicalProject)
        assert pushed.keep == frozenset({"x"})
        join = pushed.child
        assert isinstance(join, LogicalJoin)
        # left keeps x (wanted) and y (shared); right keeps only y (shared)
        assert join.operands[0].variables() == frozenset({"x", "y"})
        assert isinstance(join.operands[1], LogicalProject)
        assert join.operands[1].keep == frozenset({"y"})

    def test_outer_projection_dropped_when_join_produces_exactly_keep(self):
        left, right = atoms("x{a}", "y{b}")
        logical = logical_from_expression(Projection(Join(left, right), ["x", "y"]))
        pushed = push_projections(logical)
        assert isinstance(pushed, LogicalJoin)

    def test_trivial_projection_removed(self):
        (a,) = atoms("x{a}")
        pushed = push_projections(logical_from_expression(Projection(a, ["x"])))
        assert isinstance(pushed, LogicalAtom)


class TestReorderJoins:
    def test_operands_sorted_by_estimate(self):
        small, big = atoms("x{a}", "y{" + "a" * 20 + "}")
        logical = flatten_operators(logical_from_expression(Join(big, small)))

        def size_of(node):
            return estimate_fused_states(node, lambda atom: atom.source_size())

        ordered = reorder_joins(logical, size_of)
        assert isinstance(ordered, LogicalJoin)
        assert ordered.operands[0].atoms().__next__() is small

    def test_stable_for_equal_estimates(self):
        a, b = atoms("x{a}", "y{b}")
        logical = flatten_operators(logical_from_expression(Join(a, b)))
        ordered = reorder_joins(logical, lambda node: 1)
        assert [next(op.atoms()) for op in ordered.operands] == [a, b]


class TestEstimates:
    def test_join_is_product_union_is_sum(self):
        a, b = atoms("x{a}", "y{b}")
        states = {id(a): 3, id(b): 5}

        def atom_states(atom):
            return states[id(atom)]

        join = flatten_operators(logical_from_expression(Join(a, b)))
        union = flatten_operators(logical_from_expression(UnionExpr(a, b)))
        assert estimate_fused_states(join, atom_states) == 15
        assert estimate_fused_states(union, atom_states) == 9
        project = LogicalProject(join, ["x"])
        assert estimate_fused_states(project, atom_states) == 15
