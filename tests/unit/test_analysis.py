"""Unit tests for repro.automata.analysis."""

from repro.automata.analysis import (
    VariableLedger,
    coreachable_states,
    is_functional,
    is_sequential,
    reachable_states,
    statistics,
    trim,
)
from repro.automata.builders import EVABuilder, VABuilder
from repro.automata.markers import close, open_


class TestVariableLedger:
    def test_fresh_is_valid_but_not_total(self):
        ledger = VariableLedger.fresh(("x", "y"))
        assert ledger.is_valid_final()
        assert not ledger.is_total_final()
        assert ledger.can_become_valid()

    def test_open_then_close(self):
        ledger = VariableLedger.fresh(("x",))
        ledger = ledger.apply_marker(open_("x"))
        assert ledger.opened_variables() == frozenset({"x"})
        assert not ledger.is_valid_final()
        ledger = ledger.apply_marker(close("x"))
        assert ledger.closed_variables() == frozenset({"x"})
        assert ledger.is_valid_final()
        assert ledger.is_total_final()

    def test_close_before_open_violates(self):
        ledger = VariableLedger.fresh(("x",)).apply_marker(close("x"))
        assert not ledger.can_become_valid()

    def test_double_open_violates(self):
        ledger = VariableLedger.fresh(("x",))
        ledger = ledger.apply_marker(open_("x")).apply_marker(open_("x"))
        assert not ledger.can_become_valid()

    def test_open_and_close_in_same_set(self):
        ledger = VariableLedger.fresh(("x",)).apply_markers([open_("x"), close("x")])
        assert ledger.is_total_final()


class TestSequentialityChecks:
    def test_figure2_is_sequential_and_functional(self, fig2_va):
        assert is_sequential(fig2_va)
        assert is_functional(fig2_va)

    def test_figure3_is_sequential_and_functional(self, fig3_eva):
        assert is_sequential(fig3_eva)
        assert is_functional(fig3_eva)

    def test_non_sequential_va(self):
        # An accepting run may leave x open.
        va = (
            VABuilder()
            .initial(0)
            .final(1)
            .open(0, "x", 1)
            .close(1, "x", 2)
            .build()
        )
        va.add_final(2)
        assert not is_sequential(va)
        assert not is_functional(va)

    def test_sequential_but_not_functional(self):
        # x is optional: valid runs exist with and without it.
        va = (
            VABuilder()
            .initial(0)
            .final(2)
            .letter(0, "a", 2)
            .open(0, "x", 1)
            .close(1, "x", 3)
            .build()
        )
        va.add_letter_transition(3, "a", 2)
        assert is_sequential(va)
        assert not is_functional(va)

    def test_eva_alternation_respected(self):
        # Two consecutive variable transitions cannot be used by any run,
        # so the automaton is (vacuously) sequential.
        eva = (
            EVABuilder()
            .initial(0)
            .final(2)
            .capture(0, ["x"], [], 1)
            .capture(1, ["x"], [], 2)
            .build()
        )
        assert is_sequential(eva)

    def test_automaton_without_initial_is_sequential(self):
        eva = EVABuilder().final(0).build()
        assert is_sequential(eva)
        assert is_functional(eva)


class TestReachabilityAndTrim:
    def build_with_dead_states(self):
        va = (
            VABuilder()
            .initial(0)
            .final(2)
            .letter(0, "a", 1)
            .letter(1, "a", 2)
            .letter(3, "a", 2)   # unreachable source
            .letter(1, "b", 4)   # dead end target
            .build()
        )
        return va

    def test_reachable(self):
        va = self.build_with_dead_states()
        assert reachable_states(va) == frozenset({0, 1, 2, 4})

    def test_coreachable(self):
        va = self.build_with_dead_states()
        assert coreachable_states(va) == frozenset({0, 1, 2, 3})

    def test_trim_keeps_useful_states_only(self):
        va = self.build_with_dead_states()
        trimmed = trim(va)
        assert trimmed.states == frozenset({0, 1, 2})
        assert trimmed.evaluate("aa") == va.evaluate("aa")

    def test_trim_preserves_semantics(self, fig3_eva):
        trimmed = trim(fig3_eva)
        assert trimmed.evaluate("ab") == fig3_eva.evaluate("ab")


class TestStatistics:
    def test_basic_counts(self, fig3_eva):
        stats = statistics(fig3_eva)
        assert stats.num_states == 10
        assert stats.num_variables == 2
        assert stats.num_letter_transitions == 6
        assert stats.num_variable_transitions == 7
        assert stats.size == stats.num_states + stats.num_transitions
        assert stats.deterministic is None

    def test_with_property_checks(self, fig3_eva):
        stats = statistics(fig3_eva, check_properties=True)
        assert stats.deterministic is True
        assert stats.sequential is True
        assert stats.functional is True

    def test_va_statistics(self, fig2_va):
        stats = statistics(fig2_va, check_properties=True)
        assert stats.deterministic is None  # determinism is an eVA notion
        assert stats.sequential is True
        assert stats.functional is True
