"""Unit tests for repro.regex.parser and repro.regex.ast."""

import pytest

from repro.core.errors import CompilationError, ParseError
from repro.regex.ast import (
    AnyChar,
    Capture,
    CharClass,
    Concat,
    Epsilon,
    Literal,
    Optional,
    Plus,
    Star,
    Union,
    concat,
    literal_string,
    union,
)
from repro.regex.parser import parse_regex


class TestBasicParsing:
    def test_single_literal(self):
        assert parse_regex("a") == Literal("a")

    def test_literal_sequence(self):
        assert parse_regex("abc") == Concat([Literal("a"), Literal("b"), Literal("c")])

    def test_empty_pattern_is_epsilon(self):
        assert parse_regex("") == Epsilon()
        assert parse_regex("()") == Epsilon()

    def test_wildcard(self):
        assert parse_regex(".") == AnyChar()

    def test_space_is_literal(self):
        assert parse_regex("a b") == Concat([Literal("a"), Literal(" "), Literal("b")])

    def test_union(self):
        assert parse_regex("a|b") == Union([Literal("a"), Literal("b")])

    def test_union_of_three(self):
        node = parse_regex("a|b|c")
        assert isinstance(node, Union)
        assert len(node.parts) == 3

    def test_grouping(self):
        assert parse_regex("(ab)*") == Star(Concat([Literal("a"), Literal("b")]))

    def test_postfix_operators(self):
        assert parse_regex("a*") == Star(Literal("a"))
        assert parse_regex("a+") == Plus(Literal("a"))
        assert parse_regex("a?") == Optional(Literal("a"))
        assert parse_regex("a*?") == Optional(Star(Literal("a")))

    def test_postfix_binds_to_last_atom(self):
        node = parse_regex("ab*")
        assert node == Concat([Literal("a"), Star(Literal("b"))])

    def test_parse_node_passthrough(self):
        node = Literal("a")
        assert parse_regex(node) is node

    def test_non_string_rejected(self):
        with pytest.raises(ParseError):
            parse_regex(42)


class TestCaptures:
    def test_simple_capture(self):
        assert parse_regex("x{a}") == Capture("x", Literal("a"))

    def test_capture_with_long_name(self):
        node = parse_regex("email_1{a+}")
        assert node == Capture("email_1", Plus(Literal("a")))

    def test_identifier_not_followed_by_brace_is_literal(self):
        node = parse_regex("xy")
        assert node == Concat([Literal("x"), Literal("y")])

    def test_capture_inside_concat(self):
        node = parse_regex("a x{b} c")
        assert isinstance(node, Concat)
        assert Capture("x", Literal("b")) in node.parts

    def test_nested_captures(self):
        node = parse_regex("x{a y{b} c}")
        assert node.variable == "x"
        assert node.variables() == frozenset({"x", "y"})

    def test_capture_with_union_body(self):
        node = parse_regex("x{a|b}")
        assert node == Capture("x", Union([Literal("a"), Literal("b")]))

    def test_unterminated_capture(self):
        with pytest.raises(ParseError):
            parse_regex("x{a")

    def test_stray_open_brace(self):
        with pytest.raises(ParseError):
            parse_regex("{a}")

    def test_escaped_braces_are_literals(self):
        node = parse_regex(r"x\{a\}")
        assert node == Concat([Literal("x"), Literal("{"), Literal("a"), Literal("}")])


class TestCharClassesAndEscapes:
    def test_simple_class(self):
        assert parse_regex("[abc]") == CharClass("abc")

    def test_range(self):
        assert parse_regex("[a-d]") == CharClass("abcd")

    def test_mixed_class(self):
        assert parse_regex("[a-c_x]") == CharClass("abc_x")

    def test_negated_class(self):
        node = parse_regex("[^ab]")
        assert node == CharClass("ab", negated=True)

    def test_class_with_leading_bracket(self):
        assert parse_regex("[]a]") == CharClass("]a")

    def test_invalid_range(self):
        with pytest.raises(ParseError):
            parse_regex("[z-a]")

    def test_unterminated_class(self):
        with pytest.raises(ParseError):
            parse_regex("[abc")

    def test_escape_shortcuts(self):
        assert parse_regex(r"\d") == CharClass("0123456789")
        assert parse_regex(r"\n") == Literal("\n")
        assert parse_regex(r"\t") == Literal("\t")
        assert parse_regex(r"\.") == Literal(".")
        assert parse_regex(r"\\") == Literal("\\")

    def test_class_with_escape_shortcut(self):
        node = parse_regex(r"[\d_]")
        assert node == CharClass("0123456789_")

    def test_dangling_escape(self):
        with pytest.raises(ParseError):
            parse_regex("ab\\")


class TestErrors:
    def test_repetition_without_operand(self):
        with pytest.raises(ParseError):
            parse_regex("*a")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_regex("(ab")
        with pytest.raises(ParseError):
            parse_regex("ab)")

    def test_stray_close_brace(self):
        with pytest.raises(ParseError):
            parse_regex("ab}")


class TestAstHelpers:
    def test_round_trip_through_str(self):
        for pattern in ["a", "abc", "a|b", "(ab)*", "x{a+}b?", "[abc]", "[^ab]", "a.b"]:
            node = parse_regex(pattern)
            assert parse_regex(str(node)) == node

    def test_variables(self):
        assert parse_regex("x{a}y{b}").variables() == frozenset({"x", "y"})
        assert parse_regex("ab").variables() == frozenset()

    def test_literals(self):
        assert parse_regex("a[bc]x{d}").literals() == frozenset("abcd")

    def test_size(self):
        assert parse_regex("ab").size() == 3  # concat + two literals

    def test_needs_alphabet(self):
        assert parse_regex(".").needs_alphabet()
        assert parse_regex("[^a]").needs_alphabet()
        assert not parse_regex("[ab]x{c}").needs_alphabet()

    def test_concat_flattening(self):
        node = concat(Literal("a"), concat(Literal("b"), Literal("c")))
        assert node == Concat([Literal("a"), Literal("b"), Literal("c")])
        assert concat() == Epsilon()
        assert concat(Literal("a")) == Literal("a")

    def test_union_flattening(self):
        node = union(Literal("a"), union(Literal("b"), Literal("c")))
        assert isinstance(node, Union)
        assert len(node.parts) == 3
        with pytest.raises(CompilationError):
            union()

    def test_literal_string(self):
        assert literal_string("ab") == Concat([Literal("a"), Literal("b")])
        assert literal_string("") == Epsilon()

    def test_invalid_nodes(self):
        with pytest.raises(CompilationError):
            Literal("ab")
        with pytest.raises(CompilationError):
            CharClass("")
        with pytest.raises(CompilationError):
            Capture("", Literal("a"))
        with pytest.raises(CompilationError):
            Concat([Literal("a")])
        with pytest.raises(CompilationError):
            Union([Literal("a")])

    def test_char_class_expand(self):
        positive = CharClass("ab")
        negative = CharClass("ab", negated=True)
        assert positive.expand("abcd") == frozenset("ab")
        assert negative.expand("abcd") == frozenset("cd")
