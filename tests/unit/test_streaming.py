"""Unit tests for the chunk-fed streaming evaluator (repro.runtime.streaming)."""

import pytest

from repro import Spanner, StreamingError
from repro.core.documents import Document
from repro.runtime.engine import EvaluationScratch, evaluate_compiled_arena
from repro.runtime.plan import ExecutionPlan, choose_plan
from repro.runtime.streaming import (
    StreamingEvaluator,
    evaluate_streaming,
    settled_sinks,
)
from repro.runtime.subset import CompiledSubsetEVA
from repro.workloads.collections import chunked_document, scenario


def tail_runtime(scale=300, seed=2):
    workload = scenario("tailing-logs", num_documents=1, scale=scale, seed=seed)
    document = next(iter(workload.collection))
    spanner = Spanner.from_regex(workload.pattern)
    return spanner.runtime(document), document


class TestOnFinishArenaIdentity:
    def test_arena_is_array_identical_to_whole_document_engine(self):
        runtime, document = tail_runtime()
        whole = evaluate_compiled_arena(runtime, document)
        for chunk_size in (1, 7, 100, len(document)):
            evaluator = StreamingEvaluator(runtime)
            for chunk in chunked_document(document, chunk_size):
                assert evaluator.feed(chunk) == []
            result = evaluator.finish()
            assert result.document_length == whole.document_length
            assert result.node_markers == whole.node_markers
            assert result.node_positions == whole.node_positions
            assert result.node_starts == whole.node_starts
            assert result.node_ends == whole.node_ends
            assert result.cell_nodes == whole.cell_nodes
            assert result.cell_nexts == whole.cell_nexts
            assert result.final_entries == whole.final_entries

    def test_fast_path_disabled_matches(self):
        runtime, document = tail_runtime(scale=60)
        whole = {str(m) for m in evaluate_compiled_arena(runtime, document)}
        evaluator = StreamingEvaluator(runtime, fast_path=False)
        for chunk in chunked_document(document, 13):
            evaluator.feed(chunk)
        assert {str(m) for m in evaluator.finish()} == whole

    def test_empty_document(self):
        spanner = Spanner.from_regex("x{a*}")
        runtime = spanner.runtime("a")
        evaluator = StreamingEvaluator(runtime)
        result = evaluator.finish()
        expected = {str(m) for m in evaluate_compiled_arena(runtime, "")}
        assert {str(m) for m in result} == expected
        assert result.document_length == 0

    def test_empty_chunks_are_no_ops(self):
        spanner = Spanner.from_regex("x{a+}")
        runtime = spanner.runtime("a")
        evaluator = StreamingEvaluator(runtime)
        evaluator.feed("")
        evaluator.feed(b"")
        evaluator.feed("aa")
        evaluator.feed("")
        expected = {str(m) for m in evaluate_compiled_arena(runtime, "aa")}
        assert {str(m) for m in evaluator.finish()} == expected


class TestBytesProtocol:
    def test_multibyte_split_reassembled(self):
        spanner = Spanner.from_regex(".*x{a+}.*")
        text = "bé aa é"
        runtime = spanner.runtime(text)
        expected = {str(m) for m in evaluate_compiled_arena(runtime, text)}
        raw = text.encode("utf-8")
        assert len(raw) > len(text)  # multi-byte characters present
        evaluator = StreamingEvaluator(runtime)
        for index in range(len(raw)):
            evaluator.feed(raw[index : index + 1])
        assert {str(m) for m in evaluator.finish()} == expected

    def test_str_after_partial_bytes_raises(self):
        runtime, _document = tail_runtime(scale=20)
        evaluator = StreamingEvaluator(runtime)
        evaluator.feed("é".encode("utf-8")[:1])
        with pytest.raises(StreamingError):
            evaluator.feed("a")

    def test_truncated_utf8_at_finish_raises(self):
        runtime, _document = tail_runtime(scale=20)
        evaluator = StreamingEvaluator(runtime)
        evaluator.feed("é".encode("utf-8")[:1])
        with pytest.raises(StreamingError):
            evaluator.finish()

    def test_non_chunk_type_rejected(self):
        runtime, _document = tail_runtime(scale=20)
        evaluator = StreamingEvaluator(runtime)
        with pytest.raises(StreamingError):
            evaluator.feed(42)


class TestProtocol:
    def test_feed_after_finish_raises(self):
        runtime, _document = tail_runtime(scale=20)
        evaluator = StreamingEvaluator(runtime)
        evaluator.finish()
        with pytest.raises(StreamingError):
            evaluator.feed("a")
        with pytest.raises(StreamingError):
            evaluator.finish()

    def test_rejects_subset_runtime(self):
        spanner = Spanner.from_regex("x{a+}b")
        subset = CompiledSubsetEVA(spanner.compiled("ab"))
        with pytest.raises(StreamingError):
            StreamingEvaluator(subset)

    def test_rejects_unknown_emit_mode(self):
        runtime, _document = tail_runtime(scale=20)
        with pytest.raises(StreamingError):
            StreamingEvaluator(runtime, emit="eager")

    def test_scratch_reused_and_returned_clean(self):
        runtime, document = tail_runtime(scale=80)
        scratch = EvaluationScratch(runtime)
        first = evaluate_streaming(runtime, document, chunk_size=64, scratch=scratch)
        second = evaluate_streaming(runtime, document, chunk_size=64, scratch=scratch)
        assert {str(m) for m in first} == {str(m) for m in second}
        # The scratch comes back with every slot cleared, so the plain
        # arena engine can borrow it right after.
        direct = evaluate_compiled_arena(runtime, document, scratch=scratch)
        assert {str(m) for m in direct} == {str(m) for m in first}


class TestIncrementalEmission:
    def test_settled_sinks_exist_for_tailing_pattern(self):
        runtime, _document = tail_runtime(scale=30)
        sinks = settled_sinks(runtime)
        assert sinks, "the tailing pattern must have a settled sink"
        for state in sinks:
            assert runtime.is_final[state]
            assert runtime.silent[state]

    def test_mappings_settle_before_finish(self):
        runtime, document = tail_runtime(scale=400)
        expected = {str(m) for m in evaluate_compiled_arena(runtime, document)}
        evaluator = StreamingEvaluator(runtime, emit="incremental")
        settled = []
        for chunk in chunked_document(document, 512):
            settled.extend(evaluator.feed(chunk))
        result = evaluator.finish()
        assert settled, "matches must settle while the stream is open"
        assert {str(m) for m in settled} <= expected
        assert {str(m) for m in result} == expected
        assert result.count() == len(expected)
        assert evaluator.settled_count() == len(settled)

    def test_no_duplicate_between_settled_and_residual(self):
        runtime, document = tail_runtime(scale=200)
        evaluator = StreamingEvaluator(runtime, emit="incremental")
        for chunk in chunked_document(document, 256):
            evaluator.feed(chunk)
        result = evaluator.finish()
        everything = [str(m) for m in result]
        assert len(everything) == len(set(everything))

    def test_arena_stays_bounded(self):
        runtime, document = tail_runtime(scale=4000, seed=9)
        whole = evaluate_compiled_arena(runtime, document)
        evaluator = StreamingEvaluator(runtime, emit="incremental")
        for chunk in chunked_document(document, 2048):
            evaluator.feed(chunk)
        result = evaluator.finish()
        assert {str(m) for m in result} == {str(m) for m in whole}
        assert evaluator.peak_arena_cells < len(whole.cell_nodes)

    def test_foreign_char_before_delivery_kills_like_the_engines(self):
        spanner = Spanner.from_regex(".*x{a+}.*")
        runtime = spanner.runtime("ab")  # 'Z' is foreign to this automaton
        evaluator = StreamingEvaluator(runtime, emit="incremental")
        delivered = evaluator.feed("Zaa")
        assert delivered == []
        result = evaluator.finish()
        assert result.is_empty()
        assert {str(m) for m in evaluate_compiled_arena(runtime, "Zaa")} == set()

    def test_foreign_char_after_delivery_raises(self):
        spanner = Spanner.from_regex(".*x{a+} .*")
        runtime = spanner.runtime("a b")
        evaluator = StreamingEvaluator(runtime, emit="incremental")
        delivered = evaluator.feed("aa b")
        assert delivered, "the match should settle in the trailing wildcard"
        with pytest.raises(StreamingError):
            evaluator.feed("Z")

    def test_retain_settled_false_delivers_without_replaying(self):
        runtime, document = tail_runtime(scale=300)
        expected = {str(m) for m in evaluate_compiled_arena(runtime, document)}
        evaluator = StreamingEvaluator(
            runtime, emit="incremental", retain_settled=False
        )
        delivered = []
        for chunk in chunked_document(document, 512):
            delivered.extend(evaluator.feed(chunk))
        result = evaluator.finish()
        # feed() delivered everything; finish() holds only the residue —
        # but the result still counts the true total.
        assert {str(m) for m in delivered} | {str(m) for m in result} == expected
        assert result.settled == []
        assert result.count() == len(expected)
        assert not result.is_empty()
        assert evaluator.settled_count() == len(delivered)
        # The retraction guard still counts deliveries.
        evaluator2 = StreamingEvaluator(
            runtime, emit="incremental", retain_settled=False
        )
        assert evaluator2.feed("r ERROR worker-1 r\n")
        with pytest.raises(StreamingError):
            evaluator2.feed("\x01")

    def test_empty_mapping_settles_immediately_for_plain_star(self):
        spanner = Spanner.from_regex("a*")
        runtime = spanner.runtime("a")
        evaluator = StreamingEvaluator(runtime, emit="incremental")
        delivered = evaluator.feed("aaa")
        assert [dict(m.items()) for m in delivered] == [{}]
        result = evaluator.finish()
        assert result.count() == 1


class TestPlanLayer:
    def test_choose_plan_streaming_resolves_auto_to_compiled(self):
        plan = choose_plan(engine="auto", streaming=True)
        assert plan.engine == "compiled" and plan.streaming

    def test_choose_plan_streaming_rejects_other_engines(self):
        for engine in ("reference", "compiled-otf", "hybrid"):
            with pytest.raises(ValueError):
                choose_plan(engine=engine, streaming=True)

    def test_execution_plan_streaming_requires_compiled(self):
        with pytest.raises(ValueError):
            ExecutionPlan("reference", True, "bad", streaming=True)

    def test_spanner_stream_respects_engine_override(self):
        spanner = Spanner.from_regex("x{a}")
        with pytest.raises(ValueError):
            spanner.stream(engine="compiled-otf")
        evaluator = spanner.stream(engine="compiled")
        assert isinstance(evaluator, StreamingEvaluator)

    def test_streaming_rejects_hybrid_expression_plans(self):
        # A join over a non-provably-functional union operand must run
        # the hybrid operator plan; the monolithic fused automaton
        # silently loses mappings, so streaming refuses it rather than
        # quietly downgrading.
        from repro.algebra.expressions import Atom

        expression = Atom("x{a}b").join(Atom("x{a}b").union(Atom("(a)y{b}")))
        spanner = Spanner.from_expression(expression)
        assert len(spanner.evaluate("ab")) == 2  # hybrid, the sound route
        with pytest.raises(ValueError, match="hybrid"):
            spanner.stream(alphabet="ab")
        with pytest.raises(ValueError, match="hybrid"):
            spanner.run_batch(["ab"], streaming=True)

    def test_fully_fused_expression_still_streams(self):
        # When the optimizer fuses everything, the monolithic automaton
        # IS the plan — streaming it is sound and must keep working.
        from repro.algebra.expressions import Atom

        expression = Atom(".*x{a+}.*").union(Atom(".*x{b+}.*"))
        spanner = Spanner.from_expression(expression)
        document = "aabba"
        expected = {str(m) for m in spanner.evaluate(document)}
        evaluator = spanner.stream(alphabet=frozenset(document))
        for char in document:
            evaluator.feed(char)
        assert {str(m) for m in evaluator.finish()} == expected


class TestBatchStreaming:
    def test_serial_and_process_streaming_match_whole_document_batch(self):
        workload = scenario("tailing-logs", num_documents=3, scale=200, seed=4)
        spanner = Spanner.from_regex(workload.pattern)
        base = {
            str(doc_id): {str(m) for m in result}
            for doc_id, result in spanner.run_batch(workload.collection)
        }
        streamed = {
            str(doc_id): {str(m) for m in result}
            for doc_id, result in spanner.run_batch(
                workload.collection, streaming=True, stream_chunk_size=128
            )
        }
        assert streamed == base
        processes = {
            str(doc_id): {str(m) for m in result}
            for doc_id, result in spanner.run_batch(
                workload.collection,
                streaming=True,
                mode="processes",
                max_workers=2,
                stream_chunk_size=128,
            )
        }
        assert processes == base

    def test_streaming_rejects_non_compiled_engines(self):
        workload = scenario("tailing-logs", num_documents=1, scale=50)
        spanner = Spanner.from_regex(workload.pattern)
        with pytest.raises(ValueError):
            list(spanner.run_batch(workload.collection, streaming=True, engine="reference"))

    def test_document_iter_chunks(self):
        document = Document("abcdefg")
        assert list(document.iter_chunks(3)) == ["abc", "def", "g"]
        with pytest.raises(ValueError):
            list(document.iter_chunks(0))

    def test_chunked_document_accepts_plain_strings(self):
        assert list(chunked_document("abcd", 3)) == ["abc", "d"]
        with pytest.raises(ValueError):
            list(chunked_document("abcd", 0))
