"""Eviction-order tests for the two runtime caches.

The happy paths (hits, sharing across engines) are pinned in
``test_encoding.py`` and ``test_spanner_facade.py``; these tests pin the
*bounds*: the per-document encoding cache under interleaved signatures,
and the Spanner per-alphabet LRU under interleaved alphabets — eviction
order, scratch reuse, and the absence of stale entries after a
classing-signature change.
"""

import pickle

from repro import Document, Spanner
from repro.runtime.encoding import SymbolClassing


def classing_for(symbols: str, class_of=None) -> SymbolClassing:
    ids = tuple(range(len(symbols))) if class_of is None else tuple(class_of)
    return SymbolClassing(tuple(symbols), ids)


class TestDocumentEncodingCacheBound:
    def test_capacity_is_bounded(self):
        document = Document("abc")
        for index in range(Document.MAX_CACHED_ENCODINGS + 5):
            signature = ("sig", index)
            document.store_encoding(signature, object())
        assert document.cached_encodings() == Document.MAX_CACHED_ENCODINGS

    def test_eviction_drops_least_recently_used_not_newest(self):
        document = Document("abc")
        limit = Document.MAX_CACHED_ENCODINGS
        for index in range(limit):
            document.store_encoding(("sig", index), f"enc-{index}")
        # Touch the oldest entry: a hit refreshes recency (LRU, not FIFO),
        # so the *second*-oldest becomes the eviction victim.
        assert document.cached_encoding(("sig", 0)) == "enc-0"
        document.store_encoding(("sig", limit), f"enc-{limit}")
        assert document.cached_encoding(("sig", 0)) == "enc-0"
        assert document.cached_encoding(("sig", 1)) is None
        assert document.cached_encoding(("sig", limit)) == f"enc-{limit}"

    def test_restoring_an_existing_signature_does_not_evict(self):
        document = Document("abc")
        limit = Document.MAX_CACHED_ENCODINGS
        for index in range(limit):
            document.store_encoding(("sig", index), f"enc-{index}")
        document.store_encoding(("sig", limit - 1), "enc-updated")
        assert document.cached_encodings() == limit
        assert document.cached_encoding(("sig", 0)) == "enc-0"
        assert document.cached_encoding(("sig", limit - 1)) == "enc-updated"

    def test_interleaved_signatures_beyond_capacity_stay_correct(self):
        document = Document("abab")
        classings = [
            classing_for("ab", (0, 1)),
            classing_for("ab", (0, 0)),
            classing_for("ab", (1, 0)),
        ]
        expected = {
            id(classing): classing.encode_fresh(document.text).buffer
            for classing in classings
        }
        # Cycle through the classings repeatedly; every encode must match
        # its own signature regardless of what eviction did in between.
        for _round in range(3):
            for classing in classings:
                encoded = classing.encode(document)
                assert encoded.buffer == expected[id(classing)]
                assert encoded.signature == classing.signature

    def test_no_stale_encoding_after_classing_signature_change(self):
        document = Document("abab")
        split = classing_for("ab", (0, 1))
        merged = classing_for("ab", (0, 0))
        first = split.encode(document)
        second = merged.encode(document)
        assert first.buffer != second.buffer
        assert split.encode(document).buffer == first.buffer

    def test_pickling_drops_the_cache(self):
        document = Document("abab")
        classing_for("ab").encode(document)
        assert document.cached_encodings() == 1
        clone = pickle.loads(pickle.dumps(document))
        assert clone.cached_encodings() == 0
        assert clone.text == document.text


class TestSpannerAlphabetLRU:
    def test_interleaved_alphabets_evict_in_lru_order(self):
        spanner = Spanner.from_regex(".*x{a}.*", max_cached_alphabets=2)
        runtime_a = spanner.runtime("ab")
        runtime_c = spanner.runtime("ac")
        assert spanner.cached_alphabets() == 2
        # Touch the first alphabet so the second becomes the LRU victim.
        assert spanner.runtime("ab") is runtime_a
        spanner.runtime("ad")
        assert spanner.cached_alphabets() == 2
        assert spanner.runtime("ab") is runtime_a  # survived: recently used
        assert spanner.runtime("ac") is not runtime_c  # evicted: recompiled
        # ... and evaluation through the recompiled entry is still right.
        assert {m["x"].content("ac") for m in spanner.evaluate("ac")} == {"a"}

    def test_all_artifacts_evicted_together(self):
        spanner = Spanner.from_regex(".*x{a}.*", max_cached_alphabets=1)
        key_ab = spanner._alphabet_key("ab")
        runtime = spanner.runtime("ab")
        scratch = spanner._scratch_for_key(key_ab)
        plan = spanner.plan("ab")
        spanner.runtime("ac")  # evicts the "ab" entry wholesale
        assert spanner.runtime("ab") is not runtime
        assert spanner._scratch_for_key(key_ab) is not scratch
        assert spanner.plan("ab") is not plan

    def test_scratch_reused_across_calls_on_one_alphabet(self):
        spanner = Spanner.from_regex(".*x{a}.*", max_cached_alphabets=2)
        key = spanner._alphabet_key("ab")
        spanner.evaluate("ab")
        scratch = spanner._scratch_for_key(key)
        spanner.count("ab")
        spanner.evaluate("ab")
        assert spanner._scratch_for_key(key) is scratch

    def test_interleaving_within_capacity_never_recompiles(self):
        spanner = Spanner.from_regex(".*x{a}.*", max_cached_alphabets=3)
        runtimes = {text: spanner.runtime(text) for text in ("ab", "ac", "ad")}
        for _round in range(3):
            for text, runtime in runtimes.items():
                assert spanner.runtime(text) is runtime
                assert spanner.count(text) == 1
        assert spanner.cached_alphabets() == 3

    def test_no_stale_plan_after_eviction_and_recompilation(self):
        spanner = Spanner.from_regex(".*x{a}b*.*", max_cached_alphabets=1)
        before = {str(m) for m in spanner.evaluate("ab")}
        spanner.evaluate("ac")
        after = {str(m) for m in spanner.evaluate("ab")}
        assert after == before
