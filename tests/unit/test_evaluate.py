"""Unit tests for Algorithm 1 / 2 (repro.enumeration)."""

import pytest

from repro.core.errors import NotDeterministicError, NotSequentialError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.builders import EVABuilder
from repro.automata.transforms import to_deterministic_sequential_eva
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.enumerate import delay_profile, enumerate_mappings, mapping_from_steps
from repro.enumeration.evaluate import evaluate
from repro.enumeration.lazylist import LazyList
from repro.automata.builders import marker_set
from repro.workloads.spanners import figure3_eva


class TestEvaluate:
    def test_figure3_outputs(self, fig3_eva):
        result = evaluate(fig3_eva, "ab")
        assert set(result) == fig3_eva.evaluate("ab")
        assert result.count() == 3
        assert not result.is_empty()

    def test_no_output_when_document_rejected(self, fig3_eva):
        result = evaluate(fig3_eva, "")
        assert result.is_empty()
        assert list(result) == []
        assert result.count() == 0

    def test_empty_document(self):
        eva = (
            EVABuilder()
            .initial(0)
            .final(1)
            .capture(0, ["x"], ["x"], 1)
            .build()
        )
        result = evaluate(eva, "")
        assert set(result) == {Mapping({"x": Span(0, 0)})}

    def test_spanner_without_variables(self):
        eva = EVABuilder().initial(0).final(1).letter(0, "a", 1).build()
        assert set(evaluate(eva, "a")) == {Mapping.EMPTY}
        assert set(evaluate(eva, "b")) == set()

    def test_rejects_nondeterministic_automaton(self, fig3_eva):
        broken = fig3_eva.copy()
        broken.add_letter_transition("q1", "a", "q5")
        with pytest.raises(NotDeterministicError):
            evaluate(broken, "ab")

    def test_sequentiality_check_optional(self):
        # An automaton with an accepting run that leaves x open.
        eva = EVABuilder().initial(0).final(1).capture(0, ["x"], [], 1).build()
        with pytest.raises(NotSequentialError):
            evaluate(eva, "", check_sequentiality=True)

    def test_automaton_without_initial(self):
        eva = EVABuilder().final(0).build()
        with pytest.raises(NotSequentialError):
            evaluate(eva, "a")

    def test_agreement_with_reference_on_longer_documents(self, fig3_det, fig3_eva):
        for document in ["ab", "aab", "abb", "aabb", "ababa"[:4]]:
            assert set(evaluate(fig3_det, document)) == fig3_eva.evaluate(document)

    def test_document_length_and_node_count(self, fig3_eva):
        result = evaluate(fig3_eva, "ab")
        assert result.document_length == 2
        assert result.node_count() >= 3

    def test_final_lists_only_contain_final_states(self, fig3_eva):
        result = evaluate(fig3_eva, "ab")
        assert set(result.final_lists) <= set(fig3_eva.finals)

    def test_count_matches_enumeration_on_pipeline_output(self):
        automaton = to_deterministic_sequential_eva(figure3_eva(), assume_sequential=True)
        for document in ["ab", "aabb", "abab"]:
            result = evaluate(automaton, document)
            assert result.count() == len(list(result))


class TestEnumerate:
    def test_no_duplicates(self, fig3_eva):
        result = evaluate(fig3_eva, "ab")
        outputs = list(enumerate_mappings(result))
        assert len(outputs) == len(set(outputs)) == 3

    def test_mapping_from_steps(self):
        steps = (
            (marker_set(["x"], []), 0),
            (marker_set(["y"], []), 1),
            (marker_set([], ["x", "y"]), 3),
        )
        assert mapping_from_steps(steps) == Mapping({"x": Span(0, 3), "y": Span(1, 3)})

    def test_mapping_from_steps_empty(self):
        assert mapping_from_steps(()) == Mapping.EMPTY

    def test_delay_profile_counts_outputs(self, fig3_eva):
        result = evaluate(fig3_eva, "ab")
        delays = delay_profile(result)
        assert len(delays) == 3
        assert all(delay >= 0 for delay in delays)

    def test_delay_profile_with_limit(self, fig3_eva):
        result = evaluate(fig3_eva, "ab")
        assert len(delay_profile(result, limit=2)) == 2

    def test_enumeration_is_lazy(self, fig3_eva):
        result = evaluate(fig3_eva, "ab")
        iterator = enumerate_mappings(result)
        first = next(iterator)
        assert isinstance(first, Mapping)


class TestDagStructures:
    def test_bottom_is_singleton(self):
        from repro.enumeration.dag import Bottom

        assert Bottom() is BOTTOM
        assert repr(BOTTOM) == "⊥"

    def test_dag_node_content(self):
        markers = marker_set(["x"], [])
        adjacency = LazyList()
        adjacency.add(BOTTOM)
        node = DagNode(markers, 4, adjacency)
        assert node.content == (markers, 4)
        assert "DagNode" in repr(node)
