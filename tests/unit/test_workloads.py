"""Unit tests for the workload generators (repro.workloads) and builders."""

from repro.automata.builders import EVABuilder, VABuilder, marker_set
from repro.automata.markers import close, open_
from repro.workloads.documents import (
    contact_document,
    dna_sequence,
    random_document,
    server_log,
)
from repro.workloads.spanners import (
    contact_pattern,
    figure1_document,
    figure2_va,
    figure3_eva,
    keyword_pair_pattern,
    nested_capture_regex,
    proposition42_va,
    random_census_nfa,
    random_functional_va,
    random_pattern,
)


class TestDocumentGenerators:
    def test_contact_document_shape(self):
        doc = contact_document(5, seed=1)
        assert doc.text.count("<") == 5
        assert doc.text.count(">") == 5
        assert doc.text.count(", ") >= 4

    def test_contact_document_deterministic(self):
        assert contact_document(3, seed=2).text == contact_document(3, seed=2).text
        assert contact_document(3, seed=2).text != contact_document(3, seed=3).text

    def test_server_log(self):
        doc = server_log(10, seed=0)
        lines = doc.text.splitlines()
        assert len(lines) == 10
        assert all(line.startswith("2024-03-") for line in lines)

    def test_server_log_error_rate(self):
        all_errors = server_log(20, seed=0, error_rate=1.0)
        assert all("ERROR" in line for line in all_errors.text.splitlines())

    def test_dna_sequence(self):
        doc = dna_sequence(100, seed=0)
        assert len(doc) == 100
        assert set(doc.text) <= set("ACGT")

    def test_random_document(self):
        doc = random_document(50, alphabet="xyz", seed=4)
        assert len(doc) == 50
        assert set(doc.text) <= set("xyz")


class TestSpannerGenerators:
    def test_figure1_document_length(self):
        assert len(figure1_document()) == 28

    def test_contact_pattern_on_generated_documents(self):
        from repro import Spanner

        spanner = Spanner.from_regex(contact_pattern())
        doc = contact_document(4, seed=5)
        rows = spanner.extract(doc)
        assert len(rows) == 4
        assert all("name" in row for row in rows)
        assert all(("email" in row) != ("phone" in row) for row in rows)

    def test_keyword_pair_pattern(self):
        from repro import Spanner

        spanner = Spanner.from_regex(keyword_pair_pattern("<", ">"))
        rows = spanner.extract("a<b>c")
        assert {row["gap"] for row in rows} == {"b"}

    def test_nested_capture_regex(self):
        formula = nested_capture_regex(3)
        assert formula.variables() == frozenset({"x1", "x2", "x3"})
        shallow = nested_capture_regex(1)
        assert shallow.variables() == frozenset({"x1"})

    def test_nested_capture_regex_rejects_zero(self):
        import pytest

        with pytest.raises(ValueError):
            nested_capture_regex(0)

    def test_proposition42_family_sizes(self):
        for pairs in (1, 3, 5):
            va = proposition42_va(pairs)
            assert va.num_states == 3 * pairs + 2
            assert va.num_transitions == 4 * pairs + 1
            assert len(va.variables()) == 2 * pairs
            assert va.is_sequential()

    def test_proposition42_semantics(self):
        va = proposition42_va(2)
        mappings = va.evaluate("a")
        # One mapping per choice of x_i / y_i per pair: 2^2 mappings.
        assert len(mappings) == 4

    def test_random_functional_va_is_functional(self):
        for seed in range(3):
            va = random_functional_va(num_blocks=4, num_variables=2, seed=seed)
            assert va.is_functional()

    def test_random_census_nfa_deterministic_generation(self):
        first = random_census_nfa(5, "ab", 0.4, seed=9)
        second = random_census_nfa(5, "ab", 0.4, seed=9)
        assert first.num_transitions == second.num_transitions

    def test_random_pattern_parses(self):
        from repro.regex.parser import parse_regex

        for seed in range(5):
            parse_regex(random_pattern(seed=seed))

    def test_figure_fixtures_are_well_formed(self):
        assert figure2_va().is_functional()
        assert figure3_eva().is_deterministic()


class TestBuilders:
    def test_va_builder(self):
        va = (
            VABuilder()
            .state("isolated")
            .initial(0)
            .final(1)
            .letter(0, "ab", 1)
            .open(0, "x", 2)
            .close(2, "x", 1)
            .build()
        )
        assert "isolated" in va.states
        assert va.letter_targets(0, "a") == frozenset({1})
        assert va.letter_targets(0, "b") == frozenset({1})
        assert va.variable_targets(0, open_("x")) == frozenset({2})
        assert va.variable_targets(2, close("x")) == frozenset({1})

    def test_eva_builder(self):
        eva = (
            EVABuilder()
            .state("isolated")
            .initial(0)
            .final(1)
            .letter(0, "ab", 1)
            .capture(0, ["x"], ["y"], 1)
            .build()
        )
        assert "isolated" in eva.states
        assert eva.variable_targets(0, marker_set(["x"], ["y"])) == frozenset({1})

    def test_marker_set_helper(self):
        markers = marker_set(["x"], ["y"])
        assert open_("x") in markers
        assert close("y") in markers
        assert len(markers) == 2
