"""Unit tests for the Table 1 reference semantics (repro.regex.semantics)."""

from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.regex.semantics import evaluate_regex, match_relation


class TestBasicFormulas:
    def test_epsilon_matches_empty_document_only(self):
        assert evaluate_regex("", "") == {Mapping.EMPTY}
        assert evaluate_regex("", "a") == set()

    def test_literal(self):
        assert evaluate_regex("a", "a") == {Mapping.EMPTY}
        assert evaluate_regex("a", "b") == set()
        assert evaluate_regex("a", "aa") == set()

    def test_concatenation(self):
        assert evaluate_regex("ab", "ab") == {Mapping.EMPTY}
        assert evaluate_regex("ab", "ba") == set()

    def test_union(self):
        assert evaluate_regex("a|b", "a") == {Mapping.EMPTY}
        assert evaluate_regex("a|b", "b") == {Mapping.EMPTY}
        assert evaluate_regex("a|b", "c") == set()

    def test_star(self):
        for document in ["", "a", "aaaa"]:
            assert evaluate_regex("a*", document) == {Mapping.EMPTY}
        assert evaluate_regex("a*", "ab") == set()

    def test_plus_and_optional(self):
        assert evaluate_regex("a+", "") == set()
        assert evaluate_regex("a+", "aa") == {Mapping.EMPTY}
        assert evaluate_regex("a?", "") == {Mapping.EMPTY}
        assert evaluate_regex("a?", "a") == {Mapping.EMPTY}
        assert evaluate_regex("a?", "aa") == set()

    def test_wildcard_and_classes(self):
        assert evaluate_regex(".", "z") == {Mapping.EMPTY}
        assert evaluate_regex("[ab]", "b") == {Mapping.EMPTY}
        assert evaluate_regex("[^ab]", "c") == {Mapping.EMPTY}
        assert evaluate_regex("[^ab]", "a") == set()


class TestCaptures:
    def test_capture_whole_document(self):
        assert evaluate_regex("x{a+}", "aa") == {Mapping({"x": Span(0, 2)})}

    def test_capture_with_context(self):
        result = evaluate_regex("a*x{a}a*", "aaa")
        assert result == {
            Mapping({"x": Span(0, 1)}),
            Mapping({"x": Span(1, 2)}),
            Mapping({"x": Span(2, 3)}),
        }

    def test_nested_captures_introduction_example(self):
        # γ = Σ* x{ Σ* y{Σ*} Σ* } Σ* produces quadratically many mappings.
        result = evaluate_regex(".*x{.*y{.*}.*}.*", "ab")
        # Every mapping assigns y a sub-span of x, and for |d| = 2 there are
        # 15 such pairs of spans.
        assert all(m["x"].contains(m["y"]) for m in result)
        assert len(result) == 15

    def test_capture_in_union_is_partial(self):
        result = evaluate_regex("x{a}|b", "b")
        assert result == {Mapping.EMPTY}
        result = evaluate_regex("x{a}|b", "a")
        assert result == {Mapping({"x": Span(0, 1)})}

    def test_same_variable_twice_in_concat_yields_nothing(self):
        # Table 1 requires disjoint domains for concatenation.
        assert evaluate_regex("x{a}x{a}", "aa") == set()

    def test_nested_same_variable_yields_nothing(self):
        assert evaluate_regex("x{x{a}}", "a") == set()

    def test_capture_under_star(self):
        # Repeating a capture is only possible zero or one time.
        result = evaluate_regex("(x{a})*", "a")
        assert result == {Mapping({"x": Span(0, 1)})}
        assert evaluate_regex("(x{a})*", "aa") == set()
        assert evaluate_regex("(x{a})*", "") == {Mapping.EMPTY}

    def test_optional_capture(self):
        result = evaluate_regex("x{a}?b", "b")
        assert result == {Mapping.EMPTY}
        result = evaluate_regex("x{a}?b", "ab")
        assert result == {Mapping({"x": Span(0, 1)})}

    def test_empty_span_capture(self):
        result = evaluate_regex("a(x{})b", "ab")
        assert result == {Mapping({"x": Span(1, 1)})}


class TestMatchRelation:
    def test_literal_relation(self):
        relation = match_relation("a", "aba")
        spans = {span for span, _ in relation}
        assert spans == {Span(0, 1), Span(2, 3)}

    def test_epsilon_relation_every_position(self):
        relation = match_relation("", "ab")
        assert {span for span, _ in relation} == {Span(0, 0), Span(1, 1), Span(2, 2)}

    def test_capture_relation_carries_mapping(self):
        relation = match_relation("x{a}", "a")
        assert (Span(0, 1), Mapping({"x": Span(0, 1)})) in relation

    def test_star_relation_contains_all_repetitions(self):
        relation = match_relation("a*", "aa")
        spans = {span for span, _ in relation}
        assert Span(0, 0) in spans
        assert Span(0, 1) in spans
        assert Span(0, 2) in spans
