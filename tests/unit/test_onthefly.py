"""Unit tests for on-the-fly determinized evaluation (repro.enumeration.onthefly)."""

import pytest

from repro.core.errors import NotSequentialError
from repro.automata.builders import EVABuilder
from repro.automata.eva import ExtendedVA
from repro.automata.transforms import va_to_eva
from repro.enumeration.onthefly import evaluate_on_the_fly
from repro.regex.compiler import compile_to_va
from repro.regex.semantics import evaluate_regex
from repro.workloads.spanners import contact_pattern, figure1_document, figure2_va


class TestOnTheFlyEvaluation:
    def test_matches_reference_on_figure3(self, fig3_eva):
        for document in ["ab", "ba", "aabb", ""]:
            result = evaluate_on_the_fly(fig3_eva, document)
            assert set(result) == fig3_eva.evaluate(document)

    def test_nondeterministic_sequential_input(self):
        # A sequential but non-deterministic eVA whose two runs produce the
        # same mapping; on-the-fly determinization must output it once.
        extended = (
            EVABuilder()
            .initial(0)
            .final(5)
            .capture(0, ["x"], [], 1)
            .capture(0, ["x"], [], 2)
            .letter(1, "a", 3)
            .letter(2, "a", 4)
            .capture(3, [], ["x"], 5)
            .capture(4, [], ["x"], 5)
            .build()
        )
        assert not extended.is_deterministic()
        outputs = list(evaluate_on_the_fly(extended, "a"))
        assert len(outputs) == 1
        assert set(outputs) == extended.evaluate("a")

    def test_figure2_va_through_on_the_fly_route(self):
        extended = va_to_eva(figure2_va())
        for document in ["", "a", "aa"]:
            outputs = list(evaluate_on_the_fly(extended, document))
            assert set(outputs) == figure2_va().evaluate(document)
            assert len(outputs) == len(set(outputs))

    def test_regex_workload_without_upfront_determinization(self):
        pattern = "a*x{a}(a|b)*"
        extended = va_to_eva(compile_to_va(pattern, "ab"))
        for document in ["a", "aab", "ba", "aaa"]:
            result = evaluate_on_the_fly(extended, document)
            assert set(result) == evaluate_regex(pattern, document)

    def test_counting_on_the_dag(self, fig3_eva):
        result = evaluate_on_the_fly(fig3_eva, "ab")
        assert result.count() == 3

    def test_contact_example(self):
        extended = va_to_eva(compile_to_va(contact_pattern(), figure1_document().text))
        result = evaluate_on_the_fly(extended, figure1_document())
        assert result.count() == 2

    def test_sequentiality_check(self):
        eva = EVABuilder().initial(0).final(1).capture(0, ["x"], [], 1).build()
        with pytest.raises(NotSequentialError):
            evaluate_on_the_fly(eva, "", check_sequentiality=True)

    def test_requires_initial_state(self):
        with pytest.raises(NotSequentialError):
            evaluate_on_the_fly(ExtendedVA(), "a")

    def test_no_output_on_rejected_document(self, fig3_eva):
        result = evaluate_on_the_fly(fig3_eva, "c")
        assert result.is_empty()
