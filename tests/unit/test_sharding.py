"""Unit tests for the shard-parallel engine and its integration points.

The arena-for-arena equivalence lives in the property suite
(``tests/property/test_sharding_equivalence.py``) and the shared harness;
this module pins the mechanics around it: shard planning, unreachable
shard skipping, metrics, worker pools and slice-only pickling, the plan
axis, the facade's threshold routing, the batch engine's mixed-size
path, and the CLI flag.
"""

import pickle

import pytest

from harness import assert_arena_identical

from repro import Spanner
from repro.core.documents import Document, DocumentCollection
from repro.core.errors import EvaluationError
from repro.runtime.batch import run_batch
from repro.runtime.engine import count_compiled, evaluate_compiled_arena
from repro.runtime.plan import ExecutionPlan, choose_plan
from repro.runtime.sharding import (
    SHARD_METRICS,
    ShardMetrics,
    ShardPool,
    count_sharded,
    evaluate_sharded,
    plan_shards,
    replay_shard,
    shard_summary,
)
from repro.server.metrics import ServerMetrics

LOG_PATTERN = r".*ERROR worker-w{[0-9]} .*"
LOG_TEXT = (
    "2024-03-09 03:45:14 INFO worker-1 ok\n"
    "2024-03-09 03:45:15 ERROR worker-5 timeout after 30s\n"
    "2024-03-09 03:45:16 INFO worker-2 ok\n"
) * 40


def _runtime(pattern: str, text: str):
    spanner = Spanner.from_regex(pattern)
    return spanner._runtime_for_key(spanner._alphabet_key(text))


# ---------------------------------------------------------------------- #
# Shard planning
# ---------------------------------------------------------------------- #


def test_plan_shards_covers_range_without_gaps():
    for length in (1, 2, 7, 100, 101):
        for shards in (1, 2, 3, 7, length, length + 5):
            bounds = plan_shards(length, shards)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == length
            for (_, previous_end), (begin, _) in zip(bounds, bounds[1:]):
                assert previous_end == begin
            sizes = [end - begin for begin, end in bounds]
            assert max(sizes) - min(sizes) <= 1
            assert len(bounds) == min(shards, length)


def test_plan_shards_empty_document_is_one_empty_shard():
    assert plan_shards(0, 4) == [(0, 0)]


def test_plan_shards_rejects_nonpositive_counts():
    with pytest.raises(EvaluationError):
        plan_shards(10, 0)


# ---------------------------------------------------------------------- #
# Unreachable shards, metrics, dead runs
# ---------------------------------------------------------------------- #


def test_unreachable_shards_are_skipped_and_counted():
    # No wildcard: the foreign tail kills every run in the first shard,
    # so the remaining shards are provably unreachable.
    runtime = _runtime("x{a}b", "ab" + "z" * 98)
    metrics = ShardMetrics()
    arena = evaluate_sharded(
        runtime, "ab" + "z" * 98, shards=10, metrics=metrics
    )
    serial = evaluate_compiled_arena(runtime, "ab" + "z" * 98)
    assert_arena_identical(arena, serial)
    snapshot = metrics.snapshot()
    assert snapshot["documents_sharded"] == 1
    assert snapshot["shards_planned"] == 10
    assert snapshot["shards_skipped_unreachable"] > 0
    assert (
        snapshot["shards_evaluated"] + snapshot["shards_skipped_unreachable"]
        == snapshot["shards_planned"]
    )


def test_metrics_record_time_split_and_reset():
    metrics = ShardMetrics()
    runtime = _runtime(LOG_PATTERN, LOG_TEXT)
    evaluate_sharded(runtime, LOG_TEXT, shards=4, metrics=metrics)
    snapshot = metrics.snapshot()
    assert snapshot["summary_seconds"] > 0.0
    assert snapshot["replay_seconds"] > 0.0
    metrics.reset()
    assert metrics.snapshot()["documents_sharded"] == 0


def test_server_metrics_snapshot_embeds_sharding_counters():
    payload = ServerMetrics().snapshot()
    assert "sharding" in payload
    for key in (
        "shards_evaluated",
        "shards_skipped_unreachable",
        "summary_seconds",
        "replay_seconds",
    ):
        assert key in payload["sharding"]


def test_count_sharded_on_dead_document_is_zero():
    runtime = _runtime("x{a}b", "zzzzzzzz")
    assert count_sharded(runtime, "zzzzzzzz", shards=4) == 0


# ---------------------------------------------------------------------- #
# Replay and fragment mechanics
# ---------------------------------------------------------------------- #


def test_replay_first_shard_requires_initial_entry():
    runtime = _runtime("x{a}b", "ab")
    encoded = runtime.encode("ab")
    bad_entry = (runtime.initial + 1) % runtime.num_states
    with pytest.raises(EvaluationError):
        replay_shard(
            runtime,
            encoded.buffer,
            encoded.length,
            0,
            (bad_entry,),
            is_first=True,
            is_last=True,
        )


def test_fragments_and_summaries_pickle():
    runtime = _runtime(LOG_PATTERN, LOG_TEXT)
    encoded = runtime.encode(LOG_TEXT)
    half = encoded.length // 2
    summary = shard_summary(runtime, encoded.buffer[:half], half)
    assert pickle.loads(pickle.dumps(summary)) == summary
    fragment = replay_shard(
        runtime,
        encoded.buffer[:half],
        half,
        0,
        (runtime.initial,),
        is_first=True,
        is_last=False,
    )
    clone = pickle.loads(pickle.dumps(fragment))
    assert clone.cell_nexts == fragment.cell_nexts
    assert clone.exit_states == fragment.exit_states


def test_shard_tasks_ship_buffer_slices_not_documents():
    # A pickled Document drops its encoding cache (by design), so the
    # orchestrator must never put one on the wire: slicing the encoded
    # buffer is both smaller and cache-preserving.
    document = Document(LOG_TEXT)
    runtime = _runtime(LOG_PATTERN, LOG_TEXT)
    runtime.encode(document)
    assert document.cached_encodings() == 1
    revived = pickle.loads(pickle.dumps(document))
    assert revived.cached_encodings() == 0  # the cache never travels
    encoded = runtime.encode(document)
    half = encoded.length // 2
    slice_ = encoded.buffer[:half]
    assert isinstance(slice_, (bytes, type(encoded.buffer)))
    assert pickle.loads(pickle.dumps(slice_)) == slice_


# ---------------------------------------------------------------------- #
# The worker pool
# ---------------------------------------------------------------------- #


def test_shard_pool_end_to_end_bit_identity():
    runtime = _runtime(LOG_PATTERN, LOG_TEXT)
    serial = evaluate_compiled_arena(runtime, LOG_TEXT)
    with ShardPool(runtime, 2) as pool:
        arena = evaluate_sharded(runtime, LOG_TEXT, pool=pool, shards=4)
        total = count_sharded(runtime, LOG_TEXT, pool=pool, shards=4)
    assert_arena_identical(arena, serial)
    assert total == count_compiled(runtime, LOG_TEXT)
    assert pool.closed


def test_shard_pool_rejects_nonpositive_workers():
    runtime = _runtime("x{a}b", "ab")
    with pytest.raises(EvaluationError):
        ShardPool(runtime, 0)


def test_shard_pool_del_swallows_shutdown_errors_but_logs_real_bugs(caplog):
    import logging

    class ExplodingPool(ShardPool):
        def __init__(self, error):
            # Bypass worker startup; __del__ only ever calls close().
            self._error = error

        def close(self):
            raise self._error

    with caplog.at_level(logging.ERROR, logger="repro.runtime.sharding"):
        # The interpreter-shutdown family is expected noise: swallowed.
        for error in (OSError(), ValueError(), RuntimeError(), TypeError()):
            ExplodingPool(error).__del__()
        assert not caplog.records
        # Anything else is a real bug: logged, never raised.
        ExplodingPool(KeyError("boom")).__del__()
    assert any(
        "unexpected error" in record.getMessage() for record in caplog.records
    )


# ---------------------------------------------------------------------- #
# The plan axis
# ---------------------------------------------------------------------- #


def test_choose_plan_shard_workers_resolves_to_compiled():
    plan = choose_plan(engine="auto", shard_workers=3)
    assert plan.engine == "compiled"
    assert plan.shard_workers == 3
    assert "shard" in plan.reason


def test_choose_plan_rejects_sharding_other_engines():
    for engine in ("reference", "compiled-otf"):
        with pytest.raises(ValueError):
            choose_plan(engine=engine, shard_workers=2)
    with pytest.raises(ValueError):
        choose_plan(engine="compiled", shard_workers=2, streaming=True)
    with pytest.raises(ValueError):
        choose_plan(engine="compiled", shard_workers=0)


def test_execution_plan_validates_shard_workers():
    with pytest.raises(ValueError):
        ExecutionPlan("reference", True, "bad", shard_workers=2)
    with pytest.raises(ValueError):
        ExecutionPlan("compiled", True, "bad", shard_workers=0)
    with pytest.raises(ValueError):
        ExecutionPlan("compiled", True, "bad", streaming=True, shard_workers=2)
    plan = ExecutionPlan("compiled", True, "ok", shard_workers=2)
    assert plan.shard_workers == 2


# ---------------------------------------------------------------------- #
# Facade routing
# ---------------------------------------------------------------------- #


def test_facade_small_document_stays_serial_without_a_pool():
    spanner = Spanner.from_regex("x{a}b")  # default threshold: 32768 chars
    result = spanner.extract("aab", workers=4)
    assert result == spanner.extract("aab")
    state = spanner._state_for_key(spanner._alphabet_key("aab"))
    assert state.shard_pool is None  # never paid the fork cost


def test_facade_workers_route_through_the_pool():
    spanner = Spanner.from_regex(LOG_PATTERN, shard_min_chars=500)
    try:
        serial = spanner.extract(LOG_TEXT)
        assert serial, "fixture must produce matches"
        assert spanner.extract(LOG_TEXT, workers=2) == serial
        assert spanner.count(LOG_TEXT, workers=2) == len(serial)
        key = spanner._alphabet_key(LOG_TEXT)
        pool = spanner._state_for_key(key).shard_pool
        assert pool is not None and pool.workers == 2
        # Same worker count: the pool is reused, not rebuilt.
        spanner.count(LOG_TEXT, workers=2)
        assert spanner._state_for_key(key).shard_pool is pool
    finally:
        spanner.close()
    assert pool.closed


def test_facade_rejects_worker_requests_off_the_compiled_engine():
    spanner = Spanner.from_regex("x{a}b")
    with pytest.raises(ValueError):
        spanner.extract("aab", engine="reference", workers=2)
    with pytest.raises(ValueError):
        spanner.count("aab", workers=0)


# ---------------------------------------------------------------------- #
# Batch integration
# ---------------------------------------------------------------------- #


def test_run_batch_shard_min_chars_validation():
    runtime = _runtime("x{a}b", "ab")
    with pytest.raises(ValueError):
        run_batch(runtime, ["ab"], shard_min_chars=0)
    with pytest.raises(ValueError):
        run_batch(runtime, ["ab"], engine="reference", shard_min_chars=10)
    with pytest.raises(ValueError):
        run_batch(
            runtime, ["ab"], mode="processes", streaming=True, shard_min_chars=10
        )


def test_run_batch_shards_large_documents_in_collection_order():
    collection = DocumentCollection(
        [
            Document("ERROR worker-1 x \n", name="small-a"),
            Document(LOG_TEXT, name="big"),
            Document("nothing here", name="small-b"),
        ]
    )
    spanner = Spanner.from_regex(LOG_PATTERN)
    serial = [(i, r.count()) for i, r in spanner.run_batch(collection)]
    sharded = [
        (i, r.count())
        for i, r in spanner.run_batch(
            collection, mode="processes", max_workers=2, shard_min_chars=1000
        )
    ]
    assert sharded == serial
    assert any(count > 0 for _i, count in serial)
