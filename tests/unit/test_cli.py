"""Unit tests for the command line interface (repro.cli)."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.workloads.spanners import contact_pattern, figure1_document


@pytest.fixture
def document_path(tmp_path):
    path = tmp_path / "doc.txt"
    path.write_text(figure1_document().text, encoding="utf-8")
    return str(path)


def run_cli(argv, stdin=None):
    out = io.StringIO()
    code = main(argv, stdin=stdin, out=out)
    return code, out.getvalue()


class TestExtract:
    def test_text_format(self, document_path):
        code, output = run_cli(["extract", contact_pattern(), document_path])
        assert code == 0
        rows = [json.loads(line) for line in output.strip().splitlines()]
        assert {row["name"] for row in rows} == {"John", "Jane"}

    def test_json_format(self, document_path):
        code, output = run_cli(
            ["extract", contact_pattern(), document_path, "--format", "json"]
        )
        assert code == 0
        rows = [json.loads(line) for line in output.strip().splitlines()]
        assert all("begin" in row["name"] for row in rows)

    def test_spans_format(self, document_path):
        code, output = run_cli(
            ["extract", contact_pattern(), document_path, "--format", "spans"]
        )
        assert code == 0
        assert "[1, 5⟩" in output

    def test_limit(self, document_path):
        code, output = run_cli(
            ["extract", contact_pattern(), document_path, "--limit", "1"]
        )
        assert code == 0
        assert len(output.strip().splitlines()) == 1

    def test_reads_stdin_when_no_path(self):
        code, output = run_cli(
            ["extract", "x{a+}"], stdin=["aaa"]
        )
        assert code == 0
        assert json.loads(output.strip()) == {"x": "aaa"}


class TestCountAndInspect:
    def test_workers_flag_matches_serial_output(self, document_path):
        # The fixture document sits far below the shard size threshold,
        # so --workers routes through plan validation and then runs the
        # serial arena engine — no pool is ever forked.
        serial_code, serial_output = run_cli(
            ["extract", contact_pattern(), document_path]
        )
        code, output = run_cli(
            ["extract", contact_pattern(), document_path, "--workers", "2"]
        )
        assert (code, output) == (serial_code, serial_output)

    def test_workers_flag_rejects_incompatible_engine(self, document_path, capsys):
        code, _output = run_cli(
            [
                "extract",
                contact_pattern(),
                document_path,
                "--engine",
                "reference",
                "--workers",
                "2",
            ]
        )
        assert code == 2
        assert "cannot shard" in capsys.readouterr().err

    def test_count(self, document_path):
        code, output = run_cli(["count", contact_pattern(), document_path])
        assert code == 0
        assert output.strip() == "2"

    def test_count_workers_flag(self, document_path):
        _code, serial = run_cli(["count", contact_pattern(), document_path])
        code, output = run_cli(
            ["count", contact_pattern(), document_path, "--workers", "2"]
        )
        assert code == 0
        assert output == serial

    def test_count_kernel_flag_matches_default(self, document_path):
        _code, default = run_cli(["count", contact_pattern(), document_path])
        for kernel in ("auto", "scalar", "runlength"):
            code, output = run_cli(
                ["count", contact_pattern(), document_path, "--kernel", kernel]
            )
            assert code == 0
            assert output == default

    def test_extract_kernel_flag_matches_default(self, document_path):
        _code, default = run_cli(["extract", contact_pattern(), document_path])
        code, output = run_cli(
            ["extract", contact_pattern(), document_path, "--kernel", "runlength"]
        )
        assert code == 0
        assert output == default

    def test_kernel_flag_rejects_incompatible_engine(self, document_path, capsys):
        code, _output = run_cli(
            ["count", contact_pattern(), document_path,
             "--engine", "reference", "--kernel", "runlength"]
        )
        assert code == 2
        assert "run-length" in capsys.readouterr().err

    def test_inspect(self, document_path):
        code, output = run_cli(["inspect", contact_pattern(), document_path])
        assert code == 0
        assert "deterministic sequential eVA" in output
        assert "stage" in output

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            run_cli([])

    def test_parser_help_mentions_subcommands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for command in ("extract", "count", "inspect"):
            assert command in help_text


class TestBatch:
    @pytest.fixture
    def batch_paths(self, tmp_path):
        first = tmp_path / "a.txt"
        second = tmp_path / "b.txt"
        first.write_text(figure1_document().text, encoding="utf-8")
        second.write_text("Ada <ada@uc.cl>", encoding="utf-8")
        return [str(first), str(second)]

    def test_count_only(self, batch_paths):
        code, output = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--count-only"]
        )
        assert code == 0
        rows = [json.loads(line) for line in output.strip().splitlines()]
        assert [row["count"] for row in rows] == [2, 1]
        assert rows[0]["doc"].endswith("a.txt")

    def test_full_mappings(self, batch_paths):
        code, output = run_cli(["batch", contact_pattern(), *batch_paths])
        assert code == 0
        rows = [json.loads(line) for line in output.strip().splitlines()]
        names = {
            mapping["name"]["text"] for row in rows for mapping in row["mappings"]
        }
        assert names == {"John", "Jane", "Ada"}

    def test_reference_engine(self, batch_paths):
        code, output = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--engine", "reference",
             "--count-only"]
        )
        assert code == 0
        rows = [json.loads(line) for line in output.strip().splitlines()]
        assert [row["count"] for row in rows] == [2, 1]

    def test_process_mode(self, batch_paths):
        code, output = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--mode", "processes",
             "--max-workers", "2", "--chunk-size", "1", "--count-only"]
        )
        assert code == 0
        rows = [json.loads(line) for line in output.strip().splitlines()]
        assert [row["count"] for row in rows] == [2, 1]

    def test_kernel_flag(self, batch_paths):
        _code, default = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--count-only"]
        )
        code, output = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--count-only",
             "--kernel", "runlength"]
        )
        assert code == 0
        assert output == default

    def test_kernel_flag_rejects_incompatible_engine(self, batch_paths, capsys):
        code, _output = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--engine", "reference",
             "--kernel", "runlength"]
        )
        assert code == 2
        assert "run-length" in capsys.readouterr().err

    def test_batch_in_parser_help(self):
        assert "batch" in build_parser().format_help()


class TestBatchResilience:
    """Failure semantics of ``repro batch``: quarantine, reports, chaos flags."""

    @pytest.fixture
    def batch_paths(self, tmp_path):
        first = tmp_path / "a.txt"
        second = tmp_path / "b.txt"
        first.write_text(figure1_document().text, encoding="utf-8")
        second.write_text("Ada <ada@uc.cl>", encoding="utf-8")
        return [str(first), str(second)]

    def test_report_flag_appends_failure_report(self, batch_paths):
        code, output = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--count-only", "--report"]
        )
        assert code == 0
        rows = [json.loads(line) for line in output.strip().splitlines()]
        report = rows[-1]["report"]
        assert report["quarantined"] == []
        assert report["counters"]["documents_quarantined"] == 0
        assert set(report["counters"]) == {
            "tasks_retried",
            "worker_crashes",
            "deadlines_exceeded",
            "pool_rebuilds",
            "inline_fallbacks",
            "documents_quarantined",
        }

    def test_quarantined_document_exits_one_with_one_line_stderr(
        self, batch_paths, tmp_path, capsys
    ):
        big = tmp_path / "big.txt"
        big.write_text("a" * 4096, encoding="utf-8")
        code, output = run_cli(
            ["batch", contact_pattern(), *batch_paths, str(big),
             "--count-only", "--report", "--max-document-chars", "1024"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("repro batch: error:")
        assert "1 document(s) quarantined" in err
        assert "Traceback" not in err
        # The healthy documents still produced their rows, and the
        # report names the quarantined one with its typed error.
        rows = [json.loads(line) for line in output.strip().splitlines()]
        assert [row["count"] for row in rows[:-1]] == [2, 1]
        [record] = rows[-1]["report"]["quarantined"]
        assert record["doc_id"].endswith("big.txt")
        assert record["error_type"] == "ResourceLimitError"
        assert record["stage"] == "guard"

    def test_injected_kill_still_yields_exact_output(self, batch_paths, capsys):
        _code, expected = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--count-only"]
        )
        code, output = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--count-only",
             "--mode", "processes", "--max-workers", "1", "--chunk-size", "1",
             "--task-deadline", "30",
             "--inject-faults", '[{"site": "task", "action": "kill", "nth": 2}]']
        )
        assert code == 0
        assert output == expected
        assert capsys.readouterr().err == ""

    @pytest.mark.parametrize(
        "flags",
        [
            ["--inject-faults", "not json"],
            ["--inject-faults", '[{"site": "nope", "action": "raise"}]'],
            ["--task-deadline", "0"],
            ["--max-document-chars", "0"],
            ["--max-arena-cells", "-3"],
        ],
    )
    def test_bad_resilience_flags_exit_two_one_line(self, batch_paths, flags, capsys):
        code, _output = run_cli(["batch", contact_pattern(), *batch_paths, *flags])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("repro batch: error:")
        assert "Traceback" not in err

    def test_pool_start_failure_is_one_line(self, batch_paths, capsys, monkeypatch):
        from repro.runtime.resilience import SupervisedPool

        def refuse(self):
            raise OSError("cannot fork: resource temporarily unavailable")

        monkeypatch.setattr(SupervisedPool, "_start", refuse)
        code, _output = run_cli(
            ["batch", contact_pattern(), *batch_paths, "--mode", "processes",
             "--count-only"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("repro batch: error:")
        assert "cannot fork" in err
        assert "Traceback" not in err

    def test_extract_workers_pool_start_failure_is_one_line(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.spanners.spanner as spanner_module

        class RefusingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("cannot fork: resource temporarily unavailable")

        monkeypatch.setattr(spanner_module, "ShardPool", RefusingPool)
        big = tmp_path / "big.txt"
        big.write_text("a" * 40000, encoding="utf-8")  # over the shard threshold
        code, _output = run_cli(["extract", "x{a+}", str(big), "--workers", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("repro extract: error:")
        assert "Traceback" not in err


class TestStream:
    @pytest.fixture
    def log_path(self, tmp_path):
        path = tmp_path / "app.log"
        path.write_text(
            "boot ok\nERROR worker-3 timeout\nall quiet\nERROR worker-7 reset\n",
            encoding="utf-8",
        )
        return str(path)

    def test_stream_matches_extract(self, log_path):
        pattern = r".*ERROR worker-w{[0-9]} .*"
        code, streamed = run_cli(["stream", pattern, log_path, "--chunk-size", "5"])
        assert code == 0
        extract_code, extracted = run_cli(["extract", pattern, log_path])
        assert extract_code == 0
        assert sorted(streamed.splitlines()) == sorted(extracted.splitlines())
        assert {json.loads(line)["w"] for line in streamed.splitlines()} == {"3", "7"}

    def test_on_finish_mode(self, log_path):
        pattern = r".*ERROR worker-w{[0-9]} .*"
        code, output = run_cli(
            ["stream", pattern, log_path, "--emit", "on-finish", "--chunk-size", "7"]
        )
        assert code == 0
        assert len(output.splitlines()) == 2

    def test_reads_stdin_line_by_line(self):
        code, output = run_cli(
            ["stream", r".*ERROR worker-w{[0-9]} .*"],
            stdin=["quiet\n", "ERROR worker-5 boom\n", "quiet\n"],
        )
        assert code == 0
        assert json.loads(output.strip()) == {"w": "5"}

    def test_spans_format_and_limit(self, log_path):
        code, output = run_cli(
            ["stream", r".*ERROR worker-w{[0-9]} .*", log_path,
             "--format", "spans", "--limit", "1"]
        )
        assert code == 0
        assert len(output.strip().splitlines()) == 1
        assert "⟩" in output

    def test_bad_chunk_size(self, log_path, capsys):
        code, _output = run_cli(
            ["stream", "x{a}", log_path, "--chunk-size", "0"]
        )
        assert code == 2
        assert "--chunk-size" in capsys.readouterr().err


class TestOneLineErrors:
    """Malformed patterns and missing files: one stderr line, no traceback."""

    MALFORMED = "x{[unclosed"

    def assert_one_line_error(self, capsys, code, command):
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1, f"expected one line, got: {err!r}"
        assert err.startswith(f"repro {command}: error:")
        assert "Traceback" not in err

    @pytest.mark.parametrize("command", ["extract", "count", "stream"])
    def test_malformed_pattern(self, command, capsys):
        code, _output = run_cli([command, self.MALFORMED], stdin=["abc"])
        self.assert_one_line_error(capsys, code, command)

    def test_malformed_pattern_batch(self, tmp_path, capsys):
        path = tmp_path / "doc.txt"
        path.write_text("abc", encoding="utf-8")
        code, _output = run_cli(["batch", self.MALFORMED, str(path)])
        self.assert_one_line_error(capsys, code, "batch")

    @pytest.mark.parametrize("command", ["extract", "count", "stream"])
    def test_missing_file(self, command, capsys):
        code, _output = run_cli([command, "x{a}", "/definitely/not/here.txt"])
        self.assert_one_line_error(capsys, code, command)

    def test_missing_file_batch(self, capsys):
        code, _output = run_cli(["batch", "x{a}", "/definitely/not/here.txt"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error" in err and "Traceback" not in err

    def test_stream_foreign_char_after_delivery_is_one_line(self, tmp_path, capsys):
        # 'é' is outside the default printable-ASCII stream alphabet; it
        # arrives after the first match settled, so incremental mode must
        # refuse — as a clean CLI error, not a traceback.
        path = tmp_path / "doc.txt"
        path.write_text("ERROR worker-1 x\né\n", encoding="utf-8")
        code, _output = run_cli(
            ["stream", r".*ERROR worker-w{[0-9]} .*", str(path), "--chunk-size", "17"]
        )
        self.assert_one_line_error(capsys, code, "stream")


class TestExplain:
    def test_single_pattern_plan(self):
        code, output = run_cli(["explain", "x{a+}b"])
        assert code == 0
        assert "logical plan:" in output
        assert "execution plan: engine=" in output

    def test_join_of_patterns_renders_hybrid_plan(self, document_path):
        # Two wide joined atoms exceed the fuse threshold over the
        # document's alphabet, so the plan shows runtime operators.
        code, output = run_cli(
            [
                "explain",
                r"(.*, )?name{[A-Za-z]+} <[a-z0-9@.\-]*>(, .*)?",
                r"(.*<)email{[a-z]+@[a-z.]+}(>.*)?",
                "--combine",
                "join",
                "--project",
                "name,email",
                "--document",
                document_path,
            ]
        )
        assert code == 0
        assert "⋈" in output
        assert "hash-join" in output
        assert "engine=hybrid" in output

    def test_union_combiner(self):
        code, output = run_cli(["explain", "x{a}", "x{b}", "--combine", "union"])
        assert code == 0
        assert "∪" in output

    def test_non_functional_join_reports_clear_error(self, capsys):
        code, _output = run_cli(["explain", "x{a+}", "x{a+}(y{b})?"])
        assert code == 2
        assert "not functional" in capsys.readouterr().err

    def test_unchecked_flag_skips_validation(self):
        code, output = run_cli(
            ["explain", "x{a+}", "x{a+}(y{b})?", "--unchecked"]
        )
        assert code == 0
        assert "physical plan:" in output


class TestServe:
    """The serve subcommand's one-line-stderr error contract.

    The happy path (boot, sessions, metrics) is exercised end to end in
    tests/integration/test_serve.py; here we only pin the CLI surface:
    malformed patterns, bind failures and bad flags must exit 2 with a
    single ``repro serve: error:`` line and no traceback.
    """

    @staticmethod
    def assert_one_line_error(capsys, code):
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro serve: error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_malformed_warm_pattern(self, capsys):
        code, _output = run_cli(["serve", "--port", "0", "--warm", "x{"])
        self.assert_one_line_error(capsys, code)

    def test_bind_failure(self, capsys):
        import socket

        holder = socket.socket()
        try:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            port = holder.getsockname()[1]
            code, _output = run_cli(["serve", "--port", str(port)])
        finally:
            holder.close()
        self.assert_one_line_error(capsys, code)
        assert code == 2

    @pytest.mark.parametrize(
        "flag, value",
        [
            ("--max-sessions", "0"),
            ("--plan-cache-size", "0"),
            ("--idle-timeout", "0"),
            ("--max-session-bytes", "-1"),
        ],
    )
    def test_bad_config_values(self, flag, value, capsys):
        code, _output = run_cli(["serve", "--port", "0", flag, value])
        self.assert_one_line_error(capsys, code)

    def test_serve_in_parser_help(self):
        help_text = build_parser().format_help()
        assert "serve" in help_text
