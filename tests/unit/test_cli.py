"""Unit tests for the command line interface (repro.cli)."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.workloads.spanners import contact_pattern, figure1_document


@pytest.fixture
def document_path(tmp_path):
    path = tmp_path / "doc.txt"
    path.write_text(figure1_document().text, encoding="utf-8")
    return str(path)


def run_cli(argv, stdin=None):
    out = io.StringIO()
    code = main(argv, stdin=stdin, out=out)
    return code, out.getvalue()


class TestExtract:
    def test_text_format(self, document_path):
        code, output = run_cli(["extract", contact_pattern(), document_path])
        assert code == 0
        rows = [json.loads(line) for line in output.strip().splitlines()]
        assert {row["name"] for row in rows} == {"John", "Jane"}

    def test_json_format(self, document_path):
        code, output = run_cli(
            ["extract", contact_pattern(), document_path, "--format", "json"]
        )
        assert code == 0
        rows = [json.loads(line) for line in output.strip().splitlines()]
        assert all("begin" in row["name"] for row in rows)

    def test_spans_format(self, document_path):
        code, output = run_cli(
            ["extract", contact_pattern(), document_path, "--format", "spans"]
        )
        assert code == 0
        assert "[1, 5⟩" in output

    def test_limit(self, document_path):
        code, output = run_cli(
            ["extract", contact_pattern(), document_path, "--limit", "1"]
        )
        assert code == 0
        assert len(output.strip().splitlines()) == 1

    def test_reads_stdin_when_no_path(self):
        code, output = run_cli(
            ["extract", "x{a+}"], stdin=["aaa"]
        )
        assert code == 0
        assert json.loads(output.strip()) == {"x": "aaa"}


class TestCountAndInspect:
    def test_count(self, document_path):
        code, output = run_cli(["count", contact_pattern(), document_path])
        assert code == 0
        assert output.strip() == "2"

    def test_inspect(self, document_path):
        code, output = run_cli(["inspect", contact_pattern(), document_path])
        assert code == 0
        assert "deterministic sequential eVA" in output
        assert "stage" in output

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            run_cli([])

    def test_parser_help_mentions_subcommands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for command in ("extract", "count", "inspect"):
            assert command in help_text
