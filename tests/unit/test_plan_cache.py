"""Unit tests for the shared bounded plan cache (repro.runtime.plan.PlanCache).

The Spanner facade's per-alphabet LRU semantics are pinned separately in
test_plan.py / test_cache_eviction.py; these tests pin the generalized
cache itself — LRU order, the hit/miss/eviction counters the server's
``/metrics`` reports, build-at-most-once, and thread safety.
"""

import threading

import pytest

from repro import CacheStats, PlanCache


class TestBasics:
    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError, match="max_entries must be positive"):
            PlanCache(0)

    def test_get_on_empty_is_none_and_a_miss(self):
        cache = PlanCache(2)
        assert cache.get("a") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 1)

    def test_get_or_create_builds_then_reuses(self):
        cache = PlanCache(2)
        built = []

        def factory():
            built.append(object())
            return built[-1]

        first = cache.get_or_create("a", factory)
        second = cache.get_or_create("a", factory)
        assert first is second
        assert len(built) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)

    def test_contains_and_len_do_not_touch_counters(self):
        cache = PlanCache(2)
        cache.get_or_create("a", object)
        assert "a" in cache
        assert "b" not in cache
        assert len(cache) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 1)

    def test_repr_mentions_name_and_occupancy(self):
        cache = PlanCache(3, name="test-cache")
        cache.get_or_create("a", object)
        assert "test-cache" in repr(cache)
        assert "entries=1/3" in repr(cache)


class TestLruOrder:
    def test_evicts_oldest_first(self):
        cache = PlanCache(2)
        cache.get_or_create("a", lambda: "A")
        cache.get_or_create("b", lambda: "B")
        cache.get_or_create("c", lambda: "C")
        assert cache.keys() == ["b", "c"]
        assert cache.stats().evictions == 1

    def test_hit_refreshes_recency(self):
        cache = PlanCache(2)
        cache.get_or_create("a", lambda: "A")
        cache.get_or_create("b", lambda: "B")
        cache.get("a")  # now "b" is the oldest
        cache.get_or_create("c", lambda: "C")
        assert cache.keys() == ["a", "c"]

    def test_evicted_entry_stays_valid_for_holders(self):
        # The invariant the multi-tenant server relies on: eviction only
        # severs the cache's reference, never invalidates the object.
        cache = PlanCache(1)
        held = cache.get_or_create("a", lambda: {"plan": "a"})
        cache.get_or_create("b", lambda: {"plan": "b"})
        assert "a" not in cache
        assert held == {"plan": "a"}
        rebuilt = cache.get_or_create("a", lambda: {"plan": "a2"})
        assert rebuilt is not held

    def test_clear_keeps_counters_reset_stats_zeroes_them(self):
        cache = PlanCache(2)
        cache.get_or_create("a", object)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1
        cache.reset_stats()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)


class TestStats:
    def test_hit_ratio(self):
        stats = CacheStats(hits=3, misses=1, evictions=0, entries=1, max_entries=4)
        assert stats.hit_ratio == 0.75

    def test_hit_ratio_of_untouched_cache_is_zero(self):
        assert PlanCache(1).stats().hit_ratio == 0.0

    def test_as_dict_is_json_ready(self):
        cache = PlanCache(2)
        cache.get_or_create("a", object)
        cache.get("a")
        payload = cache.stats().as_dict()
        assert payload == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "max_entries": 2,
            "build_failures": 0,
            "hit_ratio": 0.5,
        }

    def test_build_failures_are_counted_and_leave_no_entry(self):
        cache = PlanCache(2)

        def explode():
            raise RuntimeError("boom")

        for _ in range(2):
            with pytest.raises(RuntimeError):
                cache.get_or_create("bad", explode)
        assert len(cache) == 0
        assert cache.stats().build_failures == 2
        # A later successful build for the same key is unaffected.
        cache.get_or_create("bad", object)
        assert len(cache) == 1
        cache.reset_stats()
        assert cache.stats().build_failures == 0


class TestThreadSafety:
    def test_concurrent_get_or_create_builds_each_key_once(self):
        cache = PlanCache(64)
        built: dict[int, int] = {}
        build_lock = threading.Lock()

        def factory_for(key):
            def factory():
                with build_lock:
                    built[key] = built.get(key, 0) + 1
                return key

            return factory

        def hammer(worker: int) -> None:
            for round_ in range(200):
                key = (worker + round_) % 16
                assert cache.get_or_create(key, factory_for(key)) == key

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert built == {key: 1 for key in range(16)}
        stats = cache.stats()
        assert stats.misses == 16
        assert stats.hits == 8 * 200 - 16

    def test_concurrent_eviction_pressure_stays_bounded(self):
        cache = PlanCache(4)

        def hammer(worker: int) -> None:
            for round_ in range(300):
                cache.get_or_create((worker, round_ % 32), object)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = cache.stats()
        assert len(cache) <= 4
        assert stats.entries <= 4
        assert stats.evictions >= stats.misses - 4
