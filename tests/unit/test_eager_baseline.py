"""Unit tests for the eager-copy ablation evaluator (repro.baselines.eager)."""

import pytest

from repro.core.errors import NotDeterministicError
from repro.baselines.eager import EagerCopyEvaluator
from repro.automata.transforms import to_deterministic_sequential_eva
from repro.enumeration.evaluate import evaluate
from repro.spanners.spanner import Spanner
from repro.workloads.spanners import figure2_va, figure3_eva, nested_capture_regex


class TestEagerCopyEvaluator:
    def test_matches_reference_on_figure3(self, fig3_eva):
        evaluator = EagerCopyEvaluator(fig3_eva)
        for document in ["ab", "ba", "aabb", ""]:
            assert evaluator.evaluate(document) == fig3_eva.evaluate(document)

    def test_matches_constant_delay_engine(self):
        automaton = to_deterministic_sequential_eva(figure2_va())
        evaluator = EagerCopyEvaluator(automaton)
        for document in ["", "a", "aaa"]:
            assert evaluator.evaluate(document) == set(
                evaluate(automaton, document, check_determinism=False)
            )

    def test_matches_on_quadratic_workload(self):
        spanner = Spanner.from_regex(nested_capture_regex(1))
        automaton = spanner.compiled("a")
        document = "a" * 15
        evaluator = EagerCopyEvaluator(automaton)
        assert evaluator.evaluate(document) == set(spanner.evaluate(document))
        assert evaluator.count(document) == spanner.count(document)

    def test_rejects_nondeterministic_automaton(self):
        broken = figure3_eva().copy()
        broken.add_letter_transition("q1", "a", "q5")
        with pytest.raises(NotDeterministicError):
            EagerCopyEvaluator(broken)

    def test_partial_outputs_structure(self, fig3_eva):
        outputs = EagerCopyEvaluator(fig3_eva).partial_outputs("ab")
        assert "q9" in outputs
        assert len(outputs["q9"]) == 3
