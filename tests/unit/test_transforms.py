"""Unit tests for repro.automata.transforms (Section 4 translations)."""

import pytest

from repro.core.errors import CompilationError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.analysis import is_sequential
from repro.automata.builders import VABuilder
from repro.automata.eva import ExtendedVA
from repro.automata.transforms import (
    determinize,
    eva_to_va,
    relabel_states,
    sequentialize,
    to_deterministic_sequential_eva,
    va_to_eva,
)
from repro.workloads.spanners import figure2_va, figure3_eva, proposition42_va

DOCUMENTS = ["", "a", "b", "ab", "ba", "aa", "aab", "aba"]


class TestVaToEva:
    def test_semantics_preserved_on_figure2(self):
        va = figure2_va()
        eva = va_to_eva(va)
        for document in DOCUMENTS:
            assert eva.evaluate(document) == va.evaluate(document)

    def test_variable_paths_are_condensed(self):
        va = figure2_va()
        eva = va_to_eva(va)
        # The two-step paths q0 → q1 → q3 and q0 → q2 → q3 become single
        # extended transitions labelled {x⊢, y⊢}.
        from repro.automata.builders import marker_set

        assert "q3" in eva.variable_targets("q0", marker_set(["x", "y"], []))

    def test_functional_preserved(self):
        eva = va_to_eva(figure2_va())
        assert eva.is_functional()
        assert eva.is_sequential()

    def test_letter_transitions_copied(self):
        eva = va_to_eva(figure2_va())
        assert eva.letter_targets("q3", "a") == frozenset({"q3"})

    def test_proposition42_blowup(self):
        for pairs in (1, 2, 3, 4):
            va = proposition42_va(pairs)
            assert va.num_states == 3 * pairs + 2
            assert va.num_transitions == 4 * pairs + 1
            eva = va_to_eva(va)
            # The eVA needs at least 2^pairs extended transitions out of c0.
            from_c0 = sum(1 for _ in eva.variable_transitions_from("c0"))
            assert from_c0 >= 2 ** pairs


class TestEvaToVa:
    def test_round_trip_semantics(self):
        eva = figure3_eva()
        va = eva_to_va(eva)
        for document in DOCUMENTS:
            assert va.evaluate(document) == eva.evaluate(document)

    def test_single_marker_sets_need_no_chain_states(self):
        eva = ExtendedVA()
        eva.set_initial(0)
        eva.add_final(1)
        from repro.automata.builders import marker_set

        eva.add_variable_transition(0, marker_set(["x"], ["x"]), 1)
        va = eva_to_va(eva)
        # Two phase copies per original state plus one chain state for the
        # two-marker set.
        assert va.num_states == 5
        assert va.evaluate("") == {Mapping({"x": Span(0, 0)})}


class TestDeterminize:
    def test_determinize_produces_deterministic(self):
        nondeterministic = figure3_eva().copy()
        nondeterministic.add_letter_transition("q1", "a", "q5")
        det = determinize(nondeterministic)
        assert det.is_deterministic()

    def test_determinize_preserves_semantics(self):
        nondeterministic = figure3_eva().copy()
        nondeterministic.add_letter_transition("q1", "a", "q5")
        det = determinize(nondeterministic)
        for document in DOCUMENTS:
            assert det.evaluate(document) == nondeterministic.evaluate(document)

    def test_determinize_requires_initial(self):
        with pytest.raises(CompilationError):
            determinize(ExtendedVA())

    def test_relabel_states_small_integers(self):
        det = determinize(figure3_eva())
        relabelled = relabel_states(det)
        assert all(isinstance(state, int) for state in relabelled.states)
        assert relabelled.initial == 0
        assert relabelled.evaluate("ab") == det.evaluate("ab")


class TestSequentialize:
    def build_non_sequential_va(self):
        # Accepting run may leave x open: q0 -x⊢-> q1(final) -⊣x-> q2(final).
        va = (
            VABuilder()
            .initial(0)
            .final(1, 2)
            .open(0, "x", 1)
            .close(1, "x", 2)
            .build()
        )
        return va

    def test_sequentialize_removes_invalid_accepting_runs(self):
        va = self.build_non_sequential_va()
        assert not is_sequential(va)
        sequential = sequentialize(va)
        assert is_sequential(sequential)
        assert sequential.evaluate("") == va.evaluate("")

    def test_sequentialize_preserves_semantics_of_sequential_input(self):
        eva = figure3_eva()
        sequential = sequentialize(eva)
        for document in DOCUMENTS:
            assert sequential.evaluate(document) == eva.evaluate(document)

    def test_sequentialize_requires_initial(self):
        with pytest.raises(CompilationError):
            sequentialize(ExtendedVA())


class TestFullPipeline:
    def test_pipeline_on_figure2(self):
        va = figure2_va()
        det = to_deterministic_sequential_eva(va)
        assert det.is_deterministic()
        assert is_sequential(det)
        for document in DOCUMENTS:
            assert det.evaluate(document) == va.evaluate(document)

    def test_pipeline_on_figure3(self):
        eva = figure3_eva()
        det = to_deterministic_sequential_eva(eva, assume_sequential=True)
        assert det.is_deterministic()
        for document in DOCUMENTS:
            assert det.evaluate(document) == eva.evaluate(document)

    def test_pipeline_on_non_sequential_input(self):
        va = TestSequentialize().build_non_sequential_va()
        det = to_deterministic_sequential_eva(va)
        assert det.is_deterministic()
        assert is_sequential(det)
        assert det.evaluate("") == {Mapping({"x": Span(0, 0)})}

    def test_pipeline_functional_va_size_bound(self):
        # Proposition 4.3: a functional VA with n states yields a
        # deterministic seVA with at most 2^n states.
        va = figure2_va()
        det = to_deterministic_sequential_eva(va, assume_sequential=True)
        assert det.num_states <= 2 ** va.num_states

    def test_states_are_relabelled_to_integers(self):
        det = to_deterministic_sequential_eva(figure2_va())
        assert all(isinstance(state, int) for state in det.states)
