"""Unit tests for repro.core.documents."""

import pytest

from repro.core.documents import Document, DocumentCollection, as_text, concatenate
from repro.core.errors import SpanError
from repro.core.spans import Span


class TestBasics:
    def test_length_and_iteration(self):
        doc = Document("abc")
        assert len(doc) == 3
        assert list(doc) == ["a", "b", "c"]

    def test_alphabet(self):
        assert Document("abab").alphabet() == frozenset({"a", "b"})
        assert Document("").alphabet() == frozenset()

    def test_text_property(self):
        assert Document("hello").text == "hello"

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            Document(123)

    def test_named_document_repr(self):
        doc = Document("abc", name="sample")
        assert "sample" in repr(doc)

    def test_long_document_repr_truncated(self):
        doc = Document("x" * 100)
        assert "..." in repr(doc)


class TestIndexing:
    def test_index_with_span(self):
        assert Document("John Doe")[Span(0, 4)] == "John"

    def test_index_with_int_and_slice(self):
        doc = Document("abcdef")
        assert doc[0] == "a"
        assert doc[1:3] == "bc"

    def test_index_with_invalid_key(self):
        with pytest.raises(TypeError):
            Document("abc")["key"]

    def test_whole_span(self):
        doc = Document("abc")
        assert doc.span() == Span(0, 3)


class TestSpansAndSearch:
    def test_spans_count(self):
        doc = Document("ab")
        # (n+1)(n+2)/2 spans for n = 2.
        assert sum(1 for _ in doc.spans()) == 6

    def test_find_all_overlapping(self):
        doc = Document("aaa")
        assert list(doc.find_all("aa")) == [Span(0, 2), Span(1, 3)]

    def test_find_all_absent(self):
        assert list(Document("abc").find_all("z")) == []

    def test_find_all_empty_needle_raises(self):
        with pytest.raises(SpanError):
            list(Document("abc").find_all(""))

    def test_lines(self):
        doc = Document("ab\ncd\n")
        lines = list(doc.lines())
        assert lines[0] == (Span(0, 2), "ab")
        assert lines[1] == (Span(3, 5), "cd")

    def test_lines_crlf(self):
        # \r\n used to leave the \r in both the text and the span.
        doc = Document("ab\r\ncd\r\n")
        assert list(doc.lines()) == [
            (Span(0, 2), "ab"),
            (Span(4, 6), "cd"),
        ]

    def test_lines_bare_carriage_return(self):
        doc = Document("ab\rcd")
        assert list(doc.lines()) == [
            (Span(0, 2), "ab"),
            (Span(3, 5), "cd"),
        ]

    def test_lines_vertical_tab_and_form_feed(self):
        # Every terminator str.splitlines recognizes ends a line and is
        # excluded from the yielded text and span.
        doc = Document("a\x0bb\x0cc")
        assert list(doc.lines()) == [
            (Span(0, 1), "a"),
            (Span(2, 3), "b"),
            (Span(4, 5), "c"),
        ]

    def test_lines_no_trailing_newline(self):
        doc = Document("ab\ncd")
        assert list(doc.lines()) == [
            (Span(0, 2), "ab"),
            (Span(3, 5), "cd"),
        ]

    def test_lines_empty_document(self):
        assert list(Document("").lines()) == []

    def test_lines_spans_slice_back_to_content(self):
        # The yielded span must address exactly the yielded text in the
        # original document, whatever terminator ended the line.
        text = "one\r\ntwo\rthree\x0bfour\x0cfive\nsix"
        doc = Document(text)
        lines = list(doc.lines())
        assert [content for _span, content in lines] == text.splitlines()
        for span, content in lines:
            assert text[span.begin : span.end] == content


class TestEqualityAndHelpers:
    def test_equality_with_string(self):
        assert Document("abc") == "abc"
        assert Document("abc") == Document("abc")
        assert Document("abc") != Document("abd")

    def test_hash(self):
        assert len({Document("a"), Document("a")}) == 1

    def test_as_text(self):
        assert as_text("plain") == "plain"
        assert as_text(Document("doc")) == "doc"
        with pytest.raises(TypeError):
            as_text(42)

    def test_concatenate(self):
        combined = concatenate([Document("ab"), "cd"], separator="-")
        assert combined.text == "ab-cd"

    def test_from_file(self, tmp_path):
        path = tmp_path / "doc.txt"
        path.write_text("file content", encoding="utf-8")
        doc = Document.from_file(path)
        assert doc.text == "file content"
        assert doc.name == str(path)


class TestDocumentCollection:
    def test_from_texts_assigns_sequential_ids(self):
        collection = DocumentCollection.from_texts(["ab", "cd", "ef"])
        assert collection.ids() == ["doc-0", "doc-1", "doc-2"]
        assert len(collection) == 3

    def test_add_uses_document_name_then_index(self):
        collection = DocumentCollection()
        collection.add(Document("x", name="named"))
        collection.add("anonymous")
        assert collection.ids() == ["named", 1]

    def test_duplicate_ids_rejected(self):
        collection = DocumentCollection()
        collection.add("a", doc_id="same")
        with pytest.raises(ValueError):
            collection.add("b", doc_id="same")

    def test_non_document_rejected(self):
        with pytest.raises(TypeError):
            DocumentCollection().add(42)

    def test_mapping_constructor_and_getitem(self):
        collection = DocumentCollection({"one": "ab", "two": Document("cd")})
        assert collection["one"].text == "ab"
        assert "two" in collection
        with pytest.raises(KeyError):
            collection["three"]

    def test_union_alphabet_and_total_length(self):
        collection = DocumentCollection.from_texts(["ab", "bc"])
        assert collection.alphabet() == frozenset("abc")
        assert collection.total_length() == 4

    def test_chunks_preserve_ids_and_order(self):
        collection = DocumentCollection.from_texts(["a", "b", "c", "d", "e"])
        chunks = list(collection.chunks(2))
        assert [len(chunk) for chunk in chunks] == [2, 2, 1]
        flattened = [doc_id for chunk in chunks for doc_id in chunk.ids()]
        assert flattened == collection.ids()

    def test_chunk_size_larger_than_collection(self):
        collection = DocumentCollection.from_texts(["a", "b"])
        chunks = list(collection.chunks(10))
        assert len(chunks) == 1
        assert chunks[0].ids() == collection.ids()

    def test_non_positive_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            list(DocumentCollection.from_texts(["a"]).chunks(0))

    def test_from_files(self, tmp_path):
        first = tmp_path / "a.txt"
        second = tmp_path / "b.txt"
        first.write_text("alpha", encoding="utf-8")
        second.write_text("beta", encoding="utf-8")
        collection = DocumentCollection.from_files([first, second])
        assert len(collection) == 2
        assert collection[str(first)].text == "alpha"
