"""Unit tests for repro.core.mappings."""

import pytest

from repro.core.errors import SpanError
from repro.core.mappings import Mapping
from repro.core.spans import Span


class TestConstruction:
    def test_empty_mapping(self):
        assert len(Mapping()) == 0
        assert Mapping().domain() == frozenset()

    def test_empty_singleton(self):
        assert Mapping.empty() == Mapping({})
        assert Mapping.EMPTY == Mapping()

    def test_single(self):
        mapping = Mapping.single("x", Span(0, 3))
        assert mapping["x"] == Span(0, 3)
        assert mapping.domain() == frozenset({"x"})

    def test_from_dict(self):
        mapping = Mapping({"a": Span(0, 1), "b": Span(1, 2)})
        assert len(mapping) == 2

    def test_from_pairs(self):
        mapping = Mapping([("a", Span(0, 1))])
        assert mapping["a"] == Span(0, 1)

    def test_invalid_variable_name(self):
        with pytest.raises(SpanError):
            Mapping({1: Span(0, 1)})

    def test_invalid_span_value(self):
        with pytest.raises(SpanError):
            Mapping({"x": (0, 1)})


class TestAccessors:
    def test_get_with_default(self):
        mapping = Mapping({"x": Span(0, 1)})
        assert mapping.get("x") == Span(0, 1)
        assert mapping.get("y") is None
        assert mapping.get("y", Span(9, 9)) == Span(9, 9)

    def test_contains(self):
        mapping = Mapping({"x": Span(0, 1)})
        assert "x" in mapping
        assert "y" not in mapping

    def test_iteration(self):
        mapping = Mapping({"x": Span(0, 1), "y": Span(2, 3)})
        assert set(mapping) == {"x", "y"}
        assert dict(mapping.items()) == {"x": Span(0, 1), "y": Span(2, 3)}

    def test_is_total_on(self):
        mapping = Mapping({"x": Span(0, 1), "y": Span(2, 3)})
        assert mapping.is_total_on(["x", "y"])
        assert mapping.is_total_on(["x"])
        assert not mapping.is_total_on(["x", "z"])

    def test_contents(self):
        mapping = Mapping({"name": Span(0, 4)})
        assert mapping.contents("John Doe") == {"name": "John"}


class TestCompatibilityAndUnion:
    def test_compatible_disjoint_domains(self):
        left = Mapping({"x": Span(0, 1)})
        right = Mapping({"y": Span(2, 3)})
        assert left.compatible(right)
        assert right.compatible(left)

    def test_compatible_agreeing_overlap(self):
        left = Mapping({"x": Span(0, 1), "y": Span(2, 3)})
        right = Mapping({"x": Span(0, 1)})
        assert left.compatible(right)

    def test_incompatible(self):
        left = Mapping({"x": Span(0, 1)})
        right = Mapping({"x": Span(0, 2)})
        assert not left.compatible(right)

    def test_union(self):
        left = Mapping({"x": Span(0, 1)})
        right = Mapping({"y": Span(2, 3)})
        assert left.union(right) == Mapping({"x": Span(0, 1), "y": Span(2, 3)})

    def test_union_incompatible_raises(self):
        with pytest.raises(SpanError):
            Mapping({"x": Span(0, 1)}).union(Mapping({"x": Span(1, 2)}))

    def test_union_with_empty(self):
        mapping = Mapping({"x": Span(0, 1)})
        assert mapping.union(Mapping.EMPTY) == mapping
        assert Mapping.EMPTY.union(mapping) == mapping


class TestRestrictDropRename:
    def test_restrict(self):
        mapping = Mapping({"x": Span(0, 1), "y": Span(2, 3)})
        assert mapping.restrict(["x"]) == Mapping({"x": Span(0, 1)})
        assert mapping.restrict([]) == Mapping.EMPTY
        assert mapping.restrict(["x", "z"]) == Mapping({"x": Span(0, 1)})

    def test_drop(self):
        mapping = Mapping({"x": Span(0, 1), "y": Span(2, 3)})
        assert mapping.drop(["x"]) == Mapping({"y": Span(2, 3)})

    def test_rename(self):
        mapping = Mapping({"x": Span(0, 1)})
        assert mapping.rename({"x": "z"}) == Mapping({"z": Span(0, 1)})
        assert mapping.rename({"other": "z"}) == mapping


class TestHashingAndRepr:
    def test_equality_and_hash(self):
        a = Mapping({"x": Span(0, 1)})
        b = Mapping({"x": Span(0, 1)})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_not_equal_to_dict(self):
        assert Mapping({"x": Span(0, 1)}) != {"x": Span(0, 1)}

    def test_repr_sorted(self):
        mapping = Mapping({"b": Span(0, 1), "a": Span(1, 2)})
        assert repr(mapping).index("'a'") < repr(mapping).index("'b'")

    def test_paper_notation(self):
        mapping = Mapping({"name": Span(0, 4)})
        assert mapping.paper_notation() == "{name → [1, 5⟩}"
        assert Mapping.EMPTY.paper_notation() == "{}"
