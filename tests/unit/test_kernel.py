"""Unit tests for the parameterized kernel spec (:mod:`repro.runtime.kernel`).

Two concerns live here:

* the spec machinery itself — axis validation, normalization, the build
  cache, source introspection and the single-definition kernel axis; and
* degenerate documents (empty, single character) driven through
  :func:`harness.assert_all_engines_agree`, which since the refactor
  routes every engine × kernel × shard combination through generated
  kernels — exactly the inputs where an extracted loop's entry and final
  capture edges are most likely to drift from the originals.
"""

from __future__ import annotations

import pytest

from repro.core.errors import EvaluationError
from repro.runtime import runlength
from repro.runtime.kernel import (
    CAPTURE_MODES,
    KERNELS,
    SUPPORTED_SPECS,
    KernelSpec,
    build_final_capture,
    build_kernel,
    kernel_source,
)
from repro.runtime.plan import KERNEL_CHOICES

from harness import assert_all_engines_agree

PATTERNS = [
    "x{a*b}",
    ".*x{a+b}.*",
    ".*x{a}.*y{b}.*",
]


class TestKernelSpec:
    def test_defaults_describe_the_arena_engine(self):
        spec = KernelSpec()
        assert (spec.capture, spec.tables, spec.chunking) == (
            "arena",
            "dense",
            "whole",
        )
        spec.validate()

    @pytest.mark.parametrize(
        "axis, value",
        [
            ("capture", "holographic"),
            ("tables", "sparse"),
            ("chunking", "mmap"),
            ("emit", "eager"),
            ("kernel", "auto"),  # planner-only value, not a loop kernel
            ("entry", "resume"),
        ],
    )
    def test_unknown_axis_value_raises(self, axis, value):
        with pytest.raises(EvaluationError, match=f"unknown kernel-spec {axis}"):
            KernelSpec(**{axis: value}).validate()

    def test_unsupported_combination_raises(self):
        # Each axis value is legal, but no engine ships this point.
        with pytest.raises(EvaluationError, match="unsupported kernel-spec"):
            KernelSpec(capture="frontier", tables="subset").validate()

    def test_emit_normalizes_away(self):
        incremental = KernelSpec(capture="arena", emit="incremental")
        assert incremental.normalized() == KernelSpec(capture="arena")

    def test_resumable_normalizes_to_states_entry(self):
        spec = KernelSpec(capture="arena", chunking="resumable")
        assert spec.normalized().entry == "states"

    def test_supported_specs_are_normalized_and_buildable(self):
        for spec in SUPPORTED_SPECS:
            assert spec.normalized() == spec
            kernel = build_kernel(spec)
            assert callable(kernel)

    def test_build_cache_returns_one_kernel_per_normalized_spec(self):
        base = KernelSpec(capture="arena")
        assert build_kernel(base) is build_kernel(base)
        # emit is loop-invariant, so both emit modes share one kernel.
        assert build_kernel(
            KernelSpec(capture="arena", emit="incremental")
        ) is build_kernel(base)
        # Distinct loop-defining axes get distinct kernels.
        assert build_kernel(KernelSpec(capture="count")) is not build_kernel(base)

    def test_kernel_source_is_inspectable(self):
        for spec in SUPPORTED_SPECS:
            source = kernel_source(spec)
            assert "def " in source
            if spec.kernel == "scalar" and spec.capture != "frontier":
                assert "while pos < n" in source
            assert build_kernel(spec).__kernel_source__ == source

    def test_capture_modes_generate_distinct_sources(self):
        sources = {
            capture: kernel_source(
                KernelSpec(
                    capture=capture,
                    entry="states" if capture == "frontier" else "initial",
                )
            )
            for capture in CAPTURE_MODES
        }
        assert len(set(sources.values())) == len(CAPTURE_MODES)

    def test_final_capture_builder_is_cached(self):
        assert build_final_capture() is build_final_capture()

    def test_kernel_axis_is_defined_once(self):
        # plan.KERNEL_CHOICES and runlength.KERNELS are the same object
        # as kernel.KERNELS — the axis can no longer drift.
        assert KERNEL_CHOICES is KERNELS
        assert runlength.KERNELS is KERNELS
        assert KERNELS == ("auto", "scalar", "runlength")


class TestDegenerateDocuments:
    """Empty and single-character documents across every generated route."""

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_empty_document(self, pattern):
        assert_all_engines_agree(pattern, "")

    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("char", ["a", "b", "z", "é"])
    def test_single_character(self, pattern, char):
        assert_all_engines_agree(pattern, char)
