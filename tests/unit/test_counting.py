"""Unit tests for Algorithm 3 and the Census reduction (repro.counting)."""

import pytest

from repro.core.errors import NotDeterministicError, NotSequentialError
from repro.automata.builders import EVABuilder
from repro.automata.nfa import NFA
from repro.automata.transforms import to_deterministic_sequential_eva
from repro.counting.census import CensusInstance, census_count, census_to_spanner
from repro.counting.count import count_mappings
from repro.enumeration.evaluate import evaluate
from repro.workloads.spanners import figure2_va, random_census_nfa


class TestCountMappings:
    def test_figure3_counts(self, fig3_eva):
        assert count_mappings(fig3_eva, "ab") == 3
        assert count_mappings(fig3_eva, "ba") == 1
        assert count_mappings(fig3_eva, "") == 0

    def test_count_matches_enumeration(self, fig3_det):
        for document in ["ab", "aab", "abb", "aabb", "abab"]:
            expected = len(list(evaluate(fig3_det, document)))
            assert count_mappings(fig3_det, document) == expected

    def test_count_on_pipeline_compiled_va(self):
        det = to_deterministic_sequential_eva(figure2_va())
        for document in ["", "a", "aa", "aaa"]:
            assert count_mappings(det, document) == len(figure2_va().evaluate(document))

    def test_count_without_variables(self):
        eva = EVABuilder().initial(0).final(1).letter(0, "a", 1).build()
        assert count_mappings(eva, "a") == 1
        assert count_mappings(eva, "b") == 0

    def test_count_empty_document(self):
        eva = EVABuilder().initial(0).final(0).build()
        assert count_mappings(eva, "") == 1

    def test_count_without_initial_state(self):
        assert count_mappings(EVABuilder().final(0).build(), "a") == 0

    def test_rejects_nondeterministic(self, fig3_eva):
        broken = fig3_eva.copy()
        broken.add_letter_transition("q1", "a", "q5")
        with pytest.raises(NotDeterministicError):
            count_mappings(broken, "ab")

    def test_sequentiality_check_optional(self):
        eva = EVABuilder().initial(0).final(1).capture(0, ["x"], [], 1).build()
        with pytest.raises(NotSequentialError):
            count_mappings(eva, "", check_sequentiality=True)

    def test_large_count_exact(self):
        # x{a^j} a^(n-j) with j >= 1: exactly n outputs on a^n, counted
        # without enumerating them.
        eva = (
            EVABuilder()
            .initial(0)
            .final(3)
            .capture(0, ["x"], [], 1)
            .letter(1, "a", 2)
            .capture(2, [], ["x"], 3)
            .letter(2, "a", 2)
            .letter(3, "a", 3)
            .build()
        )
        det = to_deterministic_sequential_eva(eva, assume_sequential=True)
        assert count_mappings(det, "a" * 50) == 50


class TestCensus:
    def build_parity_nfa(self) -> NFA:
        """Accepts words over {a, b} with an even number of a's."""
        nfa = NFA()
        nfa.set_initial(0)
        nfa.add_final(0)
        nfa.add_transition(0, "a", 1)
        nfa.add_transition(1, "a", 0)
        nfa.add_transition(0, "b", 0)
        nfa.add_transition(1, "b", 1)
        return nfa

    def test_census_count_ground_truth(self):
        nfa = self.build_parity_nfa()
        # Words of length 3 with an even number of a's: bbb, aab, aba, baa.
        assert census_count(nfa, 3) == 4

    def test_reduction_produces_functional_va(self):
        automaton, document = census_to_spanner(self.build_parity_nfa(), 2)
        assert automaton.is_functional()
        assert len(document) == 2 * 3  # one block of '#cc' per position

    def test_reduction_is_parsimonious_small(self):
        nfa = self.build_parity_nfa()
        for length in range(4):
            automaton, document = census_to_spanner(nfa, length)
            assert len(automaton.evaluate(document)) == census_count(nfa, length)

    def test_reduction_with_epsilon_transitions(self):
        nfa = NFA()
        nfa.set_initial(0)
        nfa.add_epsilon_transition(0, 1)
        nfa.add_transition(1, "a", 2)
        nfa.add_epsilon_transition(2, 3)
        nfa.add_final(3)
        automaton, document = census_to_spanner(nfa, 1)
        assert len(automaton.evaluate(document)) == census_count(nfa, 1) == 1

    def test_length_zero(self):
        nfa = self.build_parity_nfa()
        automaton, document = census_to_spanner(nfa, 0)
        assert len(document) == 0
        assert len(automaton.evaluate(document)) == 1  # only the empty word

    def test_census_instance_solvers_agree(self):
        instance = CensusInstance(random_census_nfa(4, "ab", density=0.5, seed=7), 3)
        direct = instance.solve_directly()
        assert instance.solve_by_enumeration() == direct
        assert instance.solve_via_spanner() == direct

    def test_census_instance_via_spanner_uses_algorithm3(self):
        instance = CensusInstance(self.build_parity_nfa(), 4)
        assert instance.solve_via_spanner() == census_count(instance.nfa, 4) == 8
