"""Unit tests for the regex → VA compiler (repro.regex.compiler)."""

import pytest

from repro.core.errors import CompilationError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.regex.compiler import compile_to_va, required_alphabet
from repro.regex.semantics import evaluate_regex


def assert_compiles_like_reference(pattern: str, documents, alphabet=None):
    """The compiled VA must agree with the Table 1 reference semantics."""
    automaton = compile_to_va(pattern, alphabet)
    for document in documents:
        assert automaton.evaluate(document) == evaluate_regex(pattern, document), (
            pattern,
            document,
        )


class TestEquivalenceWithReference:
    def test_literals_and_concat(self):
        assert_compiles_like_reference("ab", ["", "a", "ab", "abc", "ba"])

    def test_union(self):
        assert_compiles_like_reference("a|bc", ["a", "bc", "b", "abc", ""])

    def test_star_plus_optional(self):
        assert_compiles_like_reference("a*b+c?", ["b", "ab", "aabbc", "c", ""])

    def test_captures(self):
        assert_compiles_like_reference("a*x{a}a*", ["", "a", "aa", "aaa"])
        assert_compiles_like_reference("x{a+}y{b+}", ["ab", "aabb", "ba", ""])

    def test_nested_captures(self):
        assert_compiles_like_reference(".*x{.*y{.*}.*}.*", ["", "a", "ab"], alphabet="ab")

    def test_optional_capture(self):
        assert_compiles_like_reference("x{a}?b", ["b", "ab", "aab"])

    def test_capture_under_star(self):
        assert_compiles_like_reference("(x{a}b)*", ["", "ab", "abab"])

    def test_char_classes(self):
        assert_compiles_like_reference("[ab]+x{[0-9]}", ["a1", "ab3", "1", ""])

    def test_negated_class(self):
        assert_compiles_like_reference("[^a]+", ["bb", "ab", "a", ""], alphabet="abc")

    def test_wildcard(self):
        assert_compiles_like_reference(".x{.}", ["ab", "a", "abc"], alphabet="abc")

    def test_union_with_different_variables(self):
        assert_compiles_like_reference("x{a}|y{b}", ["a", "b", ""])

    def test_epsilon(self):
        assert_compiles_like_reference("", ["", "a"])


class TestCompilerProperties:
    def test_compiled_automaton_size_is_linear(self):
        # Linear-time translation (Section 4): automaton size grows linearly
        # with the formula.
        small = compile_to_va("x0{a}b")
        large = compile_to_va("".join(f"x{i}{{a}}b" for i in range(10)))
        assert large.num_states <= 12 * small.num_states

    def test_alphabet_required_for_wildcard(self):
        with pytest.raises(CompilationError):
            compile_to_va(".")

    def test_alphabet_required_for_negated_class(self):
        with pytest.raises(CompilationError):
            compile_to_va("[^a]")

    def test_alphabet_inferred_from_literals(self):
        automaton = compile_to_va("ab|cd")
        assert automaton.alphabet() == frozenset("abcd")

    def test_explicit_alphabet_extends_literals(self):
        automaton = compile_to_va("a.", alphabet="abc")
        assert automaton.alphabet() == frozenset("abc")

    def test_invalid_alphabet_member(self):
        with pytest.raises(CompilationError):
            compile_to_va("a", alphabet=["ab"])

    def test_required_alphabet_helper(self):
        assert required_alphabet("a[bc]", "xyz") == frozenset("abcxyz")

    def test_capture_produces_variable(self):
        automaton = compile_to_va("name{a}")
        assert automaton.variables() == frozenset({"name"})

    def test_compiled_automaton_is_trim(self):
        from repro.automata.analysis import coreachable_states, reachable_states

        automaton = compile_to_va("a(b|c)x{d}")
        useful = reachable_states(automaton) & coreachable_states(automaton)
        assert useful == automaton.states

    def test_wildcard_expansion_matches_document_alphabet(self):
        automaton = compile_to_va(".*x{a}.*", alphabet="abz")
        assert automaton.evaluate("zaz") == {Mapping({"x": Span(1, 2)})}
