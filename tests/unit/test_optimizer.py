"""Unit tests for the cost-based optimizer and its facade/CLI integration."""

import pytest

from repro.core.errors import CompilationError
from repro.algebra.compile import evaluate_expression_setwise
from repro.algebra.expressions import Atom, Join, Projection, UnionExpr
from repro.algebra.optimizer import optimize, provably_functional
from repro.algebra.logical import logical_from_expression
from repro.runtime.operators import ArenaProject, FusedLeaf, HashJoin, MergeUnion
from repro.runtime.plan import ExecutionPlan
from repro.spanners.spanner import Spanner
from repro.workloads.spanners import join_heavy_expression

ALPHABET = frozenset("ab")


def functional_join():
    return Join(Atom("x{a+}b*"), Atom("x{a+}y{b*}"))


class TestCutDecisions:
    def test_small_join_fuses(self):
        plan = optimize(functional_join(), ALPHABET, join_fuse_threshold=10_000)
        assert not plan.is_hybrid
        assert isinstance(plan.physical, FusedLeaf)

    def test_large_join_cuts(self):
        plan = optimize(functional_join(), ALPHABET, join_fuse_threshold=0)
        assert plan.is_hybrid
        assert isinstance(plan.physical, HashJoin)
        assert all(isinstance(leaf, FusedLeaf) for leaf in plan.physical.children())

    def test_union_cuts_above_threshold(self):
        expression = UnionExpr(Atom("x{a}"), Atom("x{b}"))
        plan = optimize(expression, ALPHABET, union_fuse_threshold=0)
        assert isinstance(plan.physical, MergeUnion)

    def test_projection_over_cut_child_becomes_arena_project(self):
        expression = Projection(functional_join(), ["y"])
        plan = optimize(expression, ALPHABET, join_fuse_threshold=0)
        assert isinstance(plan.physical, ArenaProject)

    def test_operand_of_cut_parent_stays_fused_subtree(self):
        # The inner join is small enough to fuse; the outer join exceeds the
        # threshold, so exactly one cut happens, between the two.
        inner = functional_join()
        expression = Join(inner, Atom("x{a+}"))
        plan = optimize(expression, ALPHABET, join_fuse_threshold=40)
        if plan.is_hybrid:
            kinds = {type(child) for child in plan.physical.children()}
            assert kinds == {FusedLeaf}

    def test_default_join_heavy_expression_is_cut(self):
        plan = optimize(join_heavy_expression(), ALPHABET)
        assert plan.is_hybrid
        assert isinstance(plan.physical, HashJoin)
        assert len(plan.physical.children()) == 4


class TestFunctionalValidation:
    def test_non_functional_join_operand_raises(self):
        # y{b}? is not functional: some accepting runs do not assign y.
        expression = Join(Atom("x{a+}"), Atom("x{a+}(y{b})?"))
        with pytest.raises(CompilationError, match="not functional"):
            optimize(expression, ALPHABET)

    def test_unchecked_escape_hatch(self):
        expression = Join(Atom("x{a+}"), Atom("x{a+}(y{b})?"))
        plan = optimize(expression, ALPHABET, unchecked=True)
        assert plan.physical is not None

    def test_atoms_outside_joins_are_not_checked(self):
        # A non-functional atom in a plain union must not raise.
        expression = UnionExpr(Atom("x{a}(y{b})?"), Atom("x{b}(y{a})?"))
        plan = optimize(expression, ALPHABET)
        assert plan.physical is not None

    def test_structural_guard_survives_unchecked(self):
        # unchecked=True skips the per-atom is_functional computation, but
        # the free structural guard must stay: fusing a join over a union
        # with mismatched branch variables is wrong regardless of atoms.
        expression = Join(
            Atom("x{a}b"), UnionExpr(Atom("x{a}b"), Atom("(a)y{b}"))
        )
        plan = optimize(
            expression, ALPHABET, unchecked=True, join_fuse_threshold=10_000
        )
        assert plan.is_hybrid
        plan.physical.prepare(ALPHABET)
        got = set(plan.physical.execute("ab"))
        assert got == evaluate_expression_setwise(expression, "ab", ALPHABET)

    def test_union_with_mismatched_variables_forces_cut(self):
        # Both atoms are functional, but the union is not provably
        # functional (branches produce different variable sets), so a
        # fused join over it would be unsound: the optimizer must cut.
        union = UnionExpr(Atom("x{a}y{b}"), Atom("x{b}"))
        expression = Join(union, Atom("x{.}"))
        plan = optimize(expression, ALPHABET, join_fuse_threshold=10_000)
        assert plan.is_hybrid
        assert isinstance(plan.physical, HashJoin)

    def test_provably_functional_structure_rules(self):
        functional = {True: lambda atom: True, False: lambda atom: False}
        same_vars = logical_from_expression(UnionExpr(Atom("x{a}"), Atom("x{b}")))
        assert provably_functional(same_vars, functional[True])
        assert not provably_functional(same_vars, functional[False])
        mixed_vars = logical_from_expression(UnionExpr(Atom("x{a}"), Atom("y{b}")))
        assert not provably_functional(mixed_vars, functional[True])


class TestExplain:
    def test_optimized_plan_explain_sections(self):
        plan = optimize(join_heavy_expression(), ALPHABET)
        text = plan.explain()
        assert "logical plan:" in text
        assert "physical plan:" in text
        assert "rewrites applied:" in text
        assert "est" in text  # size annotations on the optimized tree

    def test_facade_explain_renders_both_trees_and_plan(self):
        spanner = Spanner.from_expression(join_heavy_expression())
        text = spanner.explain("abab")
        assert "logical plan:" in text
        assert "physical plan:" in text
        assert "execution plan: engine=hybrid" in text
        assert "hash-join" in text

    def test_facade_explain_works_for_regex_sources(self):
        text = Spanner.from_regex("x{a+}b").explain("ab")
        assert "execution plan: engine=" in text
        assert "atom[" in text


class TestPlanIntegration:
    def test_hybrid_plan_requires_operators(self):
        with pytest.raises(ValueError):
            ExecutionPlan("hybrid", False, "no tree")
        with pytest.raises(ValueError):
            ExecutionPlan("compiled", True, "tree on wrong engine", operators=object())

    def test_facade_engines_agree_on_hybrid_expression(self):
        expression = join_heavy_expression((3, 5))
        spanner = Spanner.from_expression(expression)
        document = "ab" * 20
        expected = evaluate_expression_setwise(expression, document)
        for engine in ("auto", "hybrid", "compiled", "compiled-otf"):
            assert set(spanner.evaluate(document, engine=engine)) == expected
            assert spanner.count(document, engine=engine) == len(expected)

    def test_hybrid_engine_on_regex_source_degrades_to_auto(self):
        spanner = Spanner.from_regex("x{a+}b")
        assert set(spanner.evaluate("aab", engine="hybrid")) == set(
            spanner.evaluate("aab", engine="compiled")
        )

    def test_spanner_unchecked_flag_reaches_optimizer(self):
        expression = Join(Atom("x{a+}"), Atom("x{a+}(y{b})?"))
        with pytest.raises(CompilationError, match="not functional"):
            Spanner.from_expression(expression).evaluate("aab")
        relaxed = Spanner.from_expression(expression, unchecked=True)
        assert relaxed.evaluate("aab") is not None

    def test_optimized_plan_cached_per_alphabet(self):
        spanner = Spanner.from_expression(join_heavy_expression((3, 5)))
        spanner.evaluate("ab")
        first = spanner._optimized_for_key(frozenset("ab"))
        spanner.evaluate("ba")
        assert spanner._optimized_for_key(frozenset("ab")) is first

    def test_run_batch_hybrid_across_processes(self):
        expression = join_heavy_expression((3, 5))
        spanner = Spanner.from_expression(expression)
        documents = ["ab" * 15, "ba" * 15, "a" * 30]
        serial = {
            doc_id: set(map(str, result))
            for doc_id, result in spanner.run_batch(documents)
        }
        parallel = {
            doc_id: set(map(str, result))
            for doc_id, result in spanner.run_batch(
                documents, mode="processes", max_workers=2
            )
        }
        assert parallel == serial
