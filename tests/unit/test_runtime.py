"""Unit tests for the compiled integer-indexed runtime (repro.runtime)."""

import pickle

import pytest

from repro.core.errors import CompilationError, EvaluationError, NotDeterministicError
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet, open_
from repro.automata.transforms import to_deterministic_sequential_eva
from repro.enumeration.evaluate import evaluate
from repro.runtime.batch import freeze_result, thaw_result
from repro.runtime.compiled import NO_TARGET, CompiledEVA, compile_eva
from repro.runtime.engine import EvaluationScratch, evaluate_compiled
from repro.spanners.spanner import Spanner


def mappings_of(result):
    return {str(mapping) for mapping in result}


@pytest.fixture
def fig3_compiled(fig3_det):
    return compile_eva(fig3_det, check_determinism=False)


class TestCompileEVA:
    def test_states_are_interned_contiguously(self, fig3_det, fig3_compiled):
        assert fig3_compiled.num_states == fig3_det.num_states
        assert set(fig3_compiled.state_index.values()) == set(
            range(fig3_compiled.num_states)
        )

    def test_initial_state_is_id_zero(self, fig3_det, fig3_compiled):
        assert fig3_compiled.initial == 0
        assert fig3_compiled.state_objects[0] == fig3_det.initial

    def test_letter_table_matches_source(self, fig3_det, fig3_compiled):
        for state in fig3_det.states:
            state_id = fig3_compiled.state_index[state]
            row = fig3_compiled.letter_table[state_id]
            for symbol, target in fig3_det.letter_transitions_from(state):
                symbol_id = fig3_compiled.symbol_index[symbol]
                assert row[symbol_id] == fig3_compiled.state_index[target]

    def test_variable_table_matches_source(self, fig3_det, fig3_compiled):
        for state in fig3_det.states:
            state_id = fig3_compiled.state_index[state]
            expected = {
                (marker_set, fig3_compiled.state_index[target])
                for marker_set, target in fig3_det.variable_transitions_from(state)
            }
            actual = {
                (fig3_compiled.marker_sets[set_id], target)
                for set_id, target in fig3_compiled.variable_table[state_id]
            }
            assert actual == expected

    def test_final_ids_match(self, fig3_det, fig3_compiled):
        finals = {fig3_compiled.state_objects[i] for i in fig3_compiled.final_ids}
        assert finals == set(fig3_det.finals)
        assert all(fig3_compiled.is_final[i] for i in fig3_compiled.final_ids)

    def test_encode_text_marks_foreign_characters(self, fig3_compiled):
        encoded = fig3_compiled.encode_text("a✗")
        assert encoded[1] == NO_TARGET
        assert encoded[0] == fig3_compiled.symbol_index["a"]

    def test_rejects_missing_initial(self):
        automaton = ExtendedVA()
        automaton.add_state("q")
        with pytest.raises(CompilationError):
            compile_eva(automaton)

    def test_rejects_non_deterministic(self):
        automaton = ExtendedVA()
        automaton.set_initial("q0")
        automaton.add_final("q1")
        automaton.add_letter_transition("q0", "a", "q1")
        automaton.add_letter_transition("q0", "a", "q0")
        with pytest.raises(NotDeterministicError):
            compile_eva(automaton)

    def test_pickle_roundtrip(self, fig3_compiled):
        clone = pickle.loads(pickle.dumps(fig3_compiled))
        assert isinstance(clone, CompiledEVA)
        assert clone.letter_table == fig3_compiled.letter_table
        assert clone.variable_table == fig3_compiled.variable_table
        assert clone.state_index == fig3_compiled.state_index


class TestEvaluateCompiled:
    DOCUMENT = "John <j@g.be>, Jane <555-12>"

    def test_matches_reference_engine(self, fig3_det, fig3_compiled, figure1_doc):
        reference = evaluate(fig3_det, figure1_doc, check_determinism=False)
        compiled = evaluate_compiled(fig3_compiled, figure1_doc)
        assert mappings_of(compiled) == mappings_of(reference)
        assert compiled.count() == reference.count()

    def test_empty_document(self, fig3_compiled, fig3_det):
        reference = evaluate(fig3_det, "", check_determinism=False)
        compiled = evaluate_compiled(fig3_compiled, "")
        assert mappings_of(compiled) == mappings_of(reference)

    def test_foreign_characters_kill_all_runs(self, fig3_compiled):
        assert evaluate_compiled(fig3_compiled, "✗✗✗").is_empty()

    def test_scratch_is_reusable_across_documents(self, fig3_compiled, fig3_det):
        scratch = EvaluationScratch(fig3_compiled)
        for document in (self.DOCUMENT, "", "Ada <a@g.be>", "no match"):
            reference = evaluate(fig3_det, document, check_determinism=False)
            compiled = evaluate_compiled(fig3_compiled, document, scratch=scratch)
            assert mappings_of(compiled) == mappings_of(reference)

    def test_scratch_for_wrong_automaton_rejected(self, fig3_compiled):
        spanner = Spanner.from_regex("x{a}")
        other = compile_eva(spanner.compiled("a"), check_determinism=False)
        if other.num_states != fig3_compiled.num_states:
            with pytest.raises(EvaluationError):
                evaluate_compiled(fig3_compiled, "a", scratch=EvaluationScratch(other))

    def test_result_keyed_by_source_states(self, fig3_compiled, figure1_doc):
        result = evaluate_compiled(fig3_compiled, figure1_doc)
        assert set(result.final_lists) <= set(fig3_compiled.source.finals)


class TestFreezeThaw:
    def test_roundtrip_preserves_mappings_and_count(self, fig3_det, fig3_compiled, figure1_doc):
        original = evaluate_compiled(fig3_compiled, figure1_doc)
        portable = freeze_result(original, fig3_compiled)
        rebuilt = thaw_result(portable, fig3_compiled)
        assert mappings_of(rebuilt) == mappings_of(original)
        assert rebuilt.count() == original.count()
        assert rebuilt.document_length == original.document_length

    def test_portable_form_is_picklable(self, fig3_compiled, figure1_doc):
        portable = freeze_result(
            evaluate_compiled(fig3_compiled, figure1_doc), fig3_compiled
        )
        assert pickle.loads(pickle.dumps(portable)) == portable

    def test_node_sharing_preserved(self):
        # a* with a captured prefix produces a DAG with shared suffixes; the
        # rebuilt DAG must preserve sharing or the path count would change.
        spanner = Spanner.from_regex("x{a*}a*")
        document = "a" * 8
        compiled = compile_eva(spanner.compiled(document), check_determinism=False)
        original = evaluate_compiled(compiled, document)
        rebuilt = thaw_result(freeze_result(original, compiled), compiled)
        assert rebuilt.count() == original.count()
        assert rebuilt.node_count() == original.node_count()


class TestEvaCaches:
    def test_target_caches_invalidated_on_mutation(self):
        automaton = ExtendedVA()
        automaton.set_initial("q0")
        automaton.add_letter_transition("q0", "a", "q1")
        assert automaton.letter_targets("q0", "a") == frozenset({"q1"})
        automaton.add_letter_transition("q0", "a", "q2")
        assert automaton.letter_targets("q0", "a") == frozenset({"q1", "q2"})
        marker_set = MarkerSet([open_("x")])
        automaton.add_variable_transition("q0", marker_set, "q1")
        assert automaton.variable_targets("q0", marker_set) == frozenset({"q1"})
        automaton.add_variable_transition("q0", marker_set, "q2")
        assert automaton.variable_targets("q0", marker_set) == frozenset({"q1", "q2"})

    def test_result_dag_final_lists_is_read_only_view(self, fig3_det, figure1_doc):
        result = evaluate(fig3_det, figure1_doc, check_determinism=False)
        view = result.final_lists
        assert view is result.final_lists  # no per-access copy
        with pytest.raises(TypeError):
            view["new"] = None


def test_deterministic_pipeline_output_compiles(contact_regex, figure1_doc):
    automaton = Spanner.from_regex(contact_regex).compiled(figure1_doc)
    compiled = compile_eva(automaton)
    assert compiled.num_states == automaton.num_states
    determinized = to_deterministic_sequential_eva(automaton, assume_sequential=True)
    assert determinized.num_states >= 1


def test_pipeline_compile_runtime_records_intern_stage(contact_regex):
    from repro.spanners.pipeline import CompilationPipeline

    pipeline = CompilationPipeline(contact_regex, alphabet="John <j@g.be>")
    compiled, report = pipeline.compile_runtime()
    assert isinstance(compiled, CompiledEVA)
    assert report.stages[-1].name == "intern"
    assert compiled.num_states == report.stages[-1].num_states
