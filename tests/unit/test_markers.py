"""Unit tests for repro.automata.markers."""

import pytest

from repro.automata.markers import Marker, MarkerSet, close, open_


class TestMarker:
    def test_open_and_close_helpers(self):
        assert open_("x").is_open
        assert close("x").is_close
        assert open_("x").variable == "x"

    def test_dual(self):
        assert open_("x").dual() == close("x")
        assert close("x").dual() == open_("x")

    def test_invalid_variable(self):
        with pytest.raises(ValueError):
            Marker("", True)
        with pytest.raises(ValueError):
            Marker(7, True)

    def test_equality_and_hash(self):
        assert open_("x") == open_("x")
        assert open_("x") != close("x")
        assert open_("x") != open_("y")
        assert len({open_("x"), open_("x"), close("x")}) == 2

    def test_ordering_opens_before_closes(self):
        markers = [close("a"), open_("b"), open_("a"), close("b")]
        assert sorted(markers) == [open_("a"), open_("b"), close("a"), close("b")]

    def test_comparison_operators(self):
        assert open_("a") < close("a")
        assert close("a") > open_("z")
        assert open_("a") <= open_("a")
        assert close("b") >= close("a")

    def test_str_and_repr(self):
        assert str(open_("x")) == "x⊢"
        assert str(close("x")) == "⊣x"
        assert "open" in repr(open_("x"))
        assert "close" in repr(close("x"))


class TestMarkerSet:
    def test_construction_and_membership(self):
        markers = MarkerSet([open_("x"), close("y")])
        assert open_("x") in markers
        assert close("x") not in markers
        assert len(markers) == 2

    def test_of_constructor(self):
        assert MarkerSet.of(open_("x")) == MarkerSet([open_("x")])

    def test_rejects_non_markers(self):
        with pytest.raises(TypeError):
            MarkerSet(["x"])

    def test_empty_set_is_falsy(self):
        assert not MarkerSet()
        assert not MarkerSet().non_empty()
        assert MarkerSet([open_("x")]).non_empty()

    def test_variables_opened_closed(self):
        markers = MarkerSet([open_("x"), open_("y"), close("y")])
        assert markers.variables() == frozenset({"x", "y"})
        assert markers.opened() == frozenset({"x", "y"})
        assert markers.closed() == frozenset({"y"})

    def test_restrict(self):
        markers = MarkerSet([open_("x"), close("y")])
        assert markers.restrict(["x"]) == MarkerSet([open_("x")])
        assert markers.restrict([]) == MarkerSet()

    def test_union_and_disjoint(self):
        left = MarkerSet([open_("x")])
        right = MarkerSet([close("x")])
        assert left.union(right) == MarkerSet([open_("x"), close("x")])
        assert left.isdisjoint(right)
        assert not left.isdisjoint(left)

    def test_canonical_order(self):
        markers = MarkerSet([close("a"), open_("b")])
        assert markers.canonical_order() == [open_("b"), close("a")]

    def test_equality_with_frozenset(self):
        assert MarkerSet([open_("x")]) == frozenset({open_("x")})

    def test_hashable(self):
        assert len({MarkerSet([open_("x")]), MarkerSet([open_("x")])}) == 1

    def test_str(self):
        assert str(MarkerSet()) == "{}"
        assert str(MarkerSet([open_("x")])) == "{x⊢}"
