"""Unit tests for the CompiledResultDag arena (repro.runtime.dag)."""

import pickle

import pytest

from repro.enumeration import dag as dag_module
from repro.enumeration.enumerate import delay_profile
from repro.enumeration.evaluate import evaluate
from repro.runtime.compiled import compile_eva
from repro.runtime.dag import CompiledResultDag
from repro.runtime.engine import (
    EvaluationScratch,
    count_compiled,
    evaluate_compiled,
    evaluate_compiled_arena,
)
from repro.spanners.spanner import Spanner


def mappings_of(result):
    return {str(mapping) for mapping in result}


@pytest.fixture
def fig3_compiled(fig3_det):
    return compile_eva(fig3_det, check_determinism=False)


class TestArenaEngine:
    def test_matches_reference_engine(self, fig3_det, fig3_compiled, figure1_doc):
        reference = evaluate(fig3_det, figure1_doc, check_determinism=False)
        arena = evaluate_compiled_arena(fig3_compiled, figure1_doc)
        assert mappings_of(arena) == mappings_of(reference)
        assert arena.count() == reference.count()
        assert arena.node_count() == reference.node_count()

    def test_empty_document_and_no_match(self, fig3_compiled):
        assert mappings_of(evaluate_compiled_arena(fig3_compiled, "")) == set()
        assert evaluate_compiled_arena(fig3_compiled, "✗✗✗").is_empty()

    def test_scratch_reuse_across_documents(self, fig3_compiled, fig3_det):
        scratch = EvaluationScratch(fig3_compiled)
        for document in ("John <j@g.be>", "", "a", "Jane <555-12>"):
            reference = evaluate(fig3_det, document, check_determinism=False)
            arena = evaluate_compiled_arena(fig3_compiled, document, scratch=scratch)
            assert mappings_of(arena) == mappings_of(reference)
            assert arena.count() == reference.count()

    def test_no_dag_nodes_materialized(self, monkeypatch):
        spanner = Spanner.from_regex("x{a*}a*")
        document = "a" * 8
        compiled = compile_eva(spanner.compiled(document), check_determinism=False)

        def forbidden(*args, **kwargs):
            raise AssertionError("the arena path must not build DagNode objects")

        monkeypatch.setattr(dag_module.DagNode, "__init__", forbidden)
        arena = evaluate_compiled_arena(compiled, document)
        assert arena.count() == 9
        assert len(list(arena)) == 9

    def test_delay_profile_accepts_arena(self, fig3_compiled, figure1_doc):
        arena = evaluate_compiled_arena(fig3_compiled, figure1_doc)
        delays = delay_profile(arena)
        assert len(delays) == arena.count()


class TestIntegerCounting:
    def test_count_compiled_equals_dag_count(self, fig3_compiled, figure1_doc):
        arena = evaluate_compiled_arena(fig3_compiled, figure1_doc)
        assert count_compiled(fig3_compiled, figure1_doc) == arena.count()

    def test_count_compiled_on_dead_documents(self, fig3_compiled):
        assert count_compiled(fig3_compiled, "") == 0
        assert count_compiled(fig3_compiled, "✗") == 0

    def test_count_with_node_sharing(self):
        spanner = Spanner.from_regex("x{a*}a*")
        document = "a" * 10
        compiled = compile_eva(spanner.compiled(document), check_determinism=False)
        assert count_compiled(compiled, document) == 11
        assert evaluate_compiled_arena(compiled, document).count() == 11


class TestConversions:
    def test_to_result_dag_is_lossless(self, fig3_compiled, figure1_doc):
        arena = evaluate_compiled_arena(fig3_compiled, figure1_doc)
        legacy = arena.to_result_dag()
        assert mappings_of(legacy) == mappings_of(arena)
        assert legacy.count() == arena.count()
        assert legacy.node_count() == arena.node_count()

    def test_from_result_dag_is_lossless(self, fig3_compiled, figure1_doc):
        legacy = evaluate_compiled(fig3_compiled, figure1_doc)
        arena = CompiledResultDag.from_result_dag(legacy, fig3_compiled)
        assert mappings_of(arena) == mappings_of(legacy)
        assert arena.count() == legacy.count()

    def test_roundtrip_preserves_sharing(self):
        spanner = Spanner.from_regex("x{a*}a*")
        document = "a" * 8
        compiled = compile_eva(spanner.compiled(document), check_determinism=False)
        arena = evaluate_compiled_arena(compiled, document)
        back = CompiledResultDag.from_result_dag(arena.to_result_dag(), compiled)
        assert back.count() == arena.count()
        assert back.node_count() == arena.node_count()

    def test_portable_form_is_picklable_and_lossless(self, fig3_compiled, figure1_doc):
        arena = evaluate_compiled_arena(fig3_compiled, figure1_doc)
        portable = arena.to_portable()
        assert pickle.loads(pickle.dumps(portable)) == portable
        rebuilt = CompiledResultDag.from_portable(portable, fig3_compiled)
        assert mappings_of(rebuilt) == mappings_of(arena)
        assert rebuilt.count() == arena.count()
