"""Unit tests for the document-encoding layer (repro.runtime.encoding).

Covers the symbol-equivalence-class construction, the C-level translation
(byte table, str.translate fallback, wide-classing array path), the
per-document cache with its signature sharing and FIFO bound, and the
scratch-reuse plumbing of the engines that consume the encoded buffers.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.documents import Document, DocumentCollection
from repro.core.errors import EvaluationError
from repro.counting.census import CensusInstance
from repro.runtime import encoding
from repro.runtime.compiled import NO_TARGET, compile_eva
from repro.runtime.encoding import EncodedDocument, SymbolClassing
from repro.runtime.engine import (
    EvaluationScratch,
    count_compiled,
    evaluate_compiled_arena,
)
from repro.runtime.subset import CompiledSubsetEVA
from repro.spanners.spanner import Spanner
from repro.workloads.spanners import random_census_nfa


def compiled_for(pattern: str, alphabet: str):
    spanner = Spanner.from_regex(pattern)
    automaton = spanner.compiled(alphabet)
    return compile_eva(automaton, check_determinism=False)


class TestSymbolClasses:
    def test_identical_columns_collapse(self):
        # In ".*x{a+b}.*" over a 12-symbol alphabet, every symbol except the
        # two the automaton distinguishes behaves identically.
        compiled = compiled_for(".*x{a+b}.*", "abcdefghijkl")
        assert compiled.num_symbols == 12
        assert compiled.num_classes < compiled.num_symbols

    def test_class_table_matches_letter_table(self):
        compiled = compiled_for(".*x{a+b}.*", "abcd")
        class_of = compiled.classing.class_of
        for state in range(compiled.num_states):
            for symbol_id in range(compiled.num_symbols):
                assert (
                    compiled.letter_table[state][symbol_id]
                    == compiled.class_table[state][class_of[symbol_id]]
                )
            # The trailing foreign column is all-dead.
            assert compiled.class_table[state][compiled.classing.foreign_class] == (
                NO_TARGET
            )

    def test_single_class_alphabet(self):
        compiled = compiled_for(".*", "a")
        assert compiled.num_classes == 1

    def test_signatures_shared_across_compilations(self):
        first = compiled_for(".*x{a+b}.*", "ab")
        second = compiled_for(".*x{a+b}.*", "ab")
        assert first.classing is not second.classing
        assert first.classing == second.classing
        assert hash(first.classing) == hash(second.classing)

    def test_subset_runtime_carries_classing(self):
        spanner = Spanner.from_regex(".*x{a+b}.*")
        subset_eva = spanner.otf_runtime("abcd")
        assert isinstance(subset_eva, CompiledSubsetEVA)
        assert subset_eva.num_classes <= len(subset_eva.symbols)
        encoded = subset_eva.encode("abcd✗")
        assert encoded.buffer[-1] == subset_eva.classing.foreign_class


class TestEncoding:
    def test_symbols_map_to_their_class(self):
        classing = SymbolClassing(("a", "b", "c"), (0, 1, 0))
        encoded = classing.encode_fresh("abca")
        assert list(encoded.buffer) == [0, 1, 0, 0]
        assert isinstance(encoded.buffer, bytes)
        assert encoded.length == 4

    def test_foreign_characters_map_to_foreign_class(self):
        classing = SymbolClassing(("a", "b"), (0, 1))
        foreign = classing.foreign_class
        # High codepoints, low control codepoints that collide with class
        # ids, and latin-1 bytes outside the alphabet all land on foreign.
        encoded = classing.encode_fresh("a✗\x00\x01zb")
        assert list(encoded.buffer) == [0, foreign, foreign, foreign, foreign, 1]

    def test_non_latin1_text_falls_back_to_str_translate(self):
        classing = SymbolClassing(("a", "✗"), (0, 1))
        encoded = classing.encode_fresh("a✗a☃")
        assert list(encoded.buffer) == [0, 1, 0, classing.foreign_class]

    def test_wide_classing_uses_int_array(self):
        symbols = tuple(chr(0x100 + i) for i in range(300))
        classing = SymbolClassing(symbols, tuple(range(300)))
        assert classing.num_ids > 256
        encoded = classing.encode_fresh(symbols[0] + symbols[299] + "z")
        assert not isinstance(encoded.buffer, bytes)
        assert list(encoded.buffer) == [0, 299, classing.foreign_class]

    def test_empty_document(self):
        classing = SymbolClassing(("a",), (0,))
        encoded = classing.encode_fresh("")
        assert len(encoded.buffer) == 0
        assert encoded.length == 0

    def test_encoded_document_passes_through(self):
        classing = SymbolClassing(("a", "b"), (0, 1))
        encoded = classing.encode("ab")
        assert classing.encode(encoded) is encoded
        # A different classing re-encodes from the retained text.
        other = SymbolClassing(("a", "b"), (0, 0))
        re_encoded = other.encode(encoded)
        assert isinstance(re_encoded, EncodedDocument)
        assert list(re_encoded.buffer) == [0, 0]


class TestDocumentCache:
    def test_same_document_encodes_once_per_signature(self):
        classing = SymbolClassing(("a", "b"), (0, 1))
        document = Document("abab")
        encoding.reset_encoding_passes()
        first = classing.encode(document)
        again = classing.encode(document)
        assert first is again
        assert encoding.encoding_passes() == 1
        # An equal classing from another compilation hits the same entry.
        twin = SymbolClassing(("a", "b"), (0, 1))
        assert twin.encode(document) is first
        assert encoding.encoding_passes() == 1

    def test_cache_is_lru_bounded(self):
        document = Document("ab")
        # One distinct signature per classing: vary the symbols tuple.
        classings = [
            SymbolClassing((chr(ord("a") + index),), (0,))
            for index in range(Document.MAX_CACHED_ENCODINGS + 2)
        ]
        for classing in classings:
            classing.encode(document)
        assert document.cached_encodings() == Document.MAX_CACHED_ENCODINGS
        # The least recently used entries were evicted, the newest survives.
        assert document.cached_encoding(classings[0].signature) is None
        assert document.cached_encoding(classings[1].signature) is None
        assert document.cached_encoding(classings[-1].signature) is not None

    def test_cache_hits_refresh_recency(self):
        document = Document("ab")
        classings = [
            SymbolClassing((chr(ord("a") + index),), (0,))
            for index in range(Document.MAX_CACHED_ENCODINGS + 1)
        ]
        for classing in classings[:-1]:
            classing.encode(document)
        # Touch the oldest entry, then insert one more: the eviction must
        # hit the now-least-recently-used second entry, not the first.
        assert document.cached_encoding(classings[0].signature) is not None
        classings[-1].encode(document)
        assert document.cached_encoding(classings[0].signature) is not None
        assert document.cached_encoding(classings[1].signature) is None

    def test_plain_strings_are_not_cached(self):
        classing = SymbolClassing(("a",), (0,))
        encoding.reset_encoding_passes()
        classing.encode("aaa")
        classing.encode("aaa")
        assert encoding.encoding_passes() == 2

    def test_pickling_drops_the_cache(self):
        classing = SymbolClassing(("a", "b"), (0, 1))
        document = Document("abab", name="doc")
        classing.encode(document)
        assert document.cached_encodings() == 1
        clone = pickle.loads(pickle.dumps(document))
        assert clone.text == document.text
        assert clone.name == "doc"
        assert clone.cached_encodings() == 0

    def test_facade_shares_one_pass_across_operations(self):
        spanner = Spanner.from_regex(".*x{a+b}.*")
        document = Document("abaab" * 20)
        spanner.compiled(document.text)  # compile outside the counted region
        encoding.reset_encoding_passes()
        spanner.evaluate(document)
        spanner.count(document)
        list(spanner.enumerate(document))
        assert encoding.encoding_passes() == 1

    def test_collection_encode_all(self):
        shared = Document("abab")
        collection = DocumentCollection([shared, shared.text, "bbbb"])
        classing = SymbolClassing(("a", "b"), (0, 1))
        assert collection.encode_all(classing) == 3
        assert collection.encode_all(classing) == 0

    def test_collection_alphabet_memo_invalidated_by_add(self):
        collection = DocumentCollection(["ab"])
        assert collection.alphabet() == frozenset("ab")
        collection.add("cd")
        assert collection.alphabet() == frozenset("abcd")


class TestRunLengthView:
    def test_runs_concatenate_back_to_the_buffer(self):
        classing = SymbolClassing(("a", "b"), (0, 1))
        encoded = classing.encode("aaabbbab" * 3)
        rebuilt = b"".join(
            bytes((cls,)) * length for cls, length in encoded.runs()
        )
        assert rebuilt == bytes(encoded.buffer)
        assert encoded.mean_run_length() == encoded.length / len(encoded.runs())

    def test_runs_are_cached_on_the_encoding(self):
        classing = SymbolClassing(("a", "b"), (0, 1))
        encoded = classing.encode("aabb")
        assert encoded.runs() is encoded.runs()

    def test_rle_cache_rides_the_encoding_cache(self):
        # The RLE view lives on the EncodedDocument, which the Document
        # caches per classing signature — so the run view can never
        # outlive (or be served for) a different signature's buffer.
        document = Document("aabbaa")
        wide = SymbolClassing(("a", "b"), (0, 1))
        collapsed = SymbolClassing(("a", "b"), (0, 0))
        runs_wide = wide.encode(document).runs()
        runs_collapsed = collapsed.encode(document).runs()
        assert runs_wide == ((0, 2), (1, 2), (0, 2))
        assert runs_collapsed == ((0, 6),)
        # Re-encoding under the first signature still serves its own runs.
        assert wide.encode(document).runs() == runs_wide

    def test_stale_signature_regression_after_eviction(self):
        # Fill the document's encoding cache past its bound so the first
        # signature is evicted, then re-encode it: the fresh encoding
        # must carry a fresh (correct) run view, never a stale one.
        document = Document("aabb")
        first = SymbolClassing(("a", "b"), (0, 1))
        assert first.encode(document).runs() == ((0, 2), (1, 2))
        for index in range(Document.MAX_CACHED_ENCODINGS + 1):
            SymbolClassing((chr(ord("c") + index),), (0,)).encode(document)
        assert document.cached_encoding(first.signature) is None
        encoded = first.encode(document)
        assert encoded.runs() == ((0, 2), (1, 2))
        assert bytes(encoded.buffer) == b"\x00\x00\x01\x01"

    def test_pickling_drops_the_run_view(self):
        classing = SymbolClassing(("a", "b"), (0, 1))
        encoded = classing.encode("aabb")
        runs = encoded.runs()
        clone = pickle.loads(pickle.dumps(encoded))
        assert clone._runs is None
        assert clone.runs() == runs


class TestScratchReuse:
    def test_count_compiled_accepts_and_reuses_scratch(self):
        compiled = compiled_for(".*x{a+b}.*", "ab")
        scratch = EvaluationScratch(compiled)
        baseline = count_compiled(compiled, "abaab")
        for _ in range(3):
            assert count_compiled(compiled, "abaab", scratch=scratch) == baseline
        # The borrowed count rows come back zeroed.
        assert not any(scratch.count_cur)
        assert not any(scratch.count_pend)

    def test_count_compiled_rejects_foreign_scratch(self):
        compiled = compiled_for(".*x{a+b}.*", "ab")
        other = compiled_for(".*", "ab")
        with pytest.raises(EvaluationError):
            count_compiled(compiled, "ab", scratch=EvaluationScratch(other))

    def test_one_scratch_serves_count_and_arena(self):
        compiled = compiled_for(".*x{a+b}.*", "ab")
        scratch = EvaluationScratch(compiled)
        dag = evaluate_compiled_arena(compiled, "abaab", scratch=scratch)
        assert count_compiled(compiled, "abaab", scratch=scratch) == dag.count()

    def test_census_compiled_solver_matches_direct(self):
        instance = CensusInstance(random_census_nfa(4, "ab", density=0.4, seed=5), 4)
        assert instance.solve_via_compiled_spanner(repeat=3) == (
            instance.solve_directly()
        )


class TestSprintPatterns:
    def test_stop_pattern_excludes_self_loops(self):
        compiled = compiled_for(".*x{a+b}.*", "ab")
        for state in range(compiled.num_states):
            pattern = compiled.sprint_pattern(state)
            row = compiled.class_table[state]
            buffer = bytes(range(compiled.classing.num_ids))
            stops = {match.start() for match in pattern.finditer(buffer)}
            expected = {
                class_id
                for class_id, target in enumerate(row)
                if target != state
            }
            assert stops == expected

    def test_multi_pattern_is_union_of_stops(self):
        compiled = compiled_for(".*x{a+b}.*", "ab")
        states = tuple(sorted(range(min(2, compiled.num_states))))
        pattern = compiled.sprint_pattern_multi(states)
        buffer = bytes(range(compiled.classing.num_ids))
        stops = {match.start() for match in pattern.finditer(buffer)}
        expected = {
            class_id
            for state in states
            for class_id, target in enumerate(compiled.class_table[state])
            if target != state
        }
        assert stops == expected
