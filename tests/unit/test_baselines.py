"""Unit tests for the baseline enumeration algorithms (repro.baselines)."""

import pytest

from repro.core.errors import NotSequentialError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.builders import EVABuilder
from repro.baselines.naive import NaiveEnumerator, naive_evaluate
from repro.baselines.polydelay import PolynomialDelayEnumerator, polynomial_delay_evaluate
from repro.workloads.spanners import figure2_va, figure3_eva


class TestNaiveEnumerator:
    def test_matches_reference_on_figure3(self, fig3_eva):
        enumerator = NaiveEnumerator(fig3_eva)
        assert enumerator.evaluate("ab") == fig3_eva.evaluate("ab")
        assert enumerator.count("ab") == 3

    def test_matches_reference_on_figure2(self, fig2_va):
        enumerator = NaiveEnumerator(fig2_va)
        assert enumerator.evaluate("aa") == fig2_va.evaluate("aa")

    def test_enumerate_yields_each_output_once(self, fig3_eva):
        outputs = list(NaiveEnumerator(fig3_eva).enumerate("ab"))
        assert len(outputs) == len(set(outputs)) == 3

    def test_accessor_and_wrapper(self, fig2_va):
        enumerator = NaiveEnumerator(fig2_va)
        assert enumerator.automaton is fig2_va
        assert naive_evaluate(fig2_va, "a") == fig2_va.evaluate("a")

    def test_rejects_other_inputs(self):
        with pytest.raises(TypeError):
            NaiveEnumerator("not an automaton")


class TestPolynomialDelayEnumerator:
    def test_matches_reference_on_figure3(self, fig3_eva):
        enumerator = PolynomialDelayEnumerator(fig3_eva)
        for document in ["ab", "ba", "", "aabb", "abab"]:
            assert enumerator.evaluate(document) == fig3_eva.evaluate(document)

    def test_accepts_classic_va(self, fig2_va):
        enumerator = PolynomialDelayEnumerator(fig2_va)
        for document in ["", "a", "aa", "aaa"]:
            assert enumerator.evaluate(document) == fig2_va.evaluate(document)

    def test_no_duplicates(self, fig3_eva):
        outputs = list(PolynomialDelayEnumerator(fig3_eva).enumerate("ab"))
        assert len(outputs) == len(set(outputs))

    def test_count(self, fig3_eva):
        assert PolynomialDelayEnumerator(fig3_eva).count("ab") == 3

    def test_enumeration_is_lazy(self, fig3_eva):
        iterator = PolynomialDelayEnumerator(fig3_eva).enumerate("ab")
        assert isinstance(next(iterator), Mapping)

    def test_works_without_determinization(self):
        # A non-deterministic (but sequential) eVA: two runs through
        # different states produce the same mapping, which must still be
        # enumerated exactly once.
        eva = (
            EVABuilder()
            .initial(0)
            .final(3)
            .capture(0, ["x"], [], 1)
            .letter(1, "a", 2)
            .letter(1, "a", 4)
            .capture(2, [], ["x"], 3)
            .capture(4, [], ["x"], 3)
            .build()
        )
        assert not eva.is_deterministic()
        outputs = list(PolynomialDelayEnumerator(eva).enumerate("a"))
        assert outputs == [Mapping({"x": Span(0, 1)})]

    def test_sequentiality_check(self):
        eva = EVABuilder().initial(0).final(1).capture(0, ["x"], [], 1).build()
        with pytest.raises(NotSequentialError):
            PolynomialDelayEnumerator(eva, check_sequentiality=True)

    def test_empty_document(self, fig3_eva):
        assert PolynomialDelayEnumerator(fig3_eva).evaluate("") == set()

    def test_wrapper_function(self):
        assert polynomial_delay_evaluate(figure3_eva(), "ab") == figure3_eva().evaluate("ab")

    def test_automaton_without_initial(self):
        eva = EVABuilder().final(0).build()
        assert PolynomialDelayEnumerator(eva).evaluate("a") == set()


class TestBaselinesAgreeWithEachOther:
    def test_three_way_agreement(self):
        eva = figure3_eva()
        va = figure2_va()
        for automaton, documents in ((eva, ["ab", "aabb"]), (va, ["a", "aa"])):
            for document in documents:
                naive = naive_evaluate(automaton, document)
                poly = polynomial_delay_evaluate(automaton, document)
                assert naive == poly
