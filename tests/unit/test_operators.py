"""Unit tests for the physical arena operators (repro.runtime.operators)."""

import pickle

import pytest

from repro.core.errors import EvaluationError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.algebra.expressions import Atom
from repro.runtime.operators import (
    ArenaProject,
    FusedLeaf,
    HashJoin,
    MergeUnion,
    OperatorResult,
    hash_join_mappings,
    merge_union_mappings,
    project_arena,
    render_physical,
)

M = Mapping
S = Span


def leaf(pattern: str, alphabet="ab") -> FusedLeaf:
    return FusedLeaf(Atom(pattern)).prepare(frozenset(alphabet))


class TestMappingCombinators:
    def test_hash_join_on_shared_variable(self):
        left = [M({"x": S(0, 1), "y": S(1, 2)}), M({"x": S(2, 3)})]
        right = [M({"x": S(0, 1), "z": S(3, 4)})]
        assert hash_join_mappings(left, right) == [
            M({"x": S(0, 1), "y": S(1, 2), "z": S(3, 4)})
        ]

    def test_hash_join_without_shared_variables_is_cross_product(self):
        left = [M({"a": S(0, 1)}), M({"a": S(1, 2)})]
        right = [M({"b": S(2, 3)})]
        assert len(hash_join_mappings(left, right)) == 2

    def test_hash_join_empty_side(self):
        assert hash_join_mappings([], [M({"x": S(0, 1)})]) == []
        assert hash_join_mappings([M({"x": S(0, 1)})], []) == []

    def test_hash_join_deduplicates(self):
        left = [M({"x": S(0, 1)}), M({"x": S(0, 1), "y": S(0, 1)})]
        right = [M({"x": S(0, 1), "y": S(0, 1)})]
        joined = hash_join_mappings(left, right)
        assert joined == [M({"x": S(0, 1), "y": S(0, 1)})]

    def test_hash_join_partial_mappings_compatible_via_absent_variable(self):
        # The left mapping does not assign x, so it is compatible with both
        # right mappings even though they disagree on x.
        left = [M({"y": S(0, 1)})]
        right = [M({"x": S(0, 1)}), M({"x": S(1, 2)})]
        assert len(hash_join_mappings(left, right)) == 2

    def test_merge_union_dedups_across_operands(self):
        first = [M({"x": S(0, 1)}), M({"x": S(1, 2)})]
        second = [M({"x": S(1, 2)}), M({"x": S(2, 3)})]
        merged = merge_union_mappings([first, second])
        assert merged == [M({"x": S(0, 1)}), M({"x": S(1, 2)}), M({"x": S(2, 3)})]


class TestProjectArena:
    def test_projection_on_arena_skips_dropped_spans(self):
        result = leaf("x{a}y{b}").execute("ab")
        projected = set(project_arena(result, {"x"}))
        assert projected == {M({"x": S(0, 1)})}

    def test_projection_to_empty_keep_yields_empty_mapping(self):
        result = leaf("x{a}").execute("a")
        assert set(project_arena(result, set())) == {M({})}

    def test_projection_on_operator_result_restricts(self):
        result = OperatorResult([M({"x": S(0, 1), "y": S(1, 2)})], 2)
        assert set(project_arena(result, {"y"})) == {M({"y": S(1, 2)})}


class TestOperatorResult:
    def test_portable_round_trip(self):
        result = OperatorResult(
            [M({"x": S(0, 1)}), M({"x": S(1, 2), "y": S(0, 2)})], 5
        )
        rebuilt = OperatorResult.from_portable(result.to_portable())
        assert list(rebuilt) == list(result)
        assert rebuilt.document_length == 5
        assert rebuilt.count() == 2
        assert not rebuilt.is_empty()

    def test_empty_result(self):
        result = OperatorResult([], 3)
        assert result.is_empty() and result.count() == 0


class TestPhysicalTree:
    def test_fused_leaf_requires_prepare(self):
        unprepared = FusedLeaf(Atom("x{a}"))
        with pytest.raises(EvaluationError):
            unprepared.execute("a")

    def test_prepare_is_idempotent_per_alphabet(self):
        fused = FusedLeaf(Atom("x{a}"))
        fused.prepare(frozenset("ab"))
        runtime = fused.runtime
        fused.prepare(frozenset("ab"))
        assert fused.runtime is runtime
        fused.prepare(frozenset("abc"))
        assert fused.runtime is not runtime

    def test_hash_join_executes_on_shared_variable(self):
        join = HashJoin((leaf("x{a+}b*"), leaf("x{a+}y{b*}")))
        got = set(join.execute("aab"))
        assert got  # every x span must agree between the operands
        assert all(mapping["x"] == mapping["x"] and "y" in mapping for mapping in got)

    def test_hash_join_short_circuits_on_empty_operand(self):
        class Exploding(FusedLeaf):
            def execute(self, document):
                raise AssertionError("short-circuit failed: operand executed")

        empty = leaf("x{c}", alphabet="abc")  # never matches an "ab" document
        join = HashJoin((empty, Exploding(Atom("y{a}"))))
        assert join.execute("ab").is_empty()

    def test_merge_union_combines_operands(self):
        union = MergeUnion((leaf("x{a}b"), leaf("(a)x{b}")))
        assert set(union.execute("ab")) == {M({"x": S(0, 1)}), M({"x": S(1, 2)})}

    def test_arena_project_dedups(self):
        project = ArenaProject(leaf("x{a}y{.}", alphabet="ab"), ["x"])
        result = project.execute("ab")
        assert list(result) == [M({"x": S(0, 1)})]

    def test_operator_arity_validation(self):
        with pytest.raises(EvaluationError):
            HashJoin((leaf("x{a}"),))
        with pytest.raises(EvaluationError):
            MergeUnion((leaf("x{a}"),))

    def test_prepared_tree_pickles_and_executes(self):
        join = HashJoin((leaf("x{a+}b*"), leaf("x{a+}y{b*}")))
        clone = pickle.loads(pickle.dumps(join))
        assert set(clone.execute("aab")) == set(join.execute("aab"))

    def test_render_physical_shows_engines_and_reasons(self):
        join = HashJoin(
            (leaf("x{a+}b*"), leaf("x{a+}y{b*}")), reason="testing render"
        )
        text = render_physical(join)
        assert "hash-join (2-way)" in text
        assert "testing render" in text
        assert text.count("fused[") == 2

    def test_leaves_iterates_left_to_right(self):
        first, second = leaf("x{a}"), leaf("y{b}")
        join = HashJoin((first, second))
        assert list(join.leaves()) == [first, second]
