"""Unit tests for the run-length kernels (repro.runtime.runlength)."""

import pickle

import pytest

from repro.core.errors import EvaluationError
from repro.runtime.plan import KERNEL_CHOICES
from repro.runtime.runlength import (
    KERNELS,
    RUNLENGTH_MIN_CHARS,
    count_runlength,
    count_subset_runlength,
    count_subset_with_kernel,
    count_vectors_runlength,
    count_with_kernel,
    evaluate_arena_with_kernel,
    evaluate_runlength_arena,
    numpy_available,
    prefers_runlength,
    resolve_kernel,
    runlength_kernel,
    subset_runlength_kernel,
    summary_runlength,
    _mul_rows,
    _vec_rows,
)
from repro.runtime.engine import count_compiled, evaluate_compiled_arena
from repro.runtime.sharding import count_sharded, shard_summary
from repro.spanners.spanner import Spanner


PATTERN = ".*x{a+}.*"
DOCUMENT = "bbaaab" + "a" * 40 + "bb"


@pytest.fixture
def runtime():
    spanner = Spanner(PATTERN)
    yield spanner.runtime(DOCUMENT)
    spanner.close()


def arena_arrays(dag):
    return (
        list(dag.node_markers),
        list(dag.node_positions),
        list(dag.node_starts),
        list(dag.node_ends),
        list(dag.cell_nodes),
        list(dag.cell_nexts),
        list(dag.final_entries),
    )


class TestKernelConstruction:
    def test_kernel_axis_mirrors_plan_choices(self):
        # The tuple is duplicated on purpose (the strictly typed plan
        # module must not import the kernel layer); this pin keeps the
        # two from drifting.
        assert KERNELS == KERNEL_CHOICES

    def test_step_rows_match_brute_force(self, runtime):
        kernel = runlength_kernel(runtime)
        for cls in range(kernel.num_classes):
            for state in range(kernel.num_states):
                merged = {}
                for source, coeff in kernel.iv_rows[state]:
                    target = runtime.class_table[source][cls]
                    if target >= 0:
                        merged[target] = merged.get(target, 0) + coeff
                assert kernel.step_rows[cls][state] == tuple(
                    sorted(merged.items())
                )

    def test_iv_rows_are_identity_on_silent_states(self, runtime):
        kernel = runlength_kernel(runtime)
        for state in range(kernel.num_states):
            if runtime.silent[state]:
                assert kernel.iv_rows[state] == ((state, 1),)

    def test_bool_rows_are_step_row_supports(self, runtime):
        kernel = runlength_kernel(runtime)
        for cls in range(kernel.num_classes):
            for state in range(kernel.num_states):
                mask = 0
                for target, _coeff in kernel.step_rows[cls][state]:
                    mask |= 1 << target
                assert kernel.bool_rows[cls][state] == mask

    def test_count_kind_shortcuts_are_sound(self, runtime):
        kernel = runlength_kernel(runtime)
        for cls in range(kernel.num_classes):
            rows = kernel.step_rows[cls]
            kind = kernel.count_kind[cls]
            functional = all(
                len(row) <= 1 and all(c == 1 for _t, c in row) for row in rows
            )
            if kind == "functional":
                assert functional
            elif kind == "idempotent":
                assert _mul_rows(rows, rows) == rows
            else:
                assert kind == "general"
                assert not functional
                assert _mul_rows(rows, rows) != rows

    def test_capture_pattern_has_a_general_class(self, runtime):
        # The `a` class both opens and extends x{a+}: its count matrix
        # genuinely fans out, so exponentiation cannot be shortcut.
        kernel = runlength_kernel(runtime)
        assert "general" in kernel.count_kind

    def test_kernel_is_cached_on_the_automaton(self, runtime):
        assert runlength_kernel(runtime) is runlength_kernel(runtime)

    def test_pickling_drops_the_kernel(self, runtime):
        runlength_kernel(runtime)
        assert runtime._runlength is not None
        clone = pickle.loads(pickle.dumps(runtime))
        assert clone._runlength is None
        assert count_runlength(clone, DOCUMENT) == count_runlength(
            runtime, DOCUMENT
        )


class TestRunAlgebra:
    def test_vec_run_matches_repeated_application(self, runtime):
        kernel = runlength_kernel(runtime)
        for cls in range(kernel.num_classes):
            vector = {runtime.initial: 1}
            for k in range(0, 9):
                expected = {runtime.initial: 1}
                for _ in range(k):
                    expected = _vec_rows(expected, kernel.step_rows[cls])
                assert (
                    kernel.vec_run(vector, cls, k, use_numpy=False) == expected
                )

    def test_frontier_run_matches_stepping(self, runtime):
        kernel = runlength_kernel(runtime)
        for cls in range(kernel.num_classes):
            for state in range(kernel.num_states):
                mask = 1 << state
                for k in range(0, 9):
                    expected = 1 << state
                    for _ in range(k):
                        image = 0
                        m = expected
                        while m:
                            low = m & -m
                            image |= kernel.bool_rows[cls][
                                low.bit_length() - 1
                            ]
                            m &= m - 1
                        expected = image
                    assert kernel.frontier_run(mask, cls, k) == expected

    def test_sprint_path_matches_the_class_table_walk(self, runtime):
        kernel = runlength_kernel(runtime)
        for cls in range(kernel.num_classes):
            for state in range(kernel.num_states):
                if not runtime.silent[state]:
                    continue
                kind, seq, cycle = kernel.sprint_path(cls, state)
                assert seq[0] == state
                # Walk the table alongside the memoized trajectory.
                for i in range(1, len(seq)):
                    assert runtime.class_table[seq[i - 1]][cls] == seq[i]
                if kind == "dies":
                    assert runtime.class_table[seq[-1]][cls] < 0
                elif kind == "exits":
                    assert not runtime.silent[seq[-1]]
                    assert all(runtime.silent[s] for s in seq[:-1])
                else:
                    assert kind == "cycle"
                    assert runtime.class_table[seq[-1]][cls] == seq[cycle]
                    assert all(runtime.silent[s] for s in seq)

    def test_segment_rows_are_memoized(self, runtime):
        kernel = runlength_kernel(runtime)
        kernel._segment_rows.clear()
        encoded = runtime.encode("bbb")
        segment = bytes(encoded.buffer)
        first = kernel.segment_row(segment, runtime.initial)
        assert kernel.segment_row(segment, runtime.initial) == first
        assert len(kernel._segment_rows) == 1


class TestCounting:
    def test_count_matches_scalar(self, runtime):
        for document in ["", "a", "b", DOCUMENT, "a" * 200, "ab" * 50]:
            assert count_runlength(runtime, document) == count_compiled(
                runtime, document
            )

    def test_numpy_and_fallback_agree(self, runtime):
        for document in [DOCUMENT, "a" * 500]:
            plain = count_runlength(runtime, document, use_numpy=False)
            auto = count_runlength(runtime, document)
            assert plain == auto
            if numpy_available():
                assert (
                    count_runlength(runtime, document, use_numpy=True) == plain
                )

    @pytest.mark.skipif(numpy_available(), reason="numpy is importable")
    def test_forcing_numpy_without_numpy_raises(self, runtime):
        with pytest.raises(EvaluationError):
            count_runlength(runtime, DOCUMENT, use_numpy=True)

    def test_large_exact_count_beyond_int64(self):
        # ~2^line_count mappings: far past what int64 could hold, so the
        # magnitude guard must route the product to exact Python rows.
        spanner = Spanner(".*x{a+}.*")
        document = ("a" * 80 + "b") * 40
        runtime = spanner.runtime(document)
        try:
            assert count_runlength(runtime, document) == count_compiled(
                runtime, document
            )
        finally:
            spanner.close()

    def test_subset_count_matches_dense(self):
        spanner = Spanner(PATTERN)
        try:
            subset = spanner._otf_runtime_for_key(
                spanner._alphabet_key(DOCUMENT)
            )
            assert count_subset_runlength(subset, DOCUMENT) == count_compiled(
                spanner.runtime(DOCUMENT), DOCUMENT
            )
            assert subset_runlength_kernel(subset) is subset_runlength_kernel(
                subset
            )
        finally:
            spanner.close()


class TestArena:
    def test_arena_bit_identical_to_scalar(self, runtime):
        for document in ["", "a", DOCUMENT, "ab" * 30, "b" * 50 + "aaa"]:
            expected = arena_arrays(evaluate_compiled_arena(runtime, document))
            for fast_path in (True, False):
                actual = arena_arrays(
                    evaluate_runlength_arena(
                        runtime, document, fast_path=fast_path
                    )
                )
                assert actual == expected, (document, fast_path)


class TestShardingComposition:
    def test_summary_matches_scalar_summary(self, runtime):
        encoded = runtime.encode(DOCUMENT)
        for n in (0, 1, 7, encoded.length):
            assert summary_runlength(
                runtime, encoded.buffer, n
            ) == shard_summary(runtime, encoded.buffer, n)

    def test_count_vectors_apply_trailing_capture_once(self, runtime):
        encoded = runtime.encode(DOCUMENT)
        entries = list(range(runtime.num_states))
        without = count_vectors_runlength(
            runtime, encoded.buffer, entries, include_final=False
        )
        with_final = count_vectors_runlength(
            runtime, encoded.buffer, entries, include_final=True
        )
        kernel = runlength_kernel(runtime)
        for entry in entries:
            expected = {}
            for state, amount in without[entry].items():
                for target, coeff in kernel.iv_rows[state]:
                    expected[target] = expected.get(target, 0) + amount * coeff
            assert with_final[entry] == expected

    def test_sharded_count_with_runlength_kernel(self, runtime):
        expected = count_compiled(runtime, DOCUMENT)
        for shards in (1, 2, 3, 7):
            assert (
                count_sharded(
                    runtime, DOCUMENT, shards=shards, kernel="runlength"
                )
                == expected
            )


class TestDispatch:
    def test_prefers_runlength_needs_long_runs_and_a_long_document(self):
        spanner = Spanner(PATTERN)
        try:
            runtime = spanner.runtime("ab")
            short = runtime.encode("ab" * 8)
            assert not prefers_runlength(short)
            choppy = runtime.encode("ab" * RUNLENGTH_MIN_CHARS)
            assert not prefers_runlength(choppy)
            runny = runtime.encode("a" * 64 * RUNLENGTH_MIN_CHARS)
            assert prefers_runlength(runny)
            assert resolve_kernel("auto", short) == "scalar"
            assert resolve_kernel("auto", runny) == "runlength"
            assert resolve_kernel("scalar", runny) == "scalar"
            assert resolve_kernel("runlength", short) == "runlength"
            with pytest.raises(EvaluationError):
                resolve_kernel("bogus", short)
        finally:
            spanner.close()

    def test_dispatchers_agree_across_kernels(self, runtime):
        expected = count_compiled(runtime, DOCUMENT)
        arena = arena_arrays(evaluate_compiled_arena(runtime, DOCUMENT))
        for kernel in KERNELS:
            assert (
                count_with_kernel(runtime, DOCUMENT, kernel=kernel) == expected
            )
            assert (
                arena_arrays(
                    evaluate_arena_with_kernel(
                        runtime, DOCUMENT, kernel=kernel
                    )
                )
                == arena
            )

    def test_subset_dispatcher_agrees(self):
        spanner = Spanner(PATTERN)
        try:
            subset = spanner._otf_runtime_for_key(
                spanner._alphabet_key(DOCUMENT)
            )
            expected = count_compiled(spanner.runtime(DOCUMENT), DOCUMENT)
            for kernel in KERNELS:
                assert (
                    count_subset_with_kernel(subset, DOCUMENT, kernel=kernel)
                    == expected
                )
        finally:
            spanner.close()
