"""Unit tests for repro.automata.eva (extended variable-set automata)."""

import pytest

from repro.core.errors import CompilationError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.builders import EVABuilder, marker_set
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet, open_


def simple_eva() -> ExtendedVA:
    """Captures the whole document into x over alphabet {a}."""
    return (
        EVABuilder()
        .initial(0)
        .final(3)
        .capture(0, ["x"], [], 1)
        .letter(1, "a", 1)
        .capture(1, [], ["x"], 3)
        .build()
    )


class TestConstruction:
    def test_sizes(self, fig3_eva):
        assert fig3_eva.num_states == 10
        assert fig3_eva.num_variable_transitions == 7
        assert fig3_eva.variables() == frozenset({"x", "y"})
        assert fig3_eva.alphabet() == frozenset({"a", "b"})

    def test_empty_marker_set_rejected(self):
        eva = ExtendedVA()
        with pytest.raises(CompilationError):
            eva.add_variable_transition(0, MarkerSet(), 1)

    def test_letter_transition_single_char(self):
        eva = ExtendedVA()
        with pytest.raises(CompilationError):
            eva.add_letter_transition(0, "ab", 1)

    def test_accessors(self, fig3_eva):
        assert fig3_eva.letter_targets("q1", "a") == frozenset({"q4"})
        assert fig3_eva.variable_targets("q0", marker_set(["x"], [])) == frozenset({"q1"})
        assert set(fig3_eva.marker_sets_from("q0")) == {
            marker_set(["x"], []),
            marker_set(["y"], []),
            marker_set(["x", "y"], []),
        }

    def test_missing_initial_raises(self):
        with pytest.raises(CompilationError):
            ExtendedVA().initial


class TestDeterminism:
    def test_figure3_is_deterministic(self, fig3_eva):
        assert fig3_eva.is_deterministic()

    def test_duplicate_letter_target_breaks_determinism(self, fig3_eva):
        copy = fig3_eva.copy()
        copy.add_letter_transition("q1", "a", "q5")
        assert not copy.is_deterministic()

    def test_duplicate_marker_target_breaks_determinism(self, fig3_eva):
        copy = fig3_eva.copy()
        copy.add_variable_transition("q0", marker_set(["x"], []), "q2")
        assert not copy.is_deterministic()

    def test_deterministic_successors(self, fig3_eva):
        assert fig3_eva.deterministic_letter_successor("q1", "a") == "q4"
        assert fig3_eva.deterministic_letter_successor("q1", "b") is None
        assert (
            fig3_eva.deterministic_variable_successor("q0", marker_set(["x"], []))
            == "q1"
        )

    def test_deterministic_successor_raises_on_ambiguity(self, fig3_eva):
        copy = fig3_eva.copy()
        copy.add_letter_transition("q1", "a", "q5")
        with pytest.raises(CompilationError):
            copy.deterministic_letter_successor("q1", "a")


class TestSemantics:
    def test_figure3_on_ab(self, fig3_eva):
        expected = {
            Mapping({"x": Span(0, 2), "y": Span(1, 2)}),
            Mapping({"x": Span(1, 2), "y": Span(0, 2)}),
            Mapping({"x": Span(0, 2), "y": Span(0, 2)}),
        }
        assert fig3_eva.evaluate("ab") == expected

    def test_figure3_on_ba_uses_only_the_self_loop_branch(self, fig3_eva):
        # On "ba" only the q3 branch applies: x and y both span the whole
        # document.
        assert fig3_eva.evaluate("ba") == {
            Mapping({"x": Span(0, 2), "y": Span(0, 2)})
        }

    def test_figure3_rejects_the_empty_document(self, fig3_eva):
        assert fig3_eva.evaluate("") == set()

    def test_simple_eva_whole_document_capture(self):
        eva = simple_eva()
        assert eva.evaluate("aaa") == {Mapping({"x": Span(0, 3)})}
        # On the empty document the run may take only a single variable
        # transition (alternation), so x cannot be both opened and closed.
        assert eva.evaluate("") == set()

    def test_runs_expose_states_and_steps(self, fig3_eva):
        runs = list(fig3_eva.runs("ab"))
        assert len(runs) == 3
        assert all(run.states[0] == "q0" for run in runs)
        assert all(run.states[-1] == "q9" for run in runs)

    def test_empty_marker_skip_allowed(self):
        # An automaton that reads 'a' without any variable transition.
        eva = EVABuilder().initial(0).final(1).letter(0, "a", 1).build()
        assert eva.evaluate("a") == {Mapping.EMPTY}

    def test_open_and_close_in_same_set_empty_span(self):
        eva = (
            EVABuilder()
            .initial(0)
            .final(1)
            .capture(0, ["x"], ["x"], 1)
            .build()
        )
        assert eva.evaluate("") == {Mapping({"x": Span(0, 0)})}

    def test_invalid_marker_reuse_rejected(self):
        eva = (
            EVABuilder()
            .initial(0)
            .final(3)
            .capture(0, ["x"], [], 1)
            .letter(1, "a", 2)
            .capture(2, [], ["x"], 3)
            .letter(3, "a", 1)
            .build()
        )
        # One capture of x per document is possible; looping back would
        # have to reuse the ⊣x marker, which makes the run invalid.
        assert eva.evaluate("a") == {Mapping({"x": Span(0, 1)})}
        assert eva.evaluate("aa") == set()


class TestStructuralHelpers:
    def test_copy_and_rename(self, fig3_eva):
        renamed = fig3_eva.rename_states()
        assert renamed.evaluate("ab") == fig3_eva.evaluate("ab")
        assert renamed.num_states == fig3_eva.num_states

    def test_sequential_and_functional(self, fig3_eva):
        assert fig3_eva.is_sequential()
        assert fig3_eva.is_functional()

    def test_to_dot(self, fig3_eva):
        assert "digraph" in fig3_eva.to_dot()

    def test_repr(self, fig3_eva):
        assert "ExtendedVA" in repr(fig3_eva)

    def test_open_helper(self):
        assert open_("x").is_open
