"""Unit tests for the fault-tolerance layer (repro.runtime.resilience).

The process-level behaviour (real worker kills, pool rebuilds, inline
demotion) lives in tests/chaos/; these tests pin the pure pieces — the
retry schedule, the resource guards, the failure report schema, the
fault-plan parser and arrival counters, and deadline supervision over a
fake result handle.
"""

import multiprocessing
import random

import pytest

from repro.core.errors import (
    EvaluationError,
    ReproError,
    ResourceLimitError,
    TaskDeadlineError,
    WorkerCrashError,
)
from repro.runtime.resilience import (
    RESILIENCE_METRICS,
    FailureReport,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResourceBudget,
    RetryPolicy,
    install_fault_plan,
    clear_fault_plan,
    maybe_fault,
    resilience_metrics_snapshot,
    supervised_get,
)


class TestErrorTaxonomy:
    def test_typed_errors_are_repro_errors(self):
        assert issubclass(ResourceLimitError, EvaluationError)
        assert issubclass(WorkerCrashError, EvaluationError)
        # A deadline miss is indistinguishable from a dead worker, so
        # callers catching crashes catch deadlines too.
        assert issubclass(TaskDeadlineError, WorkerCrashError)

    def test_injected_fault_is_not_a_repro_error(self):
        # Injected faults model *transient* infrastructure failure: the
        # supervisors must retry them, and ReproError is exactly the
        # never-retry (deterministic) subtree.
        assert not issubclass(InjectedFault, ReproError)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_delay_doubles_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        rng = policy.rng()
        delays = [policy.delay(attempt, rng) for attempt in (1, 2, 3, 4, 5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.4, 0.4])

    def test_seeded_jitter_is_reproducible(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=42)
        first = [policy.delay(k, policy.rng()) for k in (1, 2, 3)]
        second = [policy.delay(k, policy.rng()) for k in (1, 2, 3)]
        assert first == second
        base = RetryPolicy(base_delay=0.1, jitter=0.0).delay(1, random.Random())
        assert first[0] >= base

    def test_rejects_non_positive_attempt(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(0, random.Random())


class TestResourceBudget:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_document_chars"):
            ResourceBudget(max_document_chars=0)
        with pytest.raises(ValueError, match="max_arena_cells"):
            ResourceBudget(max_arena_cells=-1)

    def test_document_guard(self):
        budget = ResourceBudget(max_document_chars=5)
        budget.check_document("12345")  # at the cap: fine
        with pytest.raises(ResourceLimitError, match="6 characters"):
            budget.check_document("123456")

    def test_result_guard_reads_cell_nodes(self):
        class FakeArena:
            cell_nodes = [0] * 10

        ResourceBudget(max_arena_cells=10).check_result(FakeArena())
        with pytest.raises(ResourceLimitError, match="10 list cells"):
            ResourceBudget(max_arena_cells=9).check_result(FakeArena())

    def test_results_without_an_arena_pass(self):
        ResourceBudget(max_arena_cells=1).check_result(object())

    def test_trips_are_counted(self):
        before = resilience_metrics_snapshot()["resource_limit_trips"]
        with pytest.raises(ResourceLimitError):
            ResourceBudget(max_document_chars=1).check_document("xx")
        after = resilience_metrics_snapshot()["resource_limit_trips"]
        assert after == before + 1


class TestFailureReport:
    def test_schema(self):
        report = FailureReport()
        assert len(report) == 0
        report.quarantine("doc-7", "guard", ResourceLimitError("too big"))
        report.task_retried()
        report.pool_rebuilt()
        report.inline_fallback()
        payload = report.as_dict()
        assert payload["quarantined"] == [
            {
                "doc_id": "doc-7",
                "stage": "guard",
                "error_type": "ResourceLimitError",
                "message": "too big",
                "attempts": 1,
            }
        ]
        assert payload["counters"] == {
            "tasks_retried": 1,
            "worker_crashes": 0,
            "deadlines_exceeded": 0,
            "pool_rebuilds": 1,
            "inline_fallbacks": 1,
            "documents_quarantined": 1,
        }
        assert len(report) == 1
        assert report.quarantined[0].doc_id == "doc-7"

    def test_quarantine_mirrors_into_process_metrics(self):
        before = resilience_metrics_snapshot()["documents_quarantined"]
        FailureReport().quarantine("d", "evaluate", RuntimeError("x"))
        after = resilience_metrics_snapshot()["documents_quarantined"]
        assert after == before + 1


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nope", action="raise")
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="task", action="explode")
        with pytest.raises(ValueError, match="nth"):
            FaultSpec(site="task", action="raise", nth=0)
        with pytest.raises(ValueError, match="count"):
            FaultSpec(site="task", action="raise", count=0)

    def test_from_json_accepts_object_or_list(self):
        single = FaultPlan.from_json('{"site": "task", "action": "raise"}')
        assert len(single.specs) == 1
        many = FaultPlan.from_json(
            '[{"site": "task", "action": "raise"},'
            ' {"site": "evaluate", "action": "delay", "seconds": 0.01}]'
        )
        assert [spec.site for spec in many.specs] == ["task", "evaluate"]

    @pytest.mark.parametrize(
        "text, match",
        [
            ("nonsense", "not valid JSON"),
            ('"task"', "must be a JSON list"),
            ("[42]", "fault #0 must be an object"),
            ('[{"site": "task", "action": "raise", "when": 3}]', "unknown keys"),
            ('[{"action": "raise"}]', "fault #0"),
            ('[{"site": "bad", "action": "raise"}]', "unknown fault site"),
        ],
    )
    def test_from_json_rejects_malformed_plans(self, text, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.from_json(text)

    def test_arrival_window_fires_deterministically(self):
        plan = FaultPlan([FaultSpec(site="task", action="raise", nth=2, count=2)])
        plan.fire("task")  # arrival 1: below the window
        for _ in range(2):  # arrivals 2 and 3: inside it
            with pytest.raises(InjectedFault, match="site 'task'"):
                plan.fire("task")
        plan.fire("task")  # arrival 4: past it
        assert plan.arrivals("task") == 4
        assert plan.arrivals("evaluate") == 0

    def test_sites_count_independently(self):
        plan = FaultPlan([FaultSpec(site="evaluate", action="raise", nth=1)])
        plan.fire("task")
        with pytest.raises(InjectedFault):
            plan.fire("evaluate")

    def test_delay_action_sleeps_without_raising(self):
        plan = FaultPlan(
            [FaultSpec(site="task", action="delay", nth=1, seconds=0.0)]
        )
        plan.fire("task")  # must simply return

    def test_hook_is_inert_without_an_installed_plan(self):
        clear_fault_plan()
        maybe_fault("task")  # no plan: no-op

    def test_install_and_clear(self):
        plan = FaultPlan([FaultSpec(site="task", action="raise", nth=1)])
        install_fault_plan(plan)
        try:
            with pytest.raises(InjectedFault):
                maybe_fault("task")
        finally:
            clear_fault_plan()
        maybe_fault("task")


class _FakeHandle:
    """An AsyncResult standing in for a task that never completes."""

    def __init__(self, results=()):
        self._results = list(results)

    def get(self, timeout=None):
        if self._results:
            return self._results.pop(0)
        raise multiprocessing.TimeoutError


class TestSupervisedGet:
    def test_returns_a_ready_result(self):
        assert supervised_get(_FakeHandle(["ok"]), deadline=None) == "ok"

    def test_deadline_miss_is_typed_and_counted(self):
        report = FailureReport()
        before = resilience_metrics_snapshot()["deadlines_exceeded"]
        with pytest.raises(TaskDeadlineError, match="deadline"):
            supervised_get(
                _FakeHandle(), deadline=0.05, report=report, poll=0.01
            )
        assert resilience_metrics_snapshot()["deadlines_exceeded"] == before + 1
        assert report.as_dict()["counters"]["deadlines_exceeded"] == 1

    def test_no_deadline_keeps_polling(self):
        class Eventually:
            calls = 0

            def get(self, timeout=None):
                Eventually.calls += 1
                if Eventually.calls < 3:
                    raise multiprocessing.TimeoutError
                return "late"

        assert supervised_get(Eventually(), deadline=None, poll=0.001) == "late"


class TestMetricsSnapshot:
    def test_snapshot_keys_and_reset(self):
        snapshot = RESILIENCE_METRICS.snapshot()
        assert set(snapshot) == {
            "tasks_retried",
            "worker_crashes",
            "deadlines_exceeded",
            "pool_rebuilds",
            "inline_fallbacks",
            "documents_quarantined",
            "resource_limit_trips",
        }
        RESILIENCE_METRICS.task_retried()
        assert RESILIENCE_METRICS.snapshot()["tasks_retried"] >= 1
        RESILIENCE_METRICS.reset()
        assert all(value == 0 for value in RESILIENCE_METRICS.snapshot().values())
