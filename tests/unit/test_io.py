"""Unit tests for repro.io.serialization."""

import json

import pytest

from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.transforms import to_deterministic_sequential_eva
from repro.io.serialization import (
    SerializationError,
    eva_from_dict,
    eva_to_dict,
    expression_from_dict,
    expression_to_dict,
    load_automaton,
    mapping_to_dict,
    save_automaton,
    va_from_dict,
    va_to_dict,
)
from repro.workloads.spanners import contact_expression, figure2_va, figure3_eva


class TestVaSerialization:
    def test_round_trip_preserves_semantics(self):
        va = figure2_va()
        rebuilt = va_from_dict(va_to_dict(va))
        for document in ["", "a", "aa"]:
            assert rebuilt.evaluate(document) == va.evaluate(document)

    def test_dict_is_json_compatible(self):
        payload = va_to_dict(figure2_va())
        assert json.loads(json.dumps(payload)) == payload

    def test_kind_mismatch_rejected(self):
        with pytest.raises(SerializationError):
            va_from_dict({"kind": "eva", "initial": 0})

    def test_unserializable_states_rejected(self):
        va = figure2_va().rename_states({state: (state,) for state in figure2_va().states})
        with pytest.raises(SerializationError):
            va_to_dict(va)


class TestEvaSerialization:
    def test_round_trip_preserves_semantics(self):
        eva = figure3_eva()
        rebuilt = eva_from_dict(eva_to_dict(eva))
        for document in ["ab", "ba", "aabb"]:
            assert rebuilt.evaluate(document) == eva.evaluate(document)

    def test_round_trip_of_compiled_automaton(self):
        compiled = to_deterministic_sequential_eva(figure2_va())
        rebuilt = eva_from_dict(eva_to_dict(compiled))
        assert rebuilt.is_deterministic()
        assert rebuilt.evaluate("aa") == compiled.evaluate("aa")

    def test_kind_mismatch_rejected(self):
        with pytest.raises(SerializationError):
            eva_from_dict({"kind": "va", "initial": 0})

    def test_malformed_marker_rejected(self):
        payload = eva_to_dict(figure3_eva())
        payload["variable_transitions"][0][1] = [["x", "sideways"]]
        with pytest.raises(SerializationError):
            eva_from_dict(payload)


class TestFiles:
    def test_save_and_load_eva(self, tmp_path):
        path = tmp_path / "automaton.json"
        save_automaton(figure3_eva(), path)
        loaded = load_automaton(path)
        assert loaded.evaluate("ab") == figure3_eva().evaluate("ab")

    def test_save_and_load_va(self, tmp_path):
        path = tmp_path / "automaton.json"
        save_automaton(figure2_va(), path)
        loaded = load_automaton(path)
        assert loaded.evaluate("a") == figure2_va().evaluate("a")

    def test_save_rejects_other_objects(self, tmp_path):
        with pytest.raises(SerializationError):
            save_automaton("not an automaton", tmp_path / "x.json")

    def test_load_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "mystery"}', encoding="utf-8")
        with pytest.raises(SerializationError):
            load_automaton(path)


class TestExpressionSerialization:
    def test_regex_atom_round_trip_is_exact(self):
        from repro.algebra.expressions import Atom

        atom = Atom("x{a+}(b|c)*")
        rebuilt = expression_from_dict(expression_to_dict(atom))
        assert rebuilt.source == atom.source

    def test_full_tree_round_trip_preserves_semantics(self):
        from repro.algebra.compile import evaluate_expression_setwise

        expression = contact_expression()
        payload = expression_to_dict(expression)
        rebuilt = expression_from_dict(json.loads(json.dumps(payload)))
        document = "John <j@g.be>"
        assert evaluate_expression_setwise(
            rebuilt, document
        ) == evaluate_expression_setwise(expression, document)

    def test_automaton_atoms_round_trip(self):
        from repro.algebra.expressions import Atom

        for source in (figure2_va(), figure3_eva()):
            rebuilt = expression_from_dict(expression_to_dict(Atom(source)))
            assert set(rebuilt.source.evaluate("ab")) == set(source.evaluate("ab"))

    def test_operator_structure_survives(self):
        from repro.algebra.expressions import Atom, Join, Projection, UnionExpr

        expression = Projection(
            Join(Atom("x{a}"), UnionExpr(Atom("y{b}"), Atom("y{a}"))), ["x", "y"]
        )
        rebuilt = expression_from_dict(expression_to_dict(expression))
        assert isinstance(rebuilt, Projection)
        assert rebuilt.keep == frozenset({"x", "y"})
        assert isinstance(rebuilt.child, Join)
        assert isinstance(rebuilt.child.right, UnionExpr)

    def test_malformed_payloads_rejected(self):
        with pytest.raises(SerializationError):
            expression_from_dict({"kind": "automaton"})
        with pytest.raises(SerializationError):
            expression_from_dict({"kind": "expression", "op": "negate"})
        with pytest.raises(SerializationError):
            expression_to_dict("not an expression")


class TestMappingSerialization:
    def test_spans_only(self):
        mapping = Mapping({"x": Span(0, 4)})
        assert mapping_to_dict(mapping) == {"x": {"begin": 0, "end": 4}}

    def test_with_document_text(self):
        mapping = Mapping({"x": Span(0, 4)})
        assert mapping_to_dict(mapping, "John Doe") == {
            "x": {"begin": 0, "end": 4, "text": "John"}
        }

    def test_empty_mapping(self):
        assert mapping_to_dict(Mapping.EMPTY) == {}
