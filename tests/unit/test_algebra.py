"""Unit tests for the spanner algebra (repro.algebra)."""

import pytest

from repro.core.errors import CompilationError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.transforms import to_deterministic_sequential_eva, va_to_eva
from repro.algebra.automaton_ops import (
    join_eva,
    project_eva,
    union_deterministic_eva,
    union_eva,
)
from repro.algebra.compile import compile_expression, evaluate_expression_setwise
from repro.algebra.expressions import Atom, Join, Projection, UnionExpr
from repro.algebra.operators import (
    join_mapping_sets,
    project_mapping_set,
    union_mapping_sets,
)
from repro.regex.compiler import compile_to_va


def eva_of(pattern: str, alphabet=None):
    """Compile a regex formula into an extended VA."""
    return va_to_eva(compile_to_va(pattern, alphabet))


M = Mapping
S = Span


class TestSetOperators:
    def test_join_on_shared_variable(self):
        left = {M({"x": S(0, 1), "y": S(1, 2)}), M({"x": S(2, 3)})}
        right = {M({"x": S(0, 1), "z": S(3, 4)})}
        assert join_mapping_sets(left, right) == {
            M({"x": S(0, 1), "y": S(1, 2), "z": S(3, 4)})
        }

    def test_join_without_shared_variables_is_cross_product(self):
        left = {M({"a": S(0, 1)}), M({"a": S(1, 2)})}
        right = {M({"b": S(2, 3)})}
        assert len(join_mapping_sets(left, right)) == 2

    def test_join_with_empty_side(self):
        assert join_mapping_sets(set(), {M({"x": S(0, 1)})}) == set()
        assert join_mapping_sets({M({"x": S(0, 1)})}, set()) == set()

    def test_join_incompatible(self):
        left = {M({"x": S(0, 1)})}
        right = {M({"x": S(1, 2)})}
        assert join_mapping_sets(left, right) == set()

    def test_join_partial_mappings(self):
        # The paper's mapping semantics: variables may be absent; absent
        # variables never conflict.
        left = {M({"x": S(0, 1)}), M.EMPTY}
        right = {M({"y": S(1, 2)})}
        result = join_mapping_sets(left, right)
        assert M({"x": S(0, 1), "y": S(1, 2)}) in result
        assert M({"y": S(1, 2)}) in result

    def test_union(self):
        left = {M({"x": S(0, 1)})}
        right = {M({"y": S(1, 2)})}
        assert union_mapping_sets(left, right) == left | right

    def test_projection(self):
        mappings = {M({"x": S(0, 1), "y": S(1, 2)}), M({"x": S(2, 3)})}
        assert project_mapping_set(mappings, ["x"]) == {
            M({"x": S(0, 1)}),
            M({"x": S(2, 3)}),
        }

    def test_projection_can_merge_mappings(self):
        mappings = {M({"x": S(0, 1), "y": S(1, 2)}), M({"x": S(0, 1), "y": S(2, 3)})}
        assert len(project_mapping_set(mappings, ["x"])) == 1


class TestExpressions:
    def test_atom_from_string(self):
        atom = Atom("x{a}")
        assert atom.variables() == frozenset({"x"})
        assert atom.operator_count() == 0

    def test_expression_builders_and_sugar(self):
        left = Atom("x{a}")
        right = Atom("y{b}")
        assert isinstance(left.union(right), UnionExpr)
        assert isinstance(left | right, UnionExpr)
        assert isinstance(left & right, Join)
        assert isinstance(left.project(["x"]), Projection)

    def test_variables_propagate(self):
        expression = (Atom("x{a}") & Atom("y{b}")).project(["x"])
        assert expression.variables() == frozenset({"x"})

    def test_operator_count_and_size(self):
        expression = (Atom("x{a}") & Atom("y{b}")).project(["x"])
        assert expression.operator_count() == 2
        assert expression.size() > 2
        assert len(expression.atoms()) == 2

    def test_invalid_atom(self):
        with pytest.raises(CompilationError):
            Atom(123)

    def test_repr(self):
        assert "Join" in repr(Atom("a") & Atom("b"))


class TestAutomatonOperators:
    def test_union_matches_set_semantics(self):
        left = eva_of("x{a}b")
        right = eva_of("a(x{b})")
        union = union_eva(left, right)
        for document in ["ab", "a", "b", "ba"]:
            assert union.evaluate(document) == union_mapping_sets(
                left.evaluate(document), right.evaluate(document)
            )

    def test_union_size_is_linear(self):
        left = eva_of("x{a}b")
        right = eva_of("a(x{b})")
        union = union_eva(left, right)
        assert union.num_states <= left.num_states + right.num_states + 1

    def test_deterministic_union_matches_set_semantics(self):
        left = to_deterministic_sequential_eva(eva_of("x{a}b"))
        right = to_deterministic_sequential_eva(eva_of("a(x{b})"))
        union = union_deterministic_eva(left, right)
        assert union.is_deterministic()
        for document in ["ab", "a", "b", "ba", "abab"]:
            assert union.evaluate(document) == union_mapping_sets(
                left.evaluate(document), right.evaluate(document)
            )

    def test_join_matches_set_semantics_functional(self):
        # Two functional spanners over the same document sharing variable x.
        left = eva_of("x{a+}b*")
        right = eva_of("x{a+}y{b*}")
        joined = join_eva(left, right)
        for document in ["ab", "aab", "a", "abb"]:
            assert joined.evaluate(document) == join_mapping_sets(
                left.evaluate(document), right.evaluate(document)
            )

    def test_join_without_shared_variables(self):
        left = eva_of("x{a}b")
        right = eva_of("a(y{b})")
        joined = join_eva(left, right)
        assert joined.evaluate("ab") == join_mapping_sets(
            left.evaluate("ab"), right.evaluate("ab")
        )

    def test_join_size_bound(self):
        left = eva_of("x{a}b")
        right = eva_of("a(y{b})")
        joined = join_eva(left, right)
        assert joined.num_states <= left.num_states * right.num_states

    def test_projection_matches_set_semantics(self):
        automaton = eva_of("x{a+}y{b+}")
        projected = project_eva(automaton, ["x"])
        for document in ["ab", "aab", "abb", ""]:
            assert projected.evaluate(document) == project_mapping_set(
                automaton.evaluate(document), ["x"]
            )

    def test_projection_onto_empty_set(self):
        automaton = eva_of("x{a}")
        projected = project_eva(automaton, [])
        assert projected.evaluate("a") == {Mapping.EMPTY}
        assert projected.variables() == frozenset()

    def test_projection_keeps_functionality(self):
        automaton = eva_of("x{a+}y{b+}")
        projected = project_eva(automaton, ["y"])
        assert projected.is_functional()

    def test_operators_require_initial_states(self):
        from repro.automata.eva import ExtendedVA

        with pytest.raises(CompilationError):
            union_eva(ExtendedVA(), eva_of("a"))
        with pytest.raises(CompilationError):
            join_eva(ExtendedVA(), eva_of("a"))
        with pytest.raises(CompilationError):
            project_eva(ExtendedVA(), ["x"])


class TestCompileExpression:
    def test_compile_matches_setwise_evaluation(self):
        expression = (Atom("x{a+}b*") & Atom("x{a+}y{b*}")).project(["y"])
        for document in ["ab", "aab", "abb"]:
            compiled = compile_expression(expression, frozenset(document))
            determinized = to_deterministic_sequential_eva(compiled)
            from repro.enumeration.evaluate import evaluate

            constant_delay = set(evaluate(determinized, document))
            assert constant_delay == evaluate_expression_setwise(expression, document)

    def test_union_expression(self):
        expression = Atom("x{a}b") | Atom("a(x{b})")
        compiled = compile_expression(expression)
        assert compiled.evaluate("ab") == evaluate_expression_setwise(expression, "ab")

    def test_functional_join_check(self):
        # "x{a}?b" is not functional (x optional), so the guarded join
        # construction must refuse it.
        expression = Atom("x{a}?b") & Atom("y{b}")
        with pytest.raises(CompilationError):
            compile_expression(expression, check_functional_joins=True)

    def test_functional_join_check_passes_for_functional(self):
        expression = Atom("x{a}b") & Atom("a(y{b})")
        compiled = compile_expression(expression, check_functional_joins=True)
        assert compiled.variables() == frozenset({"x", "y"})

    def test_unsupported_expression(self):
        with pytest.raises(CompilationError):
            compile_expression("not an expression")
