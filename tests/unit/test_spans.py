"""Unit tests for repro.core.spans."""

import pytest

from repro.core.errors import SpanError
from repro.core.spans import Span


class TestConstruction:
    def test_valid_span(self):
        span = Span(2, 5)
        assert span.begin == 2
        assert span.end == 5
        assert len(span) == 3

    def test_empty_span(self):
        span = Span(3, 3)
        assert span.is_empty
        assert len(span) == 0

    def test_negative_begin_rejected(self):
        with pytest.raises(SpanError):
            Span(-1, 2)

    def test_end_before_begin_rejected(self):
        with pytest.raises(SpanError):
            Span(5, 2)

    def test_non_integer_rejected(self):
        with pytest.raises(SpanError):
            Span(0.5, 2)

    def test_zero_length_at_origin(self):
        assert Span(0, 0).is_empty


class TestContent:
    def test_content_of_string(self):
        assert Span(0, 4).content("John and Jane") == "John"

    def test_content_of_document_like(self):
        class Doc:
            text = "hello"

        assert Span(1, 3).content(Doc()) == "el"

    def test_content_empty_span(self):
        assert Span(2, 2).content("abc") == ""

    def test_content_beyond_document_raises(self):
        with pytest.raises(SpanError):
            Span(0, 10).content("abc")

    def test_fits(self):
        assert Span(0, 3).fits("abc")
        assert not Span(0, 4).fits("abc")


class TestRelations:
    def test_concatenate_adjacent(self):
        assert Span(0, 2).concatenate(Span(2, 5)) == Span(0, 5)

    def test_concatenate_non_adjacent_raises(self):
        with pytest.raises(SpanError):
            Span(0, 2).concatenate(Span(3, 5))

    def test_contains(self):
        assert Span(0, 10).contains(Span(3, 5))
        assert not Span(3, 5).contains(Span(0, 10))
        assert Span(3, 5).contains(Span(3, 5))

    def test_overlaps(self):
        assert Span(0, 5).overlaps(Span(4, 8))
        assert not Span(0, 4).overlaps(Span(4, 8))

    def test_precedes(self):
        assert Span(0, 4).precedes(Span(4, 8))
        assert not Span(0, 5).precedes(Span(4, 8))

    def test_shift(self):
        assert Span(1, 3).shift(10) == Span(11, 13)


class TestConversions:
    def test_paper_round_trip(self):
        span = Span.from_paper(1, 5)
        assert span == Span(0, 4)
        assert span.to_paper() == (1, 5)

    def test_paper_notation(self):
        assert Span(0, 4).paper_notation() == "[1, 5⟩"

    def test_from_paper_invalid(self):
        with pytest.raises(SpanError):
            Span.from_paper(0, 3)

    def test_as_slice(self):
        assert "abcdef"[Span(1, 4).as_slice()] == "bcd"

    def test_positions(self):
        assert list(Span(2, 5).positions()) == [2, 3, 4]

    def test_unpacking(self):
        begin, end = Span(3, 7)
        assert (begin, end) == (3, 7)


class TestOrderingAndHashing:
    def test_equality(self):
        assert Span(1, 2) == Span(1, 2)
        assert Span(1, 2) != Span(1, 3)
        assert Span(1, 2) != "not a span"

    def test_total_order(self):
        assert Span(0, 5) < Span(1, 2)
        assert Span(1, 2) < Span(1, 3)
        assert Span(1, 3) <= Span(1, 3)
        assert Span(2, 3) > Span(1, 9)
        assert Span(2, 3) >= Span(2, 3)

    def test_hashable(self):
        assert len({Span(0, 1), Span(0, 1), Span(1, 2)}) == 2

    def test_sorting(self):
        spans = [Span(2, 3), Span(0, 5), Span(0, 2)]
        assert sorted(spans) == [Span(0, 2), Span(0, 5), Span(2, 3)]

    def test_repr(self):
        assert repr(Span(1, 4)) == "Span(1, 4)"
