"""Unit tests for the ExecutionPlan layer: planner, subset runtime, LRU cache."""

import pytest

from repro.automata import transforms
from repro.automata.analysis import statistics
from repro.automata.transforms import va_to_eva
from repro.core.documents import DocumentCollection
from repro.regex.compiler import compile_to_va
from repro.regex.parser import parse_regex
from repro.runtime.plan import (
    ENGINE_CHOICES,
    KERNEL_CHOICES,
    ExecutionPlan,
    choose_plan,
)
from repro.runtime.subset import CompiledSubsetEVA, count_subset, evaluate_subset_arena
from repro.spanners.spanner import Spanner
from repro.workloads.spanners import figure3_eva


def sequential_eva(pattern: str, alphabet: str = "ab"):
    return va_to_eva(compile_to_va(parse_regex(pattern), alphabet))


def stats_of(automaton):
    from dataclasses import replace

    return replace(statistics(automaton), deterministic=automaton.is_deterministic())


class TestChoosePlan:
    def test_deterministic_input_compiles_upfront(self):
        plan = choose_plan(stats_of(figure3_eva()))
        assert plan.engine == "compiled"
        assert plan.determinize_upfront

    def test_small_nondeterministic_input_determinizes_upfront(self):
        plan = choose_plan(stats_of(sequential_eva("x{a*}a*")))
        assert plan.engine == "compiled"

    def test_large_nondeterministic_input_goes_on_the_fly(self):
        automaton = sequential_eva("(aa|a)*x{b}")
        plan = choose_plan(stats_of(automaton), otf_state_threshold=1)
        assert plan.engine == "compiled-otf"
        assert not plan.determinize_upfront

    def test_forced_engines_skip_statistics(self):
        for engine in ("compiled", "compiled-otf", "reference"):
            plan = choose_plan(engine=engine)
            assert plan.engine == engine
            assert plan.reason == "forced by caller"

    def test_auto_requires_statistics(self):
        with pytest.raises(ValueError):
            choose_plan(engine="auto")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            choose_plan(engine="warp")

    def test_plan_must_be_concrete(self):
        with pytest.raises(ValueError):
            ExecutionPlan("auto", True, "nope")


class TestKernelAxis:
    def test_plans_default_to_auto_kernel(self):
        assert choose_plan(engine="compiled").kernel == "auto"

    def test_kernel_is_carried_through_choose_plan(self):
        for kernel in KERNEL_CHOICES:
            plan = choose_plan(engine="compiled", kernel=kernel)
            assert plan.kernel == kernel
        plan = choose_plan(stats_of(figure3_eva()), kernel="runlength")
        assert plan.kernel == "runlength"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            choose_plan(engine="compiled", kernel="warp")
        with pytest.raises(ValueError):
            ExecutionPlan("compiled", True, "forced", kernel="warp")

    def test_runlength_kernel_needs_a_class_table_engine(self):
        with pytest.raises(ValueError):
            choose_plan(engine="reference", kernel="runlength")
        with pytest.raises(ValueError):
            ExecutionPlan("reference", False, "forced", kernel="runlength")
        assert (
            choose_plan(engine="compiled-otf", kernel="runlength").kernel
            == "runlength"
        )

    def test_streaming_plans_pin_the_scalar_kernel(self):
        plan = choose_plan(
            stats_of(figure3_eva()), streaming=True, kernel="auto"
        )
        assert plan.kernel == "scalar"
        with pytest.raises(ValueError):
            choose_plan(
                stats_of(figure3_eva()), streaming=True, kernel="runlength"
            )

    def test_facade_kernel_choices_agree(self):
        spanner = Spanner.from_regex("x{a+}b")
        expected = spanner.count("aab", kernel="scalar")
        for kernel in KERNEL_CHOICES:
            assert spanner.count("aab", kernel=kernel) == expected
            assert (
                len(list(spanner.enumerate("aab", kernel=kernel))) == expected
            )
            assert spanner.plan("aab", kernel=kernel).kernel == kernel

    def test_facade_constructor_kernel_is_the_default(self):
        spanner = Spanner.from_regex("x{a+}b", kernel="runlength")
        assert spanner.kernel == "runlength"
        assert spanner.plan("aab", engine="compiled").kernel == "runlength"
        assert spanner.count("aab") == spanner.count("aab", kernel="scalar")

    def test_facade_rejects_unknown_kernel(self):
        spanner = Spanner.from_regex("x{a}")
        with pytest.raises(ValueError):
            Spanner("x{a}", kernel="warp")
        with pytest.raises(ValueError):
            spanner.count("a", kernel="warp")


class TestSubsetRuntime:
    def test_nondeterministic_eva_without_upfront_determinize(self, monkeypatch):
        automaton = sequential_eva("(aa|a)*x{b}")
        assert not automaton.is_deterministic()

        def forbidden(*args, **kwargs):
            raise AssertionError("compiled-otf must not determinize up front")

        monkeypatch.setattr(transforms, "determinize", forbidden)
        subset = CompiledSubsetEVA(automaton)
        result = evaluate_subset_arena(subset, "aab")
        assert {str(m) for m in result} == {
            str(m) for m in automaton.evaluate("aab")
        }
        assert count_subset(subset, "aab") == result.count()

    def test_rows_cached_across_documents(self):
        subset = CompiledSubsetEVA(sequential_eva("(aa|a)*x{b}"))
        count_subset(subset, "ababab")
        discovered = subset.num_subset_states
        count_subset(subset, "bababa")
        # Same alphabet and shape: the second document reuses every row.
        assert subset.num_subset_states == discovered

    def test_only_reachable_subsets_are_interned(self):
        automaton = sequential_eva("x{a+}y{b+}")
        subset = CompiledSubsetEVA(automaton)
        evaluate_subset_arena(subset, "ab")
        assert subset.num_subset_states <= 2 ** automaton.num_states

    def test_portable_keys_survive_different_interning_orders(self):
        automaton = sequential_eva("x{a*}a*")
        first = CompiledSubsetEVA(automaton)
        arena = evaluate_subset_arena(first, "aaa")
        second = CompiledSubsetEVA(automaton)
        count_subset(second, "a")  # warm with a different discovery order
        rebuilt = arena.from_portable(arena.to_portable(), second)
        assert {str(m) for m in rebuilt} == {str(m) for m in arena}
        assert rebuilt.count() == arena.count()


class TestSpannerPlanIntegration:
    def test_facade_engine_choices(self):
        spanner = Spanner.from_regex("x{a+}b")
        expected = set(spanner.evaluate("aab", engine="reference"))
        for engine in ENGINE_CHOICES:
            assert set(spanner.evaluate("aab", engine=engine)) == expected
            assert spanner.count("aab", engine=engine) == len(expected)

    def test_unknown_engine_rejected_everywhere(self):
        spanner = Spanner.from_regex("x{a}")
        with pytest.raises(ValueError):
            Spanner("x{a}", engine="warp")
        with pytest.raises(ValueError):
            spanner.evaluate("a", engine="warp")
        with pytest.raises(ValueError):
            spanner.count("a", engine="warp")

    def test_plan_exposed(self):
        spanner = Spanner.from_regex("x{a}b")
        plan = spanner.plan("ab")
        assert plan.engine in ("compiled", "compiled-otf")
        forced = spanner.plan("ab", engine="reference")
        assert forced.engine == "reference"

    def test_otf_engine_through_facade_never_determinizes(self, monkeypatch):
        import repro.spanners.pipeline as pipeline_module

        spanner = Spanner.from_regex("(aa|a)*x{b}", engine="compiled-otf")
        for module in (transforms, pipeline_module):
            monkeypatch.setattr(
                module,
                "determinize",
                lambda *a, **k: pytest.fail("compiled-otf must not determinize"),
            )
        expected = {str(m) for m in sequential_eva("(aa|a)*x{b}").evaluate("aab")}
        assert {str(m) for m in spanner.enumerate("aab")} == expected
        assert spanner.count("aab") == len(expected)

    def test_run_batch_with_otf_engine(self):
        spanner = Spanner.from_regex("(aa|a)*x{b}")
        collection = DocumentCollection.from_texts(["aab", "b", "aaab"])
        otf = {
            doc_id: result.count()
            for doc_id, result in spanner.run_batch(collection, engine="compiled-otf")
        }
        compiled = {
            doc_id: result.count()
            for doc_id, result in spanner.run_batch(collection, engine="compiled")
        }
        assert otf == compiled

    def test_run_batch_with_otf_engine_across_processes(self):
        # Subset ids are interned per process; the portable member-tuple
        # keys must still land results on the parent's runtime.
        spanner = Spanner.from_regex("(aa|a)*x{b}")
        collection = DocumentCollection.from_texts(["aab", "b", "aaab"])
        serial = {
            doc_id: (result.count(), {str(m) for m in result})
            for doc_id, result in spanner.run_batch(collection, engine="compiled-otf")
        }
        parallel = {
            doc_id: (result.count(), {str(m) for m in result})
            for doc_id, result in spanner.run_batch(
                collection, engine="compiled-otf", mode="processes", max_workers=2
            )
        }
        assert parallel == serial

    def test_run_batch_engine_runtime_mismatch_rejected(self):
        from repro.runtime.batch import run_batch

        spanner = Spanner.from_regex("(aa|a)*x{b}")
        otf = spanner.otf_runtime("ab")
        with pytest.raises(ValueError, match="CompiledEVA"):
            next(run_batch(otf, ["ab"], engine="compiled"))
        runtime = spanner.runtime("ab")
        with pytest.raises(ValueError, match="CompiledSubsetEVA"):
            next(run_batch(runtime, ["ab"], engine="compiled-otf"))


class TestBoundedCache:
    def test_cache_is_bounded_and_recycles_lru(self):
        spanner = Spanner.from_regex(".*x{a}.*", max_cached_alphabets=2)
        spanner.count("ab")
        spanner.count("ac")
        spanner.count("ad")
        assert spanner.cached_alphabets() == 2

    def test_eviction_drops_runtime_and_eva_together(self):
        spanner = Spanner.from_regex(".*x{a}.*", max_cached_alphabets=1)
        first_runtime = spanner.runtime("ab")
        first_automaton = spanner.compiled("ab")
        spanner.count("az")  # evicts the "ab" entry wholesale
        assert spanner.cached_alphabets() == 1
        assert spanner.runtime("ab") is not first_runtime
        assert spanner.compiled("ab") is not first_automaton

    def test_recently_used_entry_survives(self):
        spanner = Spanner.from_regex(".*x{a}.*", max_cached_alphabets=2)
        kept = spanner.runtime("ab")
        spanner.count("ac")
        spanner.count("ab")  # refresh "ab" so "ac" is the LRU entry
        spanner.count("ad")  # evicts "ac"
        assert spanner.runtime("ab") is kept

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            Spanner("x{a}", max_cached_alphabets=0)

    def test_cache_reused_for_same_alphabet(self):
        spanner = Spanner.from_regex(".*x{a}.*")
        assert spanner.runtime("aba") is spanner.runtime("aab")
