"""Unit tests for the LazyList data structure (repro.enumeration.lazylist)."""

import pytest

from repro.enumeration.lazylist import LazyList


def _singleton(value) -> LazyList:
    """A fresh one-element list."""
    lst = LazyList()
    lst.add(value)
    return lst


class TestBasics:
    def test_new_list_is_empty(self):
        lst = LazyList()
        assert lst.is_empty()
        assert not lst
        assert lst.to_list() == []
        assert len(lst) == 0

    def test_add_prepends(self):
        lst = LazyList()
        lst.add(1)
        lst.add(2)
        lst.add(3)
        assert lst.to_list() == [3, 2, 1]
        assert len(lst) == 3

    def test_head(self):
        lst = LazyList()
        lst.add("a")
        lst.add("b")
        assert lst.head() == "b"

    def test_head_of_empty_raises(self):
        with pytest.raises(IndexError):
            LazyList().head()

    def test_repr(self):
        lst = LazyList()
        lst.add(1)
        assert "1" in repr(lst)


class TestLazyCopy:
    def test_copy_sees_current_contents(self):
        lst = LazyList()
        lst.add(1)
        copy = lst.lazycopy()
        assert copy.to_list() == [1]

    def test_copy_not_affected_by_later_add(self):
        lst = LazyList()
        lst.add(1)
        copy = lst.lazycopy()
        lst.add(2)
        assert lst.to_list() == [2, 1]
        assert copy.to_list() == [1]

    def test_copy_not_affected_by_later_append(self):
        lst = LazyList()
        lst.add(1)
        copy = lst.lazycopy()
        other = LazyList()
        other.add(9)
        lst.append(other)
        assert lst.to_list() == [1, 9]
        assert copy.to_list() == [1]

    def test_copy_of_empty(self):
        copy = LazyList().lazycopy()
        assert copy.is_empty()


class TestAppend:
    def test_append_to_empty_adopts_other(self):
        lst = LazyList()
        other = LazyList()
        other.add(1)
        lst.append(other)
        assert lst.to_list() == [1]

    def test_append_empty_is_noop(self):
        lst = LazyList()
        lst.add(1)
        lst.append(LazyList())
        assert lst.to_list() == [1]

    def test_append_concatenates(self):
        left = LazyList()
        left.add(2)
        left.add(1)
        right = LazyList()
        right.add(4)
        right.add(3)
        left.append(right)
        assert left.to_list() == [1, 2, 3, 4]

    def test_chained_appends(self):
        target = LazyList()
        for payload in ([1], [2, 3], [4]):
            piece = LazyList()
            for value in reversed(payload):
                piece.add(value)
            target.append(piece)
        assert target.to_list() == [1, 2, 3, 4]

    def test_add_after_append(self):
        lst = LazyList()
        lst.add(2)
        other = LazyList()
        other.add(3)
        lst.append(other)
        lst.add(1)
        assert lst.to_list() == [1, 2, 3]

    def test_double_append_through_shared_end_detected(self):
        # Two lists sharing the same end cell may not both be extended: the
        # second splice would overwrite an already-set next pointer, which
        # is the signature of evaluating a non-deterministic automaton.
        original = LazyList()
        original.add(1)
        alias = original.lazycopy()
        original.append(_singleton(2))
        with pytest.raises(RuntimeError):
            alias.append(_singleton(3))


class TestIterationSemantics:
    def test_iteration_stops_at_end_pointer(self):
        # A lazycopy must not observe cells appended to the original later.
        original = LazyList()
        original.add("x")
        copy = original.lazycopy()
        extension = LazyList()
        extension.add("y")
        original.append(extension)
        assert list(copy) == ["x"]
        assert list(original) == ["x", "y"]

    def test_multiple_iterations_are_stable(self):
        lst = LazyList()
        for value in (3, 2, 1):
            lst.add(value)
        assert list(lst) == list(lst) == [1, 2, 3]
