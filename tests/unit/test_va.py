"""Unit tests for repro.automata.va (classic variable-set automata)."""

import pytest

from repro.core.errors import CompilationError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.builders import VABuilder
from repro.automata.markers import close, open_
from repro.automata.va import VariableSetAutomaton, make_va


def single_capture_va() -> VariableSetAutomaton:
    """Accepts a*x{a}a* — captures one 'a' of a block of a's."""
    return (
        VABuilder()
        .initial(0)
        .final(3)
        .letter(0, "a", 0)
        .open(0, "x", 1)
        .letter(1, "a", 2)
        .close(2, "x", 3)
        .letter(3, "a", 3)
        .build()
    )


class TestConstruction:
    def test_states_and_transitions(self):
        va = single_capture_va()
        assert va.num_states == 4
        assert va.num_transitions == 5
        assert va.size == 9
        assert va.variables() == frozenset({"x"})
        assert va.alphabet() == frozenset({"a"})

    def test_initial_and_finals(self):
        va = single_capture_va()
        assert va.initial == 0
        assert va.finals == frozenset({3})

    def test_missing_initial_raises(self):
        with pytest.raises(CompilationError):
            VariableSetAutomaton().initial

    def test_has_initial(self):
        va = VariableSetAutomaton()
        assert not va.has_initial
        va.set_initial(0)
        assert va.has_initial

    def test_letter_transition_requires_single_char(self):
        va = VariableSetAutomaton()
        with pytest.raises(CompilationError):
            va.add_letter_transition(0, "ab", 1)

    def test_variable_transition_requires_marker(self):
        va = VariableSetAutomaton()
        with pytest.raises(CompilationError):
            va.add_variable_transition(0, "x", 1)

    def test_targets_accessors(self):
        va = single_capture_va()
        assert va.letter_targets(0, "a") == frozenset({0})
        assert va.letter_targets(0, "b") == frozenset()
        assert va.variable_targets(0, open_("x")) == frozenset({1})
        assert va.variable_targets(0, close("x")) == frozenset()

    def test_make_va_helper(self):
        va = make_va(
            states=[0, 1],
            initial=0,
            finals=[1],
            letter_transitions=[(0, "a", 1)],
            variable_transitions=[],
        )
        assert va.evaluate("a") == {Mapping.EMPTY}


class TestSemantics:
    def test_single_capture_on_aa(self):
        va = single_capture_va()
        assert va.evaluate("aa") == {
            Mapping({"x": Span(0, 1)}),
            Mapping({"x": Span(1, 2)}),
        }

    def test_no_match_on_wrong_letter(self):
        assert single_capture_va().evaluate("b") == set()

    def test_empty_document_no_match(self):
        # The capture needs at least one 'a'.
        assert single_capture_va().evaluate("") == set()

    def test_empty_document_accepting_empty_run(self):
        va = VariableSetAutomaton()
        va.set_initial(0)
        va.add_final(0)
        assert va.evaluate("") == {Mapping.EMPTY}
        assert va.evaluate("a") == set()

    def test_runs_report_steps(self):
        va = single_capture_va()
        runs = list(va.runs("a"))
        assert len(runs) == 1
        assert runs[0].mapping() == Mapping({"x": Span(0, 1)})

    def test_invalid_runs_are_pruned(self):
        # Closing a variable that was never opened can never yield output.
        va = VariableSetAutomaton()
        va.set_initial(0)
        va.add_close_transition(0, "x", 1)
        va.add_final(1)
        assert va.evaluate("") == set()

    def test_unclosed_variable_not_output(self):
        va = VariableSetAutomaton()
        va.set_initial(0)
        va.add_open_transition(0, "x", 1)
        va.add_final(1)
        assert va.evaluate("") == set()

    def test_variable_opened_and_closed_at_same_position(self):
        va = VariableSetAutomaton()
        va.set_initial(0)
        va.add_open_transition(0, "x", 1)
        va.add_close_transition(1, "x", 2)
        va.add_final(2)
        assert va.evaluate("") == {Mapping({"x": Span(0, 0)})}

    def test_marker_reuse_is_invalid(self):
        # A loop opening x twice never produces a valid run beyond one use.
        va = VariableSetAutomaton()
        va.set_initial(0)
        va.add_open_transition(0, "x", 1)
        va.add_letter_transition(1, "a", 0)
        va.add_close_transition(1, "x", 2)
        va.add_final(2)
        assert va.evaluate("a") == set()
        assert va.evaluate("") == {Mapping({"x": Span(0, 0)})}


class TestStructuralHelpers:
    def test_copy_is_independent(self):
        va = single_capture_va()
        duplicate = va.copy()
        duplicate.add_letter_transition(3, "b", 3)
        assert "b" not in va.alphabet()
        assert va.evaluate("aa") == duplicate.evaluate("aa") - set()

    def test_rename_states_preserves_semantics(self):
        va = single_capture_va()
        renamed = va.rename_states()
        assert renamed.evaluate("aaa") == va.evaluate("aaa")

    def test_to_dot_contains_states(self):
        dot = single_capture_va().to_dot()
        assert "digraph" in dot
        assert "doublecircle" in dot

    def test_repr(self):
        assert "VariableSetAutomaton" in repr(single_capture_va())

    def test_sequential_and_functional_predicates(self, fig2_va):
        assert fig2_va.is_sequential()
        assert fig2_va.is_functional()
        assert single_capture_va().is_sequential()
        assert single_capture_va().is_functional()
