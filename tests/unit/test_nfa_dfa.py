"""Unit tests for repro.automata.nfa and repro.automata.dfa."""

import pytest

from repro.core.errors import CompilationError
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA


def ends_with_ab_nfa() -> NFA:
    """Accepts words over {a, b} ending in 'ab'."""
    nfa = NFA()
    nfa.set_initial(0)
    nfa.add_final(2)
    for symbol in "ab":
        nfa.add_transition(0, symbol, 0)
    nfa.add_transition(0, "a", 1)
    nfa.add_transition(1, "b", 2)
    return nfa


class TestNFA:
    def test_accepts(self):
        nfa = ends_with_ab_nfa()
        assert nfa.accepts("ab")
        assert nfa.accepts("aab")
        assert nfa.accepts("bbab")
        assert not nfa.accepts("ba")
        assert not nfa.accepts("")

    def test_alphabet_and_sizes(self):
        nfa = ends_with_ab_nfa()
        assert nfa.alphabet() == frozenset({"a", "b"})
        assert nfa.num_states == 3
        assert nfa.num_transitions == 4

    def test_epsilon_closure(self):
        nfa = NFA()
        nfa.set_initial(0)
        nfa.add_epsilon_transition(0, 1)
        nfa.add_epsilon_transition(1, 2)
        assert nfa.epsilon_closure({0}) == frozenset({0, 1, 2})
        assert nfa.epsilon_closure({2}) == frozenset({2})

    def test_epsilon_transitions_in_acceptance(self):
        nfa = NFA()
        nfa.set_initial(0)
        nfa.add_epsilon_transition(0, 1)
        nfa.add_transition(1, "a", 2)
        nfa.add_final(2)
        assert nfa.accepts("a")
        assert not nfa.accepts("")

    def test_accepted_words(self):
        nfa = ends_with_ab_nfa()
        assert list(nfa.accepted_words(2)) == ["ab"]
        assert list(nfa.accepted_words(3)) == ["aab", "bab"]

    def test_count_words_of_length(self):
        nfa = ends_with_ab_nfa()
        for length in range(6):
            expected = sum(1 for _ in nfa.accepted_words(length))
            assert nfa.count_words_of_length(length) == expected

    def test_single_char_transitions_only(self):
        nfa = NFA()
        with pytest.raises(CompilationError):
            nfa.add_transition(0, "ab", 1)

    def test_reverse(self):
        nfa = ends_with_ab_nfa()
        reverse = nfa.reverse()
        # The reverse automaton accepts the mirror language: words starting
        # with 'ba'.
        assert reverse.accepts("ba")
        assert reverse.accepts("baa")
        assert not reverse.accepts("ab")

    def test_accepts_without_initial(self):
        assert not NFA().accepts("a")

    def test_determinize_equivalence(self):
        nfa = ends_with_ab_nfa()
        dfa = nfa.determinize()
        for word in ["", "a", "b", "ab", "ba", "aab", "abb", "abab"]:
            assert dfa.accepts(word) == nfa.accepts(word)


class TestDFA:
    def build_mod3_dfa(self) -> DFA:
        """Accepts words over {a} whose length is divisible by 3."""
        dfa = DFA()
        dfa.set_initial(0)
        dfa.add_final(0)
        dfa.add_transition(0, "a", 1)
        dfa.add_transition(1, "a", 2)
        dfa.add_transition(2, "a", 0)
        return dfa

    def test_accepts(self):
        dfa = self.build_mod3_dfa()
        assert dfa.accepts("")
        assert dfa.accepts("aaa")
        assert not dfa.accepts("aa")

    def test_conflicting_transition_rejected(self):
        dfa = DFA()
        dfa.add_transition(0, "a", 1)
        with pytest.raises(CompilationError):
            dfa.add_transition(0, "a", 2)

    def test_idempotent_transition_allowed(self):
        dfa = DFA()
        dfa.add_transition(0, "a", 1)
        dfa.add_transition(0, "a", 1)
        assert dfa.num_transitions == 1

    def test_count_words_of_length(self):
        dfa = self.build_mod3_dfa()
        assert dfa.count_words_of_length(0) == 1
        assert dfa.count_words_of_length(2) == 0
        assert dfa.count_words_of_length(3) == 1

    def test_count_words_up_to_length(self):
        dfa = self.build_mod3_dfa()
        assert dfa.count_words_up_to_length(6) == 3  # lengths 0, 3, 6

    def test_count_negative_length_raises(self):
        with pytest.raises(ValueError):
            self.build_mod3_dfa().count_words_of_length(-1)

    def test_minimize_preserves_language(self):
        nfa = ends_with_ab_nfa()
        dfa = nfa.determinize()
        minimal = dfa.minimize()
        for word in ["", "a", "ab", "aab", "abb", "abab", "bb"]:
            assert minimal.accepts(word) == dfa.accepts(word)
        assert minimal.num_states <= dfa.num_states

    def test_rename_states(self):
        dfa = self.build_mod3_dfa().rename_states()
        assert dfa.accepts("aaa")
        assert all(isinstance(state, int) for state in dfa.states)

    def test_successor(self):
        dfa = self.build_mod3_dfa()
        assert dfa.successor(0, "a") == 1
        assert dfa.successor(0, "b") is None
