"""Unit tests for the server's observability and protocol layers.

Covers the latency ring's nearest-rank percentiles (including the
wraparound that bounds a long-lived server's memory), the ``/metrics``
snapshot shape, and the strict NDJSON event grammar of
:mod:`repro.server.protocol`.
"""

import pytest

from repro import PlanCache
from repro.core.errors import ReproError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.server import LatencyRing, ProtocolError, ServerMetrics
from repro.server.protocol import mapping_event, parse_event, parse_open


class TestLatencyRing:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity must be positive"):
            LatencyRing(0)

    def test_empty_ring_reports_zero(self):
        ring = LatencyRing(8)
        assert ring.percentile(50) == 0.0
        assert ring.percentiles() == {"p50": 0.0, "p99": 0.0}

    def test_nearest_rank_is_exact(self):
        ring = LatencyRing(100)
        for value in range(1, 101):  # 1..100 milliseconds
            ring.record(value / 1000.0)
        assert ring.percentile(50) == pytest.approx(0.050)
        assert ring.percentile(99) == pytest.approx(0.099)
        assert ring.percentile(100) == pytest.approx(0.100)
        assert ring.percentile(1) == pytest.approx(0.001)

    def test_percentile_range_is_validated(self):
        ring = LatencyRing(4)
        with pytest.raises(ValueError, match="percentile must be in"):
            ring.percentile(101)

    def test_wraparound_keeps_only_recent_samples(self):
        ring = LatencyRing(4)
        for value in (1.0, 2.0, 3.0, 4.0, 100.0, 200.0):
            ring.record(value)
        # 1.0 and 2.0 were overwritten; the resident set is {3,4,100,200}.
        assert len(ring) == 4
        assert ring.recorded == 6
        assert ring.percentile(50) == 4.0
        assert ring.percentile(100) == 200.0

    def test_percentiles_labels(self):
        ring = LatencyRing(8)
        ring.record(0.5)
        assert ring.percentiles((50.0, 99.0, 100.0)) == {
            "p50": 0.5,
            "p99": 0.5,
            "p100": 0.5,
        }


class TestServerMetrics:
    def test_snapshot_shape(self):
        metrics = ServerMetrics(latency_capacity=8)
        metrics.record_request(200)
        metrics.record_request(200)
        metrics.record_request(429)
        metrics.record_latency(0.25)
        metrics.session_opened()
        metrics.session_opened()
        metrics.session_closed()
        metrics.session_rejected()
        metrics.session_expired()
        metrics.session_failed()
        metrics.chunk_fed(1024)
        metrics.mappings_emitted(3)

        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == 3
        assert snapshot["responses_by_status"] == {"200": 2, "429": 1}
        assert snapshot["sessions"] == {
            "opened": 2,
            "rejected": 1,
            "expired": 1,
            "failed": 1,
            "active": 1,
            "peak_active": 2,
        }
        assert snapshot["data"] == {
            "bytes_fed": 1024,
            "chunks_fed": 1,
            "mappings_emitted": 3,
        }
        assert snapshot["latency_seconds"]["p50"] == 0.25
        assert snapshot["latency_seconds"]["samples"] == 1
        assert "plan_cache" not in snapshot

    def test_snapshot_exposes_resilience_counters(self):
        from repro.runtime.resilience import RESILIENCE_METRICS

        RESILIENCE_METRICS.reset()
        snapshot = ServerMetrics().snapshot()
        assert snapshot["resilience"] == {
            "tasks_retried": 0,
            "worker_crashes": 0,
            "deadlines_exceeded": 0,
            "pool_rebuilds": 0,
            "inline_fallbacks": 0,
            "documents_quarantined": 0,
            "resource_limit_trips": 0,
        }
        RESILIENCE_METRICS.resource_limit_tripped()
        try:
            assert (
                ServerMetrics().snapshot()["resilience"]["resource_limit_trips"] == 1
            )
        finally:
            RESILIENCE_METRICS.reset()

    def test_snapshot_merges_plan_cache_stats(self):
        metrics = ServerMetrics()
        cache = PlanCache(4)
        cache.get_or_create("a", object)
        cache.get("a")
        snapshot = metrics.snapshot(cache)
        assert snapshot["plan_cache"]["hits"] == 1
        assert snapshot["plan_cache"]["hit_ratio"] == 0.5

    def test_peak_active_tracks_high_water_mark(self):
        metrics = ServerMetrics()
        for _ in range(3):
            metrics.session_opened()
        metrics.session_closed()
        metrics.session_opened()
        assert metrics.active_sessions == 3
        assert metrics.snapshot()["sessions"]["peak_active"] == 3


class TestParseOpen:
    def test_minimal_open(self):
        request = parse_open('{"pattern": "x{a+}"}')
        assert request.pattern == "x{a+}"
        assert request.alphabet is None
        assert request.emit == "incremental"

    def test_full_open_and_cache_key(self):
        request = parse_open(
            '{"pattern": "x{a+}", "alphabet": "ab", "emit": "on_finish"}'
        )
        assert request.cache_key("zz") == ("x{a+}", "ab")
        assert request.emit == "on_finish"

    def test_cache_key_resolves_omitted_alphabet_to_default(self):
        explicit = parse_open('{"pattern": "x{a+}", "alphabet": "ab"}')
        omitted = parse_open('{"pattern": "x{a+}"}')
        assert omitted.cache_key("ab") == explicit.cache_key("ab")
        assert omitted.cache_key("abc") == ("x{a+}", "abc")

    def test_bytes_input(self):
        request = parse_open(b'{"pattern": "x{a+}"}')
        assert request.pattern == "x{a+}"

    @pytest.mark.parametrize(
        "line, message",
        [
            ("not json", "not valid JSON"),
            ("[1, 2]", "must be a JSON object"),
            ("{}", 'non-empty "pattern"'),
            ('{"pattern": ""}', 'non-empty "pattern"'),
            ('{"pattern": 7}', 'non-empty "pattern"'),
            ('{"pattern": "x{a}", "alphabet": 3}', '"alphabet" must be a string'),
            ('{"pattern": "x{a}", "emit": "never"}', "unknown emit mode"),
            ('{"pattern": "x{a}", "extra": 1}', "unknown opening fields"),
        ],
    )
    def test_rejections(self, line, message):
        with pytest.raises(ProtocolError, match=message):
            parse_open(line)

    def test_invalid_utf8_bytes(self):
        with pytest.raises(ProtocolError, match="not valid UTF-8"):
            parse_open(b'\xff\xfe{"pattern": "x"}')

    def test_protocol_error_is_a_repro_error(self):
        # The CLI's one-line-stderr handler catches ReproError; protocol
        # violations must ride the same path.
        assert issubclass(ProtocolError, ReproError)
        assert issubclass(ProtocolError, ValueError)


class TestParseEvent:
    def test_chunk(self):
        event = parse_event('{"chunk": "hello"}')
        assert (event.kind, event.text) == ("chunk", "hello")

    def test_empty_chunk_is_legal(self):
        assert parse_event('{"chunk": ""}').kind == "chunk"

    def test_finish(self):
        assert parse_event('{"finish": true}').kind == "finish"

    @pytest.mark.parametrize(
        "line, message",
        [
            ('{"chunk": 5}', '"chunk" must carry a string'),
            ('{"chunk": "a", "finish": true}', "carries only"),
            ('{"finish": false}', "expected a"),
            ('{"finish": true, "extra": 1}', "carries only"),
            ('{"other": 1}', "expected a"),
        ],
    )
    def test_rejections(self, line, message):
        with pytest.raises(ProtocolError, match=message):
            parse_event(line)


class TestMappingEvent:
    def test_spans_only_payload(self):
        mapping = Mapping({"x": Span(1, 3), "y": Span(0, 4)})
        payload = mapping_event(mapping, settled=True)
        assert payload == {"mapping": {"x": [1, 3], "y": [0, 4]}, "settled": True}

    def test_settled_flag_passthrough(self):
        mapping = Mapping({"x": Span(0, 1)})
        assert mapping_event(mapping, settled=False)["settled"] is False
