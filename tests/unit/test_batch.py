"""Unit tests for the multi-document batch engine (repro.runtime.batch)."""

import pytest

from repro.core.documents import Document, DocumentCollection
from repro.runtime.batch import run_batch
from repro.runtime.compiled import compile_eva
from repro.spanners.spanner import Spanner
from repro.workloads.collections import contact_collection, scenario, scenario_names
from repro.workloads.spanners import contact_pattern


@pytest.fixture(scope="module")
def contact_setup():
    collection = contact_collection(5, records_per_document=8, seed=3)
    spanner = Spanner.from_regex(contact_pattern())
    automaton = spanner.compiled("".join(doc.text for doc in collection))
    return compile_eva(automaton, check_determinism=False), collection


def counts_of(results):
    return {doc_id: result.count() for doc_id, result in results}


class TestSerialMode:
    def test_yields_every_document_in_order(self, contact_setup):
        compiled, collection = contact_setup
        ids = [doc_id for doc_id, _ in run_batch(compiled, collection)]
        assert ids == collection.ids()

    def test_counts_match_per_document_evaluation(self, contact_setup):
        compiled, collection = contact_setup
        spanner = Spanner.from_regex(contact_pattern())
        batch = counts_of(run_batch(compiled, collection))
        for doc_id, document in collection.items():
            assert batch[doc_id] == spanner.count(document)

    def test_reference_engine_agrees(self, contact_setup):
        compiled, collection = contact_setup
        assert counts_of(run_batch(compiled, collection)) == counts_of(
            run_batch(compiled, collection, engine="reference")
        )

    def test_accepts_plain_iterables(self, contact_setup):
        compiled, _collection = contact_setup
        results = counts_of(run_batch(compiled, ["John <j@g.be>", "nothing"]))
        assert set(results) == {0, 1}

    def test_iterable_ids_use_document_names(self, contact_setup):
        compiled, _collection = contact_setup
        documents = [Document("John <j@g.be>", name="john.txt")]
        assert set(counts_of(run_batch(compiled, documents))) == {"john.txt"}

    def test_is_lazy(self, contact_setup):
        compiled, collection = contact_setup
        stream = run_batch(compiled, collection)
        first_id, _first = next(stream)
        assert first_id == collection.ids()[0]


class TestProcessMode:
    def test_matches_serial_results(self, contact_setup):
        compiled, collection = contact_setup
        serial = counts_of(run_batch(compiled, collection))
        parallel = counts_of(
            run_batch(
                compiled, collection, mode="processes", max_workers=2, chunk_size=2
            )
        )
        assert parallel == serial

    def test_mappings_survive_the_process_boundary(self, contact_setup):
        compiled, collection = contact_setup
        serial = {
            doc_id: {str(m) for m in result}
            for doc_id, result in run_batch(compiled, collection)
        }
        parallel = {
            doc_id: {str(m) for m in result}
            for doc_id, result in run_batch(
                compiled, collection, mode="processes", max_workers=2
            )
        }
        assert parallel == serial

    def test_reference_engine_in_processes(self, contact_setup):
        compiled, collection = contact_setup
        serial = counts_of(run_batch(compiled, collection))
        parallel = counts_of(
            run_batch(
                compiled,
                collection,
                mode="processes",
                engine="reference",
                max_workers=2,
            )
        )
        assert parallel == serial


class TestShutdownSemantics:
    """Clean completion closes the pool gracefully; error paths terminate.

    Pins the supervised stream's shutdown split: a batch that runs to
    completion must end with :meth:`SupervisedPool.close` (letting
    workers drain), while abandoning the generator early must end with
    :meth:`SupervisedPool.terminate`.
    """

    @pytest.fixture
    def pool_calls(self, monkeypatch):
        from repro.runtime import batch as batch_module
        from repro.runtime.resilience import SupervisedPool

        calls = []

        class RecordingPool(SupervisedPool):
            def close(self):
                calls.append("close")
                super().close()

            def terminate(self):
                calls.append("terminate")
                super().terminate()

        monkeypatch.setattr(batch_module, "SupervisedPool", RecordingPool)
        return calls

    def test_clean_completion_closes_gracefully(self, contact_setup, pool_calls):
        compiled, collection = contact_setup
        results = list(
            run_batch(compiled, collection, mode="processes", max_workers=2)
        )
        assert len(results) == len(list(collection.ids()))
        assert pool_calls == ["close"]

    def test_early_generator_close_terminates(self, contact_setup, pool_calls):
        compiled, collection = contact_setup
        stream = run_batch(compiled, collection, mode="processes", max_workers=2)
        next(stream)
        stream.close()
        assert pool_calls == ["terminate"]


class TestValidation:
    def test_unknown_mode_rejected(self, contact_setup):
        compiled, collection = contact_setup
        with pytest.raises(ValueError, match="mode"):
            next(run_batch(compiled, collection, mode="threads"))

    def test_unknown_engine_rejected(self, contact_setup):
        compiled, collection = contact_setup
        with pytest.raises(ValueError, match="engine"):
            next(run_batch(compiled, collection, engine="turbo"))

    def test_non_positive_chunk_size_rejected(self, contact_setup):
        compiled, collection = contact_setup
        with pytest.raises(ValueError, match="chunk_size"):
            next(run_batch(compiled, collection, chunk_size=0))

    def test_single_string_rejected(self, contact_setup):
        compiled, _collection = contact_setup
        with pytest.raises(TypeError):
            next(run_batch(compiled, "not a collection"))

    def test_unknown_kernel_rejected(self, contact_setup):
        compiled, collection = contact_setup
        with pytest.raises(ValueError, match="kernel"):
            next(run_batch(compiled, collection, kernel="warp"))

    def test_runlength_kernel_needs_the_compiled_engine(self, contact_setup):
        compiled, collection = contact_setup
        with pytest.raises(ValueError, match="run-length"):
            next(
                run_batch(
                    compiled, collection, engine="reference", kernel="runlength"
                )
            )

    def test_streaming_batches_cannot_force_runlength(self, contact_setup):
        compiled, collection = contact_setup
        with pytest.raises(ValueError, match="streaming"):
            next(
                run_batch(
                    compiled, collection, streaming=True, kernel="runlength"
                )
            )


class TestKernelAxis:
    def test_kernels_agree_serially(self, contact_setup):
        compiled, collection = contact_setup
        expected = counts_of(run_batch(compiled, collection, kernel="scalar"))
        for kernel in ("auto", "runlength"):
            assert (
                counts_of(run_batch(compiled, collection, kernel=kernel))
                == expected
            )

    def test_runlength_kernel_across_processes(self, contact_setup):
        compiled, collection = contact_setup
        expected = counts_of(run_batch(compiled, collection))
        assert (
            counts_of(
                run_batch(
                    compiled,
                    collection,
                    mode="processes",
                    max_workers=2,
                    kernel="runlength",
                )
            )
            == expected
        )

    def test_runlength_kernel_with_sharded_documents(self, contact_setup):
        compiled, collection = contact_setup
        expected = counts_of(run_batch(compiled, collection))
        assert (
            counts_of(
                run_batch(
                    compiled,
                    collection,
                    mode="processes",
                    max_workers=2,
                    shard_min_chars=32,
                    kernel="runlength",
                )
            )
            == expected
        )


class TestSpannerRunBatch:
    def test_compiles_once_over_the_union_alphabet(self):
        spanner = Spanner.from_regex(".* name{[A-Z][a-z]+} .*")
        collection = DocumentCollection.from_texts(["hi Ada !", "yo Bob ?"])
        counts = counts_of(spanner.run_batch(collection))
        assert counts == {"doc-0": 1, "doc-1": 1}
        assert spanner.cached_alphabets() == 1

    def test_accepts_iterables_and_keeps_names(self):
        spanner = Spanner.from_regex("x{ab}")
        results = counts_of(
            spanner.run_batch([Document("ab", name="left"), Document("ba", name="right")])
        )
        assert results == {"left": 1, "right": 0}

    def test_engine_override(self):
        spanner = Spanner.from_regex("x{a+}")
        collection = DocumentCollection.from_texts(["aaa", "b"])
        assert counts_of(spanner.run_batch(collection, engine="reference")) == counts_of(
            spanner.run_batch(collection, engine="compiled")
        )

    def test_invalid_engine_rejected(self):
        spanner = Spanner.from_regex("x{a}")
        with pytest.raises(ValueError):
            next(iter(spanner.run_batch(["a"], engine="warp")))


class TestScenarios:
    @pytest.mark.parametrize("name", scenario_names())
    def test_every_scenario_is_runnable(self, name):
        built = scenario(name, num_documents=2, scale=20, seed=1)
        assert built.num_documents == 2
        assert built.total_length > 0
        spanner = built.build_spanner()
        counts = counts_of(spanner.run_batch(built.collection))
        assert set(counts) == set(built.collection.ids())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            scenario("nope")

    def test_scenarios_are_deterministic(self):
        first = scenario("contacts", num_documents=2, scale=5, seed=9)
        second = scenario("contacts", num_documents=2, scale=5, seed=9)
        assert [d.text for d in first.collection] == [d.text for d in second.collection]
