"""The reusable cross-engine differential-testing harness.

One call — :func:`assert_all_engines_agree` — pins every evaluation route
of the library against each other on one ``(spanner, document)`` pair:

* the facade engines (``reference``, ``compiled``, ``compiled-otf``) plus
  the ``auto`` plan, for both enumeration and counting;
* the chunk-fed :class:`~repro.runtime.streaming.StreamingEvaluator`, in
  **both** emit modes, over a seeded adversarial set of chunkings of the
  same document: whole-document, one-character chunks, empty chunks
  interspersed, random seeded splits, and UTF-8 byte streams split
  *inside* multi-byte sequences;
* the shard-parallel engine (:mod:`repro.runtime.sharding`), pinned
  **arena-for-arena** (bit-identical arrays, not just equal mapping
  sets) against the serial arena engine over adversarial shard counts:
  one-character shards, more shards than characters, and seeded counts
  that land boundaries inside quiescent sprint runs and between the
  codepoints of multi-byte text;
* the run-length kernel (:mod:`repro.runtime.runlength`): its count
  must equal the scalar count and its generalized-sprint arena must be
  bit-identical to the scalar arena with the fast path both on and off,
  and the sharded count is re-run with ``kernel="runlength"`` so
  interior-shard summary passes go through the matrix path too.

The streaming evaluator is opened over the document's own alphabet —
exactly the alphabet key the facade derives for whole-document
evaluation — so the comparison is engine-vs-engine on one compiled
automaton, and characters that are foreign *to the pattern* (the
adversarial corpus plants them at chunk boundaries) exercise the wildcard
expansion rather than killing the stream.

:func:`adversarial_documents` is the seeded document corpus used by the
deterministic streaming tests: multi-byte runs around chunk boundaries,
characters outside the pattern alphabet, empty documents and single
characters.
"""

from __future__ import annotations

import random

from repro import Spanner, StreamingError
from repro.core.documents import as_text
from repro.runtime.engine import count_compiled, evaluate_compiled_arena
from repro.runtime.runlength import count_runlength, evaluate_runlength_arena
from repro.runtime.sharding import count_sharded, evaluate_sharded

__all__ = [
    "FACADE_ENGINES",
    "adversarial_chunkings",
    "adversarial_documents",
    "adversarial_shard_counts",
    "assert_all_engines_agree",
    "assert_arena_identical",
    "facade_results",
]

#: The monolithic engines reachable through the facade's ``engine=`` knob.
FACADE_ENGINES = ("reference", "compiled", "compiled-otf")


def adversarial_chunkings(text: str, seed: int = 0, random_splits: int = 2):
    """Yield ``(label, chunks)`` pairs covering the nasty chunk shapes.

    Every chunking concatenates back to *text*.  ``bytes`` chunkings
    split the UTF-8 encoding at positions chosen to land *inside*
    multi-byte sequences whenever the text has any, so the streaming
    evaluator's incremental decoder is exercised on every call.
    """
    yield "whole", [text]
    yield "single-chars", list(text)
    yield "empty-interspersed", [piece for char in text for piece in ("", char)] + [""]

    rng = random.Random(seed)
    for trial in range(random_splits):
        chunks = []
        begin = 0
        while begin < len(text):
            end = min(len(text), begin + rng.randint(1, max(1, len(text) // 2)))
            chunks.append(text[begin:end])
            begin = end
        yield f"random-{trial}", chunks or [""]

    raw = text.encode("utf-8")
    if len(raw) != len(text):
        # Multi-byte characters present: cut every byte apart, which is
        # guaranteed to split inside each multi-byte sequence.
        yield "bytes-single", [raw[i : i + 1] for i in range(len(raw))]
        cut = rng.randint(1, max(1, len(raw) - 1)) if len(raw) > 1 else 1
        yield "bytes-split", [raw[:cut], raw[cut:]]
    elif raw:
        yield "bytes-whole", [raw]


def adversarial_documents(seed: int = 0) -> list[str]:
    """The seeded corpus of streaming-hostile documents.

    Mixes the two-letter pattern alphabet with characters the patterns
    never mention (an accented letter, a low codepoint, an astral-plane
    emoji) so that wildcard expansion, the foreign-class machinery and
    multi-byte chunk splits are all on the table.
    """
    rng = random.Random(seed)
    corpus = [
        "",
        "a",
        "é",
        "ab" * 3,
        "aéb",
        "a\x00b",
        "ab\U0001f600ba",
        "éé" + "ab" * 2 + "é",
    ]
    alphabet = "abé\x00"
    for _ in range(4):
        corpus.append(
            "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 8)))
        )
    return corpus


def adversarial_shard_counts(length: int, seed: int = 0) -> list[int]:
    """Shard counts that stress every boundary-placement hazard.

    One-character shards put a boundary at *every* position (so inside
    every quiescent sprint run and between every pair of codepoints of a
    multi-byte document); a count above the length exercises the
    degenerate more-shards-than-characters plan; small counts land
    boundaries mid-run; a seeded count adds variety across calls.
    """
    rng = random.Random(seed)
    counts = {1, 2, 3, max(1, length // 2), max(1, length), length + 3}
    counts.add(rng.randint(1, max(1, length + 1)))
    return sorted(counts)


_ARENA_ARRAYS = (
    "node_markers",
    "node_positions",
    "node_starts",
    "node_ends",
    "cell_nodes",
    "cell_nexts",
    "final_entries",
)


def assert_arena_identical(actual, expected, *, context: str = "") -> None:
    """Assert two :class:`CompiledResultDag` arenas are bit-identical.

    Stronger than comparing mapping sets: every array must match element
    for element, which pins node sharing, allocation order and list
    splicing — exactly what shard stitching must reproduce.
    """
    for name in _ARENA_ARRAYS:
        left = list(getattr(actual, name))
        right = list(getattr(expected, name))
        assert left == right, (
            f"arena array {name!r} differs{context}: {left} != {right}"
        )


def _mapping_set(mappings) -> frozenset[str]:
    return frozenset(str(mapping) for mapping in mappings)


def facade_results(spanner: Spanner, text: str) -> dict[str, frozenset[str]]:
    """The mapping set per facade engine (plus the ``auto`` plan)."""
    results = {"auto": _mapping_set(spanner.evaluate(text))}
    for engine in FACADE_ENGINES:
        results[engine] = _mapping_set(spanner.evaluate(text, engine=engine))
    return results


def assert_all_engines_agree(
    spanner_spec,
    document,
    *,
    seed: int = 0,
    streaming: bool = True,
    sharded: bool = True,
    spanner: Spanner | None = None,
) -> frozenset[str]:
    """Assert every engine and every chunking yields one mapping set.

    *spanner_spec* is anything :class:`Spanner` accepts (pattern text,
    regex AST, VA, eVA); pass a prebuilt *spanner* instead to reuse its
    compilation cache across calls.  Returns the agreed mapping set, so
    callers can additionally compare it against an external oracle (the
    reference regex semantics, a baseline enumerator, ...).
    """
    if spanner is None:
        spanner = Spanner(spanner_spec)
    text = as_text(document)

    results = facade_results(spanner, text)
    expected = results["compiled"]
    counts = {
        engine: spanner.count(text, engine=engine) for engine in FACADE_ENGINES
    }
    counts["auto"] = spanner.count(text)
    for engine, mapping_set in results.items():
        assert mapping_set == expected, (
            f"engine {engine!r} disagrees with 'compiled': "
            f"{sorted(mapping_set) } != {sorted(expected)}"
        )
    for engine, count in counts.items():
        assert count == len(expected), (
            f"count({engine!r}) = {count}, enumeration found {len(expected)}"
        )

    # The run-length kernel is held to the sharding engine's standard:
    # its count must match the scalar Algorithm 3 exactly and its
    # generalized-sprint arena must be bit-identical to the scalar
    # arena — with the fast path both on (runs jumped via the Boolean
    # reachability matrices) and off (every character stepped).
    runtime = spanner.runtime(text)
    serial_arena = evaluate_compiled_arena(runtime, text)
    serial_count = count_compiled(runtime, text)
    assert count_runlength(runtime, text) == serial_count, (
        f"count_runlength = {count_runlength(runtime, text)}, "
        f"scalar count = {serial_count}"
    )
    for fast_path in (True, False):
        runlength_arena = evaluate_runlength_arena(
            runtime, text, fast_path=fast_path
        )
        assert_arena_identical(
            runlength_arena,
            serial_arena,
            context=f" (runlength kernel, fast_path={fast_path})",
        )

    if sharded:
        # The shard-parallel engine is held to a stronger standard than
        # agreement on mapping sets: its stitched arena must be
        # bit-identical to the serial one for every shard count, and the
        # replay-free sharded count must be exact.
        for shards in adversarial_shard_counts(len(text), seed=seed):
            arena = evaluate_sharded(runtime, text, shards=shards)
            assert_arena_identical(
                arena, serial_arena, context=f" (shards={shards})"
            )
            sharded_count = count_sharded(runtime, text, shards=shards)
            assert sharded_count == serial_count, (
                f"count_sharded(shards={shards}) = {sharded_count}, "
                f"serial count = {serial_count}"
            )
            runlength_count = count_sharded(
                runtime, text, shards=shards, kernel="runlength"
            )
            assert runlength_count == serial_count, (
                f"count_sharded(shards={shards}, kernel='runlength') = "
                f"{runlength_count}, serial count = {serial_count}"
            )
            assert _mapping_set(arena) == expected, (
                f"sharded enumeration (shards={shards}) disagrees"
            )

    if not streaming:
        return expected

    # Stream over the document's own alphabet — the same key the facade
    # used above, so every route runs one compiled automaton.  Characters
    # the compiled classing still treats as foreign (possible when the
    # pattern has no wildcard: compilation then ignores the declared
    # alphabet) kill every run, so the whole-document output is empty —
    # and incremental mode is allowed to raise instead *if* it already
    # delivered mappings it would now have to retract.
    alphabet = frozenset(text)
    foreign = alphabet - set(spanner.runtime(text).classing.symbols)
    for emit in ("on_finish", "incremental"):
        for label, chunks in adversarial_chunkings(text, seed=seed):
            evaluator = spanner.stream(alphabet=alphabet, emit=emit)
            fed = []
            try:
                for chunk in chunks:
                    fed.extend(evaluator.feed(chunk))
            except StreamingError:
                assert emit == "incremental", (
                    f"emit='on_finish' must never raise (chunking {label!r})"
                )
                assert foreign and fed and not expected, (
                    f"chunking {label!r} raised without a delivered-then-"
                    "retracted conflict (the only legitimate reason)"
                )
                continue
            result = evaluator.finish()
            got = _mapping_set(result)
            assert got == expected, (
                f"streaming emit={emit!r} chunking={label!r} disagrees: "
                f"{sorted(got)} != {sorted(expected)}"
            )
            assert result.count() == len(expected), (
                f"streaming emit={emit!r} chunking={label!r} count mismatch"
            )
            if emit == "incremental":
                assert _mapping_set(fed) <= expected, (
                    f"chunking {label!r} flushed a mapping outside the output"
                )
    return expected
