"""Property tests: shard-parallel evaluation is exactly serial evaluation.

Two families of guarantees:

* **Algebraic** — per-shard transition summaries form a monoid under
  :func:`compose_summaries`: composition is associative, composing the
  summaries of adjacent slices equals the summary of their concatenation,
  and applying a summary to an entry set commutes with union.  These are
  the properties the left-to-right stitch relies on.

* **Operational** — for every generated spanner, document and shard
  count, the stitched arena is bit-identical to the serial engine's
  (through the shared harness helper) and the replay-free sharded count
  is exact, including boundaries inside quiescent sprint runs, between
  multi-byte codepoints, and shard counts beyond the document length.
"""

from hypothesis import given, settings, strategies as st

from harness import (
    adversarial_documents,
    adversarial_shard_counts,
    assert_all_engines_agree,
    assert_arena_identical,
)

from repro import Spanner
from repro.runtime.engine import count_compiled, evaluate_compiled_arena
from repro.runtime.sharding import (
    apply_summary,
    compose_summaries,
    count_sharded,
    evaluate_sharded,
    shard_summary,
)
from repro.workloads.collections import scenario

#: Patterns chosen to cover the shard-relevant regimes: sprint-heavy
#: wildcard scans, capture-dense cores, run death on foreign characters,
#: and multi-variable nondeterminism resolved by determinization.
PATTERNS = [
    ".*x{a}.*",
    "x{a*}b*",
    ".*x{ab}y{b*}a.*",
    "x{a}b",
    ".*x{aé*b}.*",
]

DOCUMENT_ALPHABET = "abé\x00"


documents = st.text(alphabet=DOCUMENT_ALPHABET, max_size=24)
patterns = st.sampled_from(PATTERNS)


def _runtime(pattern: str, text: str):
    spanner = Spanner.from_regex(pattern)
    return spanner._runtime_for_key(spanner._alphabet_key(text))


@settings(max_examples=40, deadline=None)
@given(pattern=patterns, text=documents, data=st.data())
def test_summary_composition_is_associative_and_exact(pattern, text, data):
    """compose(S(a), S(b)) == S(a+b), and composition is associative."""
    runtime = _runtime(pattern, text)
    encoded = runtime.encode(text)
    buf, length = encoded.buffer, encoded.length
    cut_one = data.draw(st.integers(min_value=0, max_value=length))
    cut_two = data.draw(st.integers(min_value=cut_one, max_value=length))

    first = shard_summary(runtime, buf[:cut_one], cut_one)
    second = shard_summary(runtime, buf[cut_one:cut_two], cut_two - cut_one)
    third = shard_summary(runtime, buf[cut_two:], length - cut_two)

    left = compose_summaries(compose_summaries(first, second), third)
    right = compose_summaries(first, compose_summaries(second, third))
    whole = shard_summary(runtime, buf, length)
    assert left == right
    assert left == whole


@settings(max_examples=40, deadline=None)
@given(pattern=patterns, text=documents, data=st.data())
def test_apply_summary_is_a_union_homomorphism(pattern, text, data):
    """The frontier of a state set is the union of per-state frontiers."""
    runtime = _runtime(pattern, text)
    encoded = runtime.encode(text)
    summary = shard_summary(runtime, encoded.buffer, encoded.length)
    entries = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=runtime.num_states - 1),
            max_size=4,
            unique=True,
        )
    )
    combined = set(apply_summary(summary, entries))
    union = set()
    for state in entries:
        union.update(apply_summary(summary, [state]))
    assert combined == union


@settings(max_examples=40, deadline=None)
@given(pattern=patterns, text=documents, shards=st.integers(min_value=1, max_value=30))
def test_sharded_arena_is_bit_identical(pattern, text, shards):
    runtime = _runtime(pattern, text)
    serial = evaluate_compiled_arena(runtime, text)
    arena = evaluate_sharded(runtime, text, shards=shards)
    assert_arena_identical(arena, serial, context=f" (shards={shards})")
    assert count_sharded(runtime, text, shards=shards) == count_compiled(
        runtime, text
    )


def test_adversarial_corpus_through_the_full_harness():
    """Every corpus document, every engine, every shard count agrees."""
    for pattern in PATTERNS:
        spanner = Spanner.from_regex(pattern)
        for text in adversarial_documents(seed=11):
            assert_all_engines_agree(
                pattern, text, seed=11, streaming=False, spanner=spanner
            )


def test_sparse_logs_scenario_bit_identity():
    """The benchmark scenario itself: real matches across shard bounds."""
    bench = scenario("sparse-logs", num_documents=1, scale=800)
    spanner = bench.build_spanner()
    document = next(iter(bench.collection))
    runtime = spanner._runtime_for_key(spanner._alphabet_key(document))
    serial = evaluate_compiled_arena(runtime, document)
    assert count_compiled(runtime, document) > 0, "scenario must match"
    for shards in adversarial_shard_counts(len(document), seed=3):
        arena = evaluate_sharded(runtime, document, shards=shards)
        assert_arena_identical(arena, serial, context=f" (shards={shards})")
