"""Property tests: the optimizer never changes a spanner's semantics.

Random algebra expressions (joins, unions and projections over a pool of
*functional* regex atoms, so the default join validation never fires) are
evaluated on random documents through every rewrite / cut combination:

* rewrites on and off (``enable_rewrites``),
* thresholds forcing a full cut (``0``), full fusion (huge) and the
  default mixed policy,

and each physical plan's output must equal the set-level reference
evaluation :func:`evaluate_expression_setwise` (the paper's semantics,
materialized).  This pins both the rewrite soundness (projection pushdown,
flattening, join reordering) and the runtime operators (hash join,
merge union, arena projection) in one property.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra.compile import evaluate_expression_setwise
from repro.algebra.expressions import Atom, Join, Projection, UnionExpr
from repro.algebra.optimizer import optimize

ALPHABET = "ab"

#: Functional atoms only (every accepting run assigns every variable), so
#: joins over them always pass the default functional-join validation.
ATOM_PATTERNS = (
    "x{a+}b*",
    "x{a+}y{b*}",
    "x{(a|b)+}",
    "y{b+}",
    "(a|b)*x{ab*}",
    "z{a}(a|b)*",
)

VARIABLES = ("x", "y", "z")


def expressions(max_depth=3):
    atoms = st.sampled_from(ATOM_PATTERNS).map(lambda pattern: Atom(pattern))

    def extend(children):
        keeps = st.lists(st.sampled_from(VARIABLES), max_size=3).map(frozenset)
        return st.one_of(
            st.builds(Join, children, children),
            st.builds(UnionExpr, children, children),
            st.builds(Projection, children, keeps),
        )

    return st.recursive(atoms, extend, max_leaves=4)


documents = st.text(alphabet=ALPHABET, min_size=0, max_size=8)

CONFIGURATIONS = (
    # (enable_rewrites, join threshold, union threshold)
    (True, 0, 0),  # cut everything: every operator runs on arenas
    (True, 10**9, 10**9),  # fuse everything (monolithic route via rewrites)
    (False, 0, 0),  # cut everything, no rewrites
    (False, 10**9, 10**9),  # fuse everything, no rewrites
    (True, 64, 512),  # the default mixed policy
)


@settings(max_examples=60, deadline=None)
@given(expression=expressions(), document=documents)
def test_every_rewrite_and_cut_combination_matches_setwise(expression, document):
    alphabet = frozenset(ALPHABET)
    expected = evaluate_expression_setwise(expression, document, alphabet)
    for enable_rewrites, join_threshold, union_threshold in CONFIGURATIONS:
        plan = optimize(
            expression,
            alphabet,
            enable_rewrites=enable_rewrites,
            join_fuse_threshold=join_threshold,
            union_fuse_threshold=union_threshold,
        )
        plan.physical.prepare(alphabet)
        got = set(plan.physical.execute(document))
        assert got == expected, (
            f"optimizer diverged (rewrites={enable_rewrites}, "
            f"join<={join_threshold}, union<={union_threshold}) on "
            f"{expression!r} over {document!r}"
        )


@settings(max_examples=30, deadline=None)
@given(expression=expressions(), document=documents)
def test_facade_hybrid_matches_setwise_semantics(expression, document):
    # The comparison target is the set-level semantics, NOT the monolithic
    # reference engine: fusing a join whose operand is a union with
    # mismatched branch variables is exactly the unsoundness the optimizer
    # avoids (it cuts such joins), so the two engines legitimately differ
    # on those expressions — and the hybrid answer is the correct one.
    from repro.spanners.spanner import Spanner

    spanner = Spanner.from_expression(expression, alphabet=ALPHABET)
    expected = evaluate_expression_setwise(expression, document, frozenset(ALPHABET))
    assert set(spanner.evaluate(document, engine="hybrid")) == expected
    assert spanner.count(document, engine="hybrid") == len(expected)
