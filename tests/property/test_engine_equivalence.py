"""Property-based tests: every evaluation engine computes the same spanner.

Random regex formulas are generated structurally (so that their size stays
small enough for the exponential reference semantics), random documents are
drawn over a two-letter alphabet, and the following engines are compared:

* the Table 1 reference semantics,
* the run-based semantics of the compiled VA,
* the constant-delay algorithm on the determinized sequential eVA,
* Algorithm 3 for counting,
* the polynomial-delay flashlight baseline.
"""

from hypothesis import given, settings, strategies as st

from harness import assert_all_engines_agree

from repro import Spanner
from repro.baselines.naive import naive_evaluate
from repro.baselines.polydelay import PolynomialDelayEnumerator
from repro.counting.count import count_mappings
from repro.regex.ast import (
    AnyChar,
    Capture,
    Concat,
    Epsilon,
    Literal,
    Optional,
    Plus,
    Star,
    Union,
)
from repro.regex.compiler import compile_to_va
from repro.regex.semantics import evaluate_regex

ALPHABET = "ab"


def regex_nodes(max_depth: int = 3):
    """A strategy generating small regex-formula ASTs."""
    leaves = st.one_of(
        st.sampled_from([Epsilon(), AnyChar(), Literal("a"), Literal("b")]),
    )

    def extend(children):
        variable = st.sampled_from(["x", "y", "z"])
        return st.one_of(
            st.builds(lambda a, b: Concat([a, b]), children, children),
            st.builds(lambda a, b: Union([a, b]), children, children),
            st.builds(Star, children),
            st.builds(Plus, children),
            st.builds(Optional, children),
            st.builds(Capture, variable, children),
        )

    return st.recursive(leaves, extend, max_leaves=6)


documents = st.text(alphabet=ALPHABET, min_size=0, max_size=5)


@settings(max_examples=60, deadline=None)
@given(node=regex_nodes(), document=documents)
def test_constant_delay_equals_reference_semantics(node, document):
    # The shared differential harness pins every facade engine (and the
    # per-engine counts) against each other; anchoring the agreed set on
    # the Table 1 reference semantics rules out a shared bug.  Streaming
    # is exercised separately in test_streaming_equivalence with its own
    # adversarial chunkings.
    agreed = assert_all_engines_agree(node, document, streaming=False)
    assert agreed == {str(m) for m in evaluate_regex(node, document)}


@settings(max_examples=60, deadline=None)
@given(node=regex_nodes(), document=documents)
def test_count_equals_enumeration(node, document):
    spanner = Spanner.from_regex(node)
    assert spanner.count(document) == len(spanner.evaluate(document))


@settings(max_examples=40, deadline=None)
@given(node=regex_nodes(), document=documents)
def test_naive_baseline_equals_reference(node, document):
    automaton = compile_to_va(node, ALPHABET)
    assert naive_evaluate(automaton, document) == evaluate_regex(node, document)


@settings(max_examples=40, deadline=None)
@given(node=regex_nodes(), document=documents)
def test_polynomial_delay_equals_constant_delay(node, document):
    spanner = Spanner.from_regex(node)
    compiled = spanner.compiled(document)
    poly = PolynomialDelayEnumerator(compiled).evaluate(document)
    assert poly == set(spanner.evaluate(document))


@settings(max_examples=40, deadline=None)
@given(node=regex_nodes(), document=documents)
def test_algorithm3_on_compiled_automaton(node, document):
    spanner = Spanner.from_regex(node)
    compiled = spanner.compiled(document)
    assert count_mappings(compiled, document) == len(spanner.evaluate(document))


@settings(max_examples=40, deadline=None)
@given(node=regex_nodes(), document=documents)
def test_on_the_fly_determinization_equals_reference(node, document):
    from repro.automata.transforms import va_to_eva
    from repro.enumeration.onthefly import evaluate_on_the_fly

    extended = va_to_eva(compile_to_va(node, ALPHABET))
    # The regex-compiled eVA may be non-sequential (captures under a star);
    # on-the-fly evaluation requires sequentiality, so restrict to the
    # sequential case, which the pipeline-based engines already cover.
    if extended.is_sequential():
        outputs = list(evaluate_on_the_fly(extended, document))
        assert set(outputs) == evaluate_regex(node, document)
        assert len(outputs) == len(set(outputs))


@settings(max_examples=60, deadline=None)
@given(node=regex_nodes(), document=documents)
def test_outputs_are_valid_spans_of_the_document(node, document):
    spanner = Spanner.from_regex(node)
    for mapping in spanner.evaluate(document):
        for variable, span in mapping.items():
            assert span.fits(document)
            assert variable in node.variables()
