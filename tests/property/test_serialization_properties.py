"""Property-based tests: serialization round-trips and evaluator agreement.

Random automata are generated the same way as in the transform property
tests; the checks are that (a) JSON (de)serialization is the identity on
semantics, and (b) the eager-copy and on-the-fly evaluators agree with the
standard constant-delay engine on the compiled automata.
"""

from hypothesis import given, settings, strategies as st

from repro.automata.analysis import is_sequential
from repro.automata.markers import close, open_
from repro.automata.transforms import (
    relabel_states,
    to_deterministic_sequential_eva,
    va_to_eva,
)
from repro.automata.va import VariableSetAutomaton
from repro.baselines.eager import EagerCopyEvaluator
from repro.enumeration.evaluate import evaluate
from repro.enumeration.onthefly import evaluate_on_the_fly
from repro.io.serialization import eva_from_dict, eva_to_dict, va_from_dict, va_to_dict

ALPHABET = "ab"
VARIABLES = ["x", "y"]
NUM_STATES = 4

documents = st.text(alphabet=ALPHABET, min_size=0, max_size=4)


@st.composite
def random_va(draw):
    """A small random VA with integer states."""
    automaton = VariableSetAutomaton()
    automaton.set_initial(0)
    for state in draw(
        st.lists(
            st.integers(min_value=0, max_value=NUM_STATES - 1),
            min_size=1,
            max_size=2,
            unique=True,
        )
    ):
        automaton.add_final(state)
    transitions = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=NUM_STATES - 1),
                st.one_of(
                    st.sampled_from(list(ALPHABET)),
                    st.sampled_from(
                        [open_(v) for v in VARIABLES] + [close(v) for v in VARIABLES]
                    ),
                ),
                st.integers(min_value=0, max_value=NUM_STATES - 1),
            ),
            min_size=1,
            max_size=10,
        )
    )
    for source, label, target in transitions:
        if isinstance(label, str):
            automaton.add_letter_transition(source, label, target)
        else:
            automaton.add_variable_transition(source, label, target)
    return automaton


@settings(max_examples=50, deadline=None)
@given(automaton=random_va(), document=documents)
def test_va_serialization_round_trip(automaton, document):
    rebuilt = va_from_dict(va_to_dict(automaton))
    assert rebuilt.evaluate(document) == automaton.evaluate(document)


@settings(max_examples=50, deadline=None)
@given(automaton=random_va(), document=documents)
def test_eva_serialization_round_trip(automaton, document):
    extended = relabel_states(va_to_eva(automaton))
    rebuilt = eva_from_dict(eva_to_dict(extended))
    assert rebuilt.evaluate(document) == extended.evaluate(document)


@settings(max_examples=40, deadline=None)
@given(automaton=random_va(), document=documents)
def test_eager_copy_evaluator_agrees_with_lazy_engine(automaton, document):
    deterministic = to_deterministic_sequential_eva(automaton)
    lazy = set(evaluate(deterministic, document, check_determinism=False))
    eager = EagerCopyEvaluator(deterministic).evaluate(document)
    assert eager == lazy == automaton.evaluate(document)


@settings(max_examples=40, deadline=None)
@given(automaton=random_va(), document=documents)
def test_on_the_fly_agrees_with_reference_for_sequential_inputs(automaton, document):
    extended = va_to_eva(automaton)
    if not is_sequential(extended):
        return
    outputs = list(evaluate_on_the_fly(extended, document))
    assert set(outputs) == automaton.evaluate(document)
    assert len(outputs) == len(set(outputs))
