"""Property tests: the run-length kernel is exactly the scalar engine.

Three families of guarantees over generated spanners and adversarial
documents (run length 1, empty documents, single-class alphabets, foreign
characters planted mid-run):

* **Counting** — :func:`count_runlength` equals the scalar
  :func:`count_compiled` equals the reference enumeration's cardinality,
  and the numpy ``int64`` run path (when numpy is importable) is
  bit-equal to the arbitrary-precision Python rows.

* **Arenas** — :func:`evaluate_runlength_arena` is array-for-array
  identical to the scalar arena with the generalized sprint both on and
  off (through the shared harness helper, which also re-runs the whole
  cross-engine matrix with the run-length pass wired in).

* **Sharding** — ``count_sharded(kernel="runlength")`` is exact for
  adversarial shard counts whose boundaries split runs, and the
  run-length shard summary composes exactly like the scalar one.
"""

from hypothesis import given, settings, strategies as st

from harness import (
    adversarial_documents,
    assert_all_engines_agree,
    assert_arena_identical,
)

from repro import Spanner
from repro.runtime.engine import count_compiled, evaluate_compiled_arena
from repro.runtime.runlength import (
    count_runlength,
    count_subset_runlength,
    evaluate_runlength_arena,
    numpy_available,
    summary_runlength,
)
from repro.runtime.sharding import (
    compose_summaries,
    count_sharded,
    shard_summary,
)

#: Run-length-hostile regimes: capture state fanning out inside a run
#: (the `general` count kind), captures opened and closed by run
#: boundaries, run death on foreign characters, and single-letter
#: patterns whose every document is one or two giant runs.
PATTERNS = [
    ".*x{a+}.*",
    "x{a*}b*",
    ".*x{ab}y{b*}a.*",
    "x{a}b",
    ".*x{aé*b}.*",
    "a*x{b*}a*",
]

DOCUMENT_ALPHABET = "abé\x00"

#: Biased toward long runs: plain text plus run-structured documents
#: assembled from (char, length) pairs, so generated documents actually
#: exercise multi-step jumps instead of degenerating to run length 1.
run_documents = st.lists(
    st.tuples(
        st.sampled_from(DOCUMENT_ALPHABET),
        st.integers(min_value=1, max_value=12),
    ),
    max_size=6,
).map(lambda pairs: "".join(char * length for char, length in pairs))
documents = st.one_of(st.text(alphabet=DOCUMENT_ALPHABET, max_size=24), run_documents)
patterns = st.sampled_from(PATTERNS)


def _runtime(pattern: str, text: str):
    spanner = Spanner.from_regex(pattern)
    return spanner._runtime_for_key(spanner._alphabet_key(text))


@settings(max_examples=60, deadline=None)
@given(pattern=patterns, text=documents)
def test_count_equals_scalar_and_reference(pattern, text):
    runtime = _runtime(pattern, text)
    spanner = Spanner.from_regex(pattern)
    expected = count_compiled(runtime, text)
    assert count_runlength(runtime, text) == expected
    assert count_runlength(runtime, text, use_numpy=False) == expected
    assert len(list(spanner.evaluate(text, engine="reference"))) == expected


@settings(max_examples=60, deadline=None)
@given(pattern=patterns, text=documents)
def test_numpy_path_is_bit_equal_to_python_rows(pattern, text):
    if not numpy_available():
        return
    runtime = _runtime(pattern, text)
    assert count_runlength(runtime, text, use_numpy=True) == count_runlength(
        runtime, text, use_numpy=False
    )


@settings(max_examples=60, deadline=None)
@given(pattern=patterns, text=documents)
def test_arena_is_bit_identical_both_fast_paths(pattern, text):
    runtime = _runtime(pattern, text)
    serial = evaluate_compiled_arena(runtime, text)
    for fast_path in (True, False):
        arena = evaluate_runlength_arena(runtime, text, fast_path=fast_path)
        assert_arena_identical(
            arena, serial, context=f" (runlength fast_path={fast_path})"
        )


@settings(max_examples=40, deadline=None)
@given(
    pattern=patterns,
    text=documents,
    shards=st.integers(min_value=1, max_value=30),
)
def test_sharded_runlength_count_is_exact(pattern, text, shards):
    runtime = _runtime(pattern, text)
    assert count_sharded(
        runtime, text, shards=shards, kernel="runlength"
    ) == count_compiled(runtime, text)


@settings(max_examples=40, deadline=None)
@given(pattern=patterns, text=documents, data=st.data())
def test_runlength_summaries_compose_like_scalar_ones(pattern, text, data):
    """summary_runlength == shard_summary on every slice, and composing
    two adjacent run-length summaries equals the whole-buffer one."""
    runtime = _runtime(pattern, text)
    encoded = runtime.encode(text)
    buf, length = encoded.buffer, encoded.length
    cut = data.draw(st.integers(min_value=0, max_value=length))

    first = summary_runlength(runtime, buf[:cut], cut)
    second = summary_runlength(runtime, buf[cut:], length - cut)
    assert first == shard_summary(runtime, buf[:cut], cut)
    assert second == shard_summary(runtime, buf[cut:], length - cut)
    assert compose_summaries(first, second) == summary_runlength(
        runtime, buf, length
    )


@settings(max_examples=40, deadline=None)
@given(pattern=patterns, text=documents)
def test_subset_count_matches_dense_count(pattern, text):
    spanner = Spanner.from_regex(pattern)
    subset = spanner._otf_runtime_for_key(spanner._alphabet_key(text))
    runtime = spanner._runtime_for_key(spanner._alphabet_key(text))
    assert count_subset_runlength(subset, text) == count_compiled(
        runtime, text
    )


def test_adversarial_corpus_through_the_full_harness():
    """Every corpus document through the full cross-engine matrix —
    the harness's run-length pass pins counts and bit-identical arenas
    against every other engine on the same automaton."""
    for pattern in PATTERNS:
        spanner = Spanner.from_regex(pattern)
        for text in adversarial_documents(seed=23):
            assert_all_engines_agree(
                pattern, text, seed=23, streaming=False, spanner=spanner
            )


def test_runs_split_across_shard_boundaries_exactly():
    """A document of few giant runs, sharded so boundaries always land
    mid-run: the run-product summaries of interior shards must stitch
    to the exact count."""
    pattern = ".*x{a+}.*"
    text = "b" * 7 + "a" * 61 + "b" * 5 + "a" * 38 + "b" * 3
    runtime = _runtime(pattern, text)
    expected = count_compiled(runtime, text)
    assert expected > 0
    for shards in (2, 3, 5, 7, 11, len(text), len(text) + 3):
        assert (
            count_sharded(runtime, text, shards=shards, kernel="runlength")
            == expected
        )
