"""Property-based tests for the Census reduction and the algebra operators."""

from hypothesis import assume, given, settings, strategies as st

from repro.automata.nfa import NFA
from repro.automata.transforms import va_to_eva
from repro.algebra.automaton_ops import join_eva, project_eva, union_eva
from repro.algebra.operators import (
    join_mapping_sets,
    project_mapping_set,
    union_mapping_sets,
)
from repro.counting.census import census_count, census_to_spanner
from repro.regex.compiler import compile_to_va

ALPHABET = "ab"


# ---------------------------------------------------------------------- #
# Census (Theorem 5.2)
# ---------------------------------------------------------------------- #


@st.composite
def random_nfa(draw):
    """A small random NFA over a two-letter alphabet."""
    num_states = draw(st.integers(min_value=1, max_value=4))
    nfa = NFA()
    nfa.set_initial(0)
    for state in range(num_states):
        nfa.add_state(state)
    transitions = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_states - 1),
                st.sampled_from(list(ALPHABET)),
                st.integers(min_value=0, max_value=num_states - 1),
            ),
            max_size=8,
        )
    )
    for source, symbol, target in transitions:
        nfa.add_transition(source, symbol, target)
    finals = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_states - 1),
            min_size=1,
            max_size=num_states,
            unique=True,
        )
    )
    for state in finals:
        nfa.add_final(state)
    return nfa


@settings(max_examples=40, deadline=None)
@given(nfa=random_nfa(), length=st.integers(min_value=0, max_value=3))
def test_census_reduction_is_parsimonious(nfa, length):
    automaton, document = census_to_spanner(nfa, length)
    assert len(automaton.evaluate(document)) == census_count(nfa, length)


@settings(max_examples=25, deadline=None)
@given(nfa=random_nfa(), length=st.integers(min_value=1, max_value=3))
def test_census_reduction_yields_functional_va(nfa, length):
    assume(any(label is not None for _, label, _ in nfa.transitions()))
    automaton, _document = census_to_spanner(nfa, length)
    assert automaton.is_functional()


# ---------------------------------------------------------------------- #
# Algebra operators vs. set semantics (Proposition 4.4)
# ---------------------------------------------------------------------- #

# Functional regex formulas: every variable is captured on every match.
FUNCTIONAL_PATTERNS = [
    "x{a+}b*",
    "x{a*}b",
    "x{(a|b)+}",
    "a*x{b+}",
    "x{a}(a|b)*",
]

documents = st.text(alphabet=ALPHABET, min_size=0, max_size=4)


def eva_of(pattern):
    return va_to_eva(compile_to_va(pattern, ALPHABET))


@settings(max_examples=50, deadline=None)
@given(
    left=st.sampled_from(FUNCTIONAL_PATTERNS),
    right=st.sampled_from(FUNCTIONAL_PATTERNS),
    document=documents,
)
def test_join_construction_matches_set_join(left, right, document):
    left_eva, right_eva = eva_of(left), eva_of(right)
    joined = join_eva(left_eva, right_eva)
    assert joined.evaluate(document) == join_mapping_sets(
        left_eva.evaluate(document), right_eva.evaluate(document)
    )


@settings(max_examples=50, deadline=None)
@given(
    left=st.sampled_from(FUNCTIONAL_PATTERNS),
    right=st.sampled_from(FUNCTIONAL_PATTERNS),
    document=documents,
)
def test_union_construction_matches_set_union(left, right, document):
    left_eva, right_eva = eva_of(left), eva_of(right)
    union = union_eva(left_eva, right_eva)
    assert union.evaluate(document) == union_mapping_sets(
        left_eva.evaluate(document), right_eva.evaluate(document)
    )


@settings(max_examples=50, deadline=None)
@given(
    pattern=st.sampled_from(["x{a+}y{b*}", "x{a}y{b}", "y{a*}x{b+}"]),
    keep=st.sampled_from([["x"], ["y"], ["x", "y"], []]),
    document=documents,
)
def test_projection_construction_matches_set_projection(pattern, keep, document):
    automaton = eva_of(pattern)
    projected = project_eva(automaton, keep)
    assert projected.evaluate(document) == project_mapping_set(
        automaton.evaluate(document), keep
    )
