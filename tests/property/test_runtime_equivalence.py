"""Property-based tests: the compiled runtime equals the reference engine.

Random regex formulas (the same structural strategy as
``test_engine_equivalence``) are compiled once, then evaluated over random
documents with both the integer-indexed runtime (``engine="compiled"``)
and the legacy dict-based Algorithm 1 (``engine="reference"``).  The two
must produce identical mapping sets and identical counts — including after
a round trip through the portable DAG form used by the process-parallel
batch mode.
"""

from hypothesis import given, settings, strategies as st

from repro import Spanner
from repro.core.documents import DocumentCollection
from repro.regex.ast import (
    AnyChar,
    Capture,
    Concat,
    Epsilon,
    Literal,
    Optional,
    Plus,
    Star,
    Union,
)
from repro.runtime.batch import freeze_result, run_batch, thaw_result
from repro.runtime.compiled import compile_eva

ALPHABET = "ab"


def regex_nodes():
    """A strategy generating small regex-formula ASTs."""
    leaves = st.sampled_from([Epsilon(), AnyChar(), Literal("a"), Literal("b")])

    def extend(children):
        variable = st.sampled_from(["x", "y", "z"])
        return st.one_of(
            st.builds(lambda a, b: Concat([a, b]), children, children),
            st.builds(lambda a, b: Union([a, b]), children, children),
            st.builds(Star, children),
            st.builds(Plus, children),
            st.builds(Optional, children),
            st.builds(Capture, variable, children),
        )

    return st.recursive(leaves, extend, max_leaves=6)


documents = st.text(alphabet=ALPHABET, min_size=0, max_size=6)


@settings(max_examples=80, deadline=None)
@given(node=regex_nodes(), document=documents)
def test_compiled_engine_equals_reference_engine(node, document):
    spanner = Spanner.from_regex(node)
    reference = spanner.preprocess(document, engine="reference")
    compiled = spanner.preprocess(document, engine="compiled")
    assert set(spanner.evaluate(document, engine="compiled")) == set(
        spanner.evaluate(document, engine="reference")
    )
    assert compiled.count() == reference.count()


@settings(max_examples=40, deadline=None)
@given(node=regex_nodes(), document=documents)
def test_portable_dag_roundtrip_preserves_results(node, document):
    spanner = Spanner.from_regex(node)
    automaton = spanner.compiled(document)
    compiled = compile_eva(automaton, check_determinism=False)
    original = spanner.preprocess(document, engine="compiled")
    rebuilt = thaw_result(freeze_result(original, compiled), compiled)
    assert {str(m) for m in rebuilt} == {str(m) for m in original}
    assert rebuilt.count() == original.count()


@settings(max_examples=25, deadline=None)
@given(
    node=regex_nodes(),
    texts=st.lists(documents, min_size=1, max_size=4),
)
def test_batch_engines_agree_document_by_document(node, texts):
    spanner = Spanner.from_regex(node)
    collection = DocumentCollection.from_texts(texts)
    union_alphabet = "".join(sorted(collection.alphabet()))
    automaton = spanner.compiled(union_alphabet)
    compiled = compile_eva(automaton, check_determinism=False)
    by_engine = {
        engine: {
            doc_id: (frozenset(str(m) for m in result), result.count())
            for doc_id, result in run_batch(compiled, collection, engine=engine)
        }
        for engine in ("compiled", "reference")
    }
    assert by_engine["compiled"] == by_engine["reference"]
