"""Property-based tests for the core data structures.

Covers the LazyList single-assignment/lazy-copy semantics against a plain
Python list model, the Mapping algebra, and the Span ordering axioms.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.enumeration.lazylist import LazyList


# ---------------------------------------------------------------------- #
# Spans
# ---------------------------------------------------------------------- #

spans = st.builds(
    lambda a, b: Span(min(a, b), max(a, b)),
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=30),
)


@given(spans, spans, spans)
def test_span_ordering_is_total_and_transitive(a, b, c):
    assert (a <= b) or (b <= a)
    if a <= b and b <= c:
        assert a <= c


@given(spans)
def test_span_paper_round_trip(span):
    assert Span.from_paper(*span.to_paper()) == span


@given(spans, spans)
def test_span_concatenation_length(a, b):
    if a.end == b.begin:
        combined = a.concatenate(b)
        assert len(combined) == len(a) + len(b)


@given(spans, spans)
def test_span_containment_consistent_with_overlap(a, b):
    if a.contains(b) and not b.is_empty:
        assert a.overlaps(b)


# ---------------------------------------------------------------------- #
# Mappings
# ---------------------------------------------------------------------- #

variables = st.sampled_from(["x", "y", "z", "w"])
mappings = st.dictionaries(variables, spans, max_size=4).map(Mapping)


@given(mappings, mappings)
def test_mapping_compatibility_is_symmetric(a, b):
    assert a.compatible(b) == b.compatible(a)


@given(mappings, mappings)
def test_mapping_union_domain(a, b):
    if a.compatible(b):
        union = a.union(b)
        assert union.domain() == a.domain() | b.domain()
        for variable in a.domain():
            assert union[variable] == a[variable]


@given(mappings)
def test_mapping_restrict_then_union_is_identity(mapping):
    variables_list = sorted(mapping.domain())
    half = frozenset(variables_list[: len(variables_list) // 2])
    rest = mapping.domain() - half
    assert mapping.restrict(half).union(mapping.restrict(rest)) == mapping


@given(mappings, mappings)
def test_mapping_hash_consistent_with_equality(a, b):
    if a == b:
        assert hash(a) == hash(b)


# ---------------------------------------------------------------------- #
# LazyList model-based test
# ---------------------------------------------------------------------- #


def _chain_cells(lazy: LazyList) -> set[int]:
    """The ids of the cells in a list's view (white-box helper)."""
    cells: set[int] = set()
    cell = lazy._start
    while cell is not None:
        cells.add(id(cell))
        if cell is lazy._end:
            break
        cell = cell.next
    return cells


def _chains_disjoint(left: LazyList, right: LazyList) -> bool:
    """Whether two lists share no cell."""
    return not (_chain_cells(left) & _chain_cells(right))


class LazyListMachine(RuleBasedStateMachine):
    """Model-based test comparing LazyList against plain Python lists.

    The machine maintains a pool of (LazyList, model list) pairs and
    applies random add / lazycopy / append operations, checking after every
    step that each lazy list's contents equal its model.  ``append`` is
    only applied in the single-assignment discipline that Algorithm 1
    guarantees (a list is never extended twice through a shared end cell),
    mirroring how the algorithm uses the structure.
    """

    def __init__(self):
        super().__init__()
        self.pairs: list[tuple[LazyList, list]] = [(LazyList(), [])]
        self.counter = 0

    @rule()
    def fresh_list(self):
        if len(self.pairs) < 8:
            self.pairs.append((LazyList(), []))

    @rule(index=st.integers(min_value=0, max_value=7))
    def add(self, index):
        lazy, model = self.pairs[index % len(self.pairs)]
        self.counter += 1
        lazy.add(self.counter)
        model.insert(0, self.counter)

    @rule(index=st.integers(min_value=0, max_value=7))
    def lazycopy(self, index):
        if len(self.pairs) >= 8:
            return
        lazy, model = self.pairs[index % len(self.pairs)]
        self.pairs.append((lazy.lazycopy(), list(model)))

    @rule(
        source_index=st.integers(min_value=0, max_value=7),
        target_index=st.integers(min_value=0, max_value=7),
    )
    def append(self, source_index, target_index):
        source_index %= len(self.pairs)
        target_index %= len(self.pairs)
        if source_index == target_index:
            return
        source_lazy, source_model = self.pairs[source_index]
        target_lazy, target_model = self.pairs[target_index]
        if not _chains_disjoint(source_lazy, target_lazy):
            # `append` is only specified for disjoint chains, which is the
            # discipline Algorithm 1 guarantees (each state list is spliced
            # into at most one other list, and targets start out fresh).
            return
        try:
            target_lazy.append(source_lazy)
        except RuntimeError:
            # The target's end cell was already spliced elsewhere: the
            # operation must be refused and must leave the list untouched.
            return
        target_model.extend(source_model)

    @invariant()
    def lists_match_models(self):
        for lazy, model in self.pairs:
            assert lazy.to_list() == model
            assert len(lazy) == len(model)
            assert lazy.is_empty() == (not model)


LazyListMachine.TestCase.settings = settings(max_examples=30, stateful_step_count=30, deadline=None)
TestLazyListModel = LazyListMachine.TestCase
