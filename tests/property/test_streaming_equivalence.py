"""Property tests: chunk-fed evaluation is exactly whole-document evaluation.

Everything routes through the shared differential harness
(:mod:`harness`): for every spanner and document drawn, every facade
engine and the streaming evaluator — both emit modes, every adversarial
chunking, including one-character chunks and UTF-8 byte streams split
inside multi-byte sequences — must produce one and the same mapping set.

The deterministic tests add the seeded adversarial corpus (foreign
characters at chunk boundaries, empty documents, astral-plane symbols)
and the ``tailing-logs`` bounded-buffering guarantee: under
``emit="incremental"`` the peak buffered arena stays strictly below the
whole-document arena.
"""

from hypothesis import given, settings, strategies as st

from harness import adversarial_documents, assert_all_engines_agree

from repro import Spanner
from repro.regex.ast import (
    AnyChar,
    Capture,
    Concat,
    Epsilon,
    Literal,
    Optional,
    Plus,
    Star,
    Union,
)
from repro.regex.semantics import evaluate_regex
from repro.runtime.engine import evaluate_compiled_arena
from repro.workloads.collections import chunked_document, scenario

#: Documents deliberately range beyond the pattern alphabet ``ab``: the
#: extra characters are foreign to every pattern and exercise wildcard
#: expansion plus multi-byte chunk splits.
DOCUMENT_ALPHABET = "abé\x00"


def regex_nodes():
    """A strategy generating small regex-formula ASTs."""
    leaves = st.sampled_from([Epsilon(), AnyChar(), Literal("a"), Literal("b")])

    def extend(children):
        variable = st.sampled_from(["x", "y"])
        return st.one_of(
            st.builds(lambda a, b: Concat([a, b]), children, children),
            st.builds(lambda a, b: Union([a, b]), children, children),
            st.builds(Star, children),
            st.builds(Plus, children),
            st.builds(Optional, children),
            st.builds(Capture, variable, children),
        )

    return st.recursive(leaves, extend, max_leaves=5)


@settings(max_examples=30, deadline=None)
@given(
    node=regex_nodes(),
    document=st.text(alphabet=DOCUMENT_ALPHABET, min_size=0, max_size=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_streaming_agrees_with_every_engine_on_every_chunking(node, document, seed):
    agreed = assert_all_engines_agree(node, document, seed=seed)
    # Anchor the agreement against the paper's reference regex semantics,
    # so a bug shared by every engine cannot hide behind consensus.
    assert agreed == {str(m) for m in evaluate_regex(node, document)}


def test_adversarial_corpus_all_patterns_all_chunkings():
    patterns = [
        ".*x{a+}.*",
        "x{.*}",
        ".*x{a}b?y{.?}.*",
        "(a|b)*x{ab}(a|b)*",
    ]
    for pattern in patterns:
        spanner = Spanner.from_regex(pattern)
        for index, document in enumerate(adversarial_documents(seed=7)):
            assert_all_engines_agree(
                pattern, document, seed=index, spanner=spanner
            )


def test_tailing_logs_incremental_buffer_strictly_below_full_arena():
    """The bounded-buffering acceptance criterion, on the real scenario."""
    workload = scenario("tailing-logs", num_documents=2, scale=2500, seed=11)
    spanner = Spanner.from_regex(workload.pattern)
    for document in workload.collection:
        runtime = spanner.runtime(document)
        full = evaluate_compiled_arena(runtime, document)
        expected = {str(m) for m in full}
        assert expected, "the scenario must actually produce matches"

        evaluator = spanner.stream(alphabet=document.alphabet(), emit="incremental")
        settled = []
        for chunk in chunked_document(document, 2048):
            settled.extend(evaluator.feed(chunk))
        result = evaluator.finish()

        assert {str(m) for m in result} == expected
        # Matches settle while the stream is still running, ...
        assert settled, "no mapping settled before EOF"
        # ... and the buffered arena never grows to the whole-document one.
        assert evaluator.peak_arena_cells < len(full.cell_nodes), (
            f"peak {evaluator.peak_arena_cells} cells is not below the "
            f"whole-document arena ({len(full.cell_nodes)} cells)"
        )


def test_single_char_chunks_preserve_sprint_resume_on_tailing_logs():
    """Chunk boundaries inside quiescent runs (sprint interrupted per char)."""
    workload = scenario("tailing-logs", num_documents=1, scale=120, seed=3)
    document = next(iter(workload.collection))
    spanner = Spanner.from_regex(workload.pattern)
    expected = {str(m) for m in spanner.evaluate(document)}

    evaluator = spanner.stream(alphabet=document.alphabet(), emit="on_finish")
    for char in document.text:
        evaluator.feed(char)
    assert {str(m) for m in evaluator.finish()} == expected
