"""Property tests: class-compressed encoding + quiescent fast path ≡ reference.

Random regex formulas are compiled once over a fixed two-letter alphabet,
then evaluated over adversarial documents — empty strings, foreign
(out-of-alphabet) characters mid-run including low codepoints that collide
with class ids, single-class alphabets — by every compiled engine with the
quiescent-run fast path both enabled and disabled.  All of them must equal
the paper-faithful reference engine, mapping set and count alike.  A
hand-built automaton with zero silent states pins the regime in which the
fast path can never engage, and counting tests pin the "one encoding pass
per document and signature" invariant across the facade, the batch engine
and hybrid operator plans.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import Atom
from repro.automata.builders import EVABuilder
from repro.core.documents import Document, DocumentCollection
from repro.enumeration.evaluate import evaluate as reference_evaluate
from repro.regex.ast import (
    AnyChar,
    Capture,
    Concat,
    Epsilon,
    Literal,
    Optional,
    Plus,
    Star,
    Union,
)
from repro.runtime import encoding
from repro.runtime.compiled import compile_eva
from repro.runtime.engine import (
    count_compiled,
    evaluate_compiled,
    evaluate_compiled_arena,
)
from repro.runtime.operators import FusedLeaf, HashJoin
from repro.runtime.subset import count_subset, evaluate_subset_arena
from repro.spanners.spanner import Spanner

ALPHABET = "ab"

#: Document characters: the compiled alphabet, a latin-1 foreigner, a high
#: codepoint, and control characters that collide with low class ids.
ADVERSARIAL = ALPHABET + "z✗\x00\x01"


def regex_nodes():
    """A strategy generating small regex-formula ASTs (alphabet ``ab``)."""
    leaves = st.sampled_from([Epsilon(), AnyChar(), Literal("a"), Literal("b")])

    def extend(children):
        variable = st.sampled_from(["x", "y", "z"])
        return st.one_of(
            st.builds(lambda a, b: Concat([a, b]), children, children),
            st.builds(lambda a, b: Union([a, b]), children, children),
            st.builds(Star, children),
            st.builds(Plus, children),
            st.builds(Optional, children),
            st.builds(Capture, variable, children),
        )

    return st.recursive(leaves, extend, max_leaves=6)


documents = st.text(alphabet=ADVERSARIAL, min_size=0, max_size=8)


@settings(max_examples=60, deadline=None)
@given(node=regex_nodes(), text=documents)
def test_dense_engines_equal_reference_on_adversarial_documents(node, text):
    spanner = Spanner.from_regex(node)
    automaton = spanner.compiled(ALPHABET)
    compiled = compile_eva(automaton, check_determinism=False)
    reference = reference_evaluate(automaton, text, check_determinism=False)
    expected = set(reference)
    expected_count = reference.count()
    for fast_path in (True, False):
        document = Document(text)
        arena = evaluate_compiled_arena(compiled, document, fast_path=fast_path)
        assert set(arena) == expected
        assert arena.count() == expected_count
        legacy = evaluate_compiled(compiled, document, fast_path=fast_path)
        assert set(legacy) == expected
        assert count_compiled(compiled, document, fast_path=fast_path) == (
            expected_count
        )


@settings(max_examples=40, deadline=None)
@given(node=regex_nodes(), text=documents)
def test_subset_engines_equal_reference_on_adversarial_documents(node, text):
    spanner = Spanner.from_regex(node)
    automaton = spanner.compiled(ALPHABET)
    reference = reference_evaluate(automaton, text, check_determinism=False)
    expected = set(reference)
    expected_count = reference.count()
    subset_eva = spanner.otf_runtime(ALPHABET)
    for fast_path in (True, False):
        document = Document(text)
        dag = evaluate_subset_arena(subset_eva, document, fast_path=fast_path)
        assert set(dag) == expected
        assert dag.count() == expected_count
        assert count_subset(subset_eva, document, fast_path=fast_path) == (
            expected_count
        )


def zero_silent_eva():
    """A deterministic eVA in which *every* state has a variable transition,
    so the quiescent fast path can never engage."""
    return (
        EVABuilder()
        .initial("q0")
        .final("q2")
        .capture("q0", ["x"], [], "q1")
        .letter("q1", "ab", "q1")
        .capture("q1", [], ["x"], "q2")
        .capture("q2", ["y"], [], "sink")
        .capture("sink", [], ["y"], "sink")
        .build()
    )


@settings(max_examples=40, deadline=None)
@given(text=st.text(alphabet=ADVERSARIAL, min_size=0, max_size=10))
def test_zero_silent_automaton(text):
    automaton = zero_silent_eva()
    compiled = compile_eva(automaton, check_determinism=False)
    assert not any(compiled.silent)
    reference = reference_evaluate(automaton, text, check_determinism=False)
    expected = set(reference)
    for fast_path in (True, False):
        arena = evaluate_compiled_arena(compiled, Document(text), fast_path=fast_path)
        assert set(arena) == expected
        assert count_compiled(compiled, Document(text), fast_path=fast_path) == (
            reference.count()
        )


@settings(max_examples=20, deadline=None)
@given(text=st.text(alphabet="a", min_size=0, max_size=12))
def test_single_class_alphabet(text):
    spanner = Spanner.from_regex(".*x{a+}.*")
    automaton = spanner.compiled("a")
    compiled = compile_eva(automaton, check_determinism=False)
    assert compiled.num_classes == 1
    reference = reference_evaluate(automaton, text, check_determinism=False)
    arena = evaluate_compiled_arena(compiled, Document(text))
    assert set(arena) == set(reference)
    assert arena.count() == reference.count()


class TestEncodeOncePerSignature:
    def test_batch_encodes_each_document_once(self):
        shared = Document("abaab" * 30)
        twin = Document(shared.text)  # equal text, distinct cache
        collection = DocumentCollection(
            {"first": shared, "second": shared, "third": twin}
        )
        spanner = Spanner.from_regex(".*x{a+b}.*")
        # Warm the compilation cache so only encoding passes are counted.
        list(spanner.run_batch(collection))
        encoding.reset_encoding_passes()
        list(spanner.run_batch(collection))
        # Everything was already cached on the documents themselves.
        assert encoding.encoding_passes() == 0
        # A cold cache encodes once per distinct Document object.
        cold = DocumentCollection(
            {"first": Document(shared.text), "second": Document(shared.text)}
        )
        encoding.reset_encoding_passes()
        list(spanner.run_batch(cold))
        assert encoding.encoding_passes() == 2

    def test_hybrid_leaves_encode_once_per_signature(self):
        left = FusedLeaf(Atom(".*x{a+b}.*")).prepare(frozenset(ALPHABET))
        right = FusedLeaf(Atom(".*x{ab+}.*")).prepare(frozenset(ALPHABET))
        join = HashJoin([left, right])
        document = Document("aabb" * 25)
        signatures = {
            leaf.runtime.classing.signature for leaf in (left, right)
        }
        encoding.reset_encoding_passes()
        join.execute(document)
        first_run = encoding.encoding_passes()
        assert first_run <= len(signatures)
        # Re-executing the plan over the same document re-encodes nothing.
        join.execute(document)
        assert encoding.encoding_passes() == first_run
