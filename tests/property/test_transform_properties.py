"""Property-based tests for the automaton translations of Section 4."""

from hypothesis import given, settings, strategies as st

from repro.automata.analysis import is_functional, is_sequential
from repro.automata.markers import close, open_
from repro.automata.transforms import (
    determinize,
    eva_to_va,
    sequentialize,
    to_deterministic_sequential_eva,
    va_to_eva,
)
from repro.automata.va import VariableSetAutomaton

ALPHABET = "ab"
VARIABLES = ["x", "y"]
NUM_STATES = 4

documents = st.text(alphabet=ALPHABET, min_size=0, max_size=4)


@st.composite
def random_va(draw):
    """A small random VA (not necessarily sequential or functional)."""
    automaton = VariableSetAutomaton()
    automaton.set_initial(0)
    num_finals = draw(st.integers(min_value=1, max_value=2))
    for state in draw(
        st.lists(
            st.integers(min_value=0, max_value=NUM_STATES - 1),
            min_size=num_finals,
            max_size=num_finals,
            unique=True,
        )
    ):
        automaton.add_final(state)

    transitions = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=NUM_STATES - 1),
                st.one_of(
                    st.sampled_from(list(ALPHABET)),
                    st.sampled_from(
                        [open_(v) for v in VARIABLES] + [close(v) for v in VARIABLES]
                    ),
                ),
                st.integers(min_value=0, max_value=NUM_STATES - 1),
            ),
            min_size=1,
            max_size=10,
        )
    )
    for source, label, target in transitions:
        if isinstance(label, str):
            automaton.add_letter_transition(source, label, target)
        else:
            automaton.add_variable_transition(source, label, target)
    return automaton


@settings(max_examples=50, deadline=None)
@given(automaton=random_va(), document=documents)
def test_va_to_eva_preserves_semantics(automaton, document):
    assert va_to_eva(automaton).evaluate(document) == automaton.evaluate(document)


@settings(max_examples=50, deadline=None)
@given(automaton=random_va(), document=documents)
def test_eva_round_trip_preserves_semantics(automaton, document):
    extended = va_to_eva(automaton)
    assert eva_to_va(extended).evaluate(document) == automaton.evaluate(document)


@settings(max_examples=50, deadline=None)
@given(automaton=random_va(), document=documents)
def test_sequentialize_preserves_semantics_and_is_sequential(automaton, document):
    sequential = sequentialize(automaton)
    assert is_sequential(sequential)
    assert sequential.evaluate(document) == automaton.evaluate(document)


@settings(max_examples=50, deadline=None)
@given(automaton=random_va(), document=documents)
def test_determinization_preserves_semantics(automaton, document):
    extended = sequentialize(automaton)
    determinized = determinize(extended)
    assert determinized.is_deterministic()
    assert determinized.evaluate(document) == automaton.evaluate(document)


@settings(max_examples=40, deadline=None)
@given(automaton=random_va(), document=documents)
def test_full_pipeline_matches_constant_delay_evaluation(automaton, document):
    from repro.enumeration.evaluate import evaluate

    deterministic = to_deterministic_sequential_eva(automaton)
    assert deterministic.is_deterministic()
    assert is_sequential(deterministic)
    assert set(evaluate(deterministic, document)) == automaton.evaluate(document)


@settings(max_examples=40, deadline=None)
@given(automaton=random_va())
def test_functionality_preserved_by_va_to_eva(automaton):
    # Theorem 3.1: the translation preserves functionality (the converse
    # need not hold, because invalid VA runs have no eVA counterpart).
    if is_functional(automaton):
        assert is_functional(va_to_eva(automaton))
