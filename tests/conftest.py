"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

from repro.automata.transforms import to_deterministic_sequential_eva
from repro.workloads.spanners import (
    contact_pattern,
    figure1_document,
    figure2_va,
    figure3_eva,
    proposition42_va,
)

# Make the shared differential-testing harness (tests/harness.py)
# importable as `import harness` from every test package, with or
# without __init__.py files.
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def figure1_doc():
    """The 28-character document of the paper's Figure 1."""
    return figure1_document()


@pytest.fixture
def contact_regex():
    """The Example 2.1 regex formula."""
    return contact_pattern()


@pytest.fixture
def fig2_va():
    """The functional VA of Figure 2."""
    return figure2_va()


@pytest.fixture
def fig3_eva():
    """The deterministic functional eVA of Figure 3."""
    return figure3_eva()


@pytest.fixture
def fig3_det(fig3_eva):
    """Figure 3's automaton passed through the full compilation pipeline."""
    return to_deterministic_sequential_eva(fig3_eva, assume_sequential=True)


@pytest.fixture
def prop42_family():
    """The Proposition 4.2 family generator."""
    return proposition42_va
