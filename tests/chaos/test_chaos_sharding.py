"""Chaos tests: shard-parallel evaluation under injected worker faults.

Sharded runs have a simpler ladder than batch runs: a crashed or hung
shard worker flips the whole run to inline execution of the remaining
tasks (the decomposition is identical either way, so the arena stays
bit-identical), and the broken pool is marked so the facade rebuilds it
on the next call.
"""

import pytest

from repro.runtime.engine import count_compiled, evaluate_compiled_arena
from repro.runtime.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.runtime.sharding import ShardPool, count_sharded, evaluate_sharded
from repro.spanners.spanner import Spanner

LOG_PATTERN = r".*ERROR worker-w{[0-9]} .*"
LOG_TEXT = (
    "2024-03-09 03:45:14 INFO worker-1 ok\n"
    "2024-03-09 03:45:15 ERROR worker-5 timeout after 30s\n"
    "2024-03-09 03:45:16 INFO worker-2 ok\n"
) * 40

SHORT_DEADLINE = ResiliencePolicy(
    retry=RetryPolicy(max_attempts=2, base_delay=0.01, seed=3), task_deadline=10.0
)


@pytest.fixture(scope="module")
def compiled():
    spanner = Spanner.from_regex(LOG_PATTERN)
    return spanner._runtime_for_key(spanner._alphabet_key(LOG_TEXT))


@pytest.fixture(scope="module")
def serial_arena(compiled):
    return evaluate_compiled_arena(compiled, LOG_TEXT)


def test_shard_worker_kill_falls_back_inline_bit_identical(compiled, serial_arena):
    plan = FaultPlan(
        [FaultSpec(site="shard-task", action="kill", nth=1, count=10**6)]
    )
    pool = ShardPool(compiled, workers=2, faults=plan)
    try:
        arena = evaluate_sharded(
            compiled, LOG_TEXT, pool=pool, shards=4, policy=SHORT_DEADLINE
        )
        assert arena.to_portable() == serial_arena.to_portable()
        # The broken pool is marked closed so the facade's next call
        # rebuilds it instead of reusing dead workers.
        assert pool.closed
    finally:
        pool.close()


def test_shard_worker_raise_reruns_inline_bit_identical(compiled, serial_arena):
    plan = FaultPlan(
        [FaultSpec(site="shard-task", action="raise", nth=1, count=10**6)]
    )
    pool = ShardPool(compiled, workers=2, faults=plan)
    try:
        arena = evaluate_sharded(
            compiled, LOG_TEXT, pool=pool, shards=4, policy=SHORT_DEADLINE
        )
        assert arena.to_portable() == serial_arena.to_portable()
        # A worker that *answers* (with an exception) leaves the pool
        # healthy: the failed tasks rerun inline, the pool stays open.
        assert not pool.closed
    finally:
        pool.close()


def test_shard_worker_delay_past_deadline_falls_back(compiled, serial_arena):
    plan = FaultPlan(
        [
            FaultSpec(
                site="shard-task", action="delay", nth=1, count=10**6, seconds=1.0
            )
        ]
    )
    pool = ShardPool(compiled, workers=2, faults=plan)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0),
        task_deadline=0.2,
    )
    try:
        arena = evaluate_sharded(
            compiled, LOG_TEXT, pool=pool, shards=4, policy=policy
        )
        assert arena.to_portable() == serial_arena.to_portable()
        assert pool.closed
    finally:
        pool.close()


def test_count_sharded_survives_kills(compiled):
    expected = count_compiled(compiled, LOG_TEXT)
    plan = FaultPlan(
        [FaultSpec(site="shard-task", action="kill", nth=1, count=10**6)]
    )
    pool = ShardPool(compiled, workers=2, faults=plan)
    try:
        assert (
            count_sharded(
                compiled, LOG_TEXT, pool=pool, shards=4, policy=SHORT_DEADLINE
            )
            == expected
        )
    finally:
        pool.close()


def test_inline_sharded_run_ignores_parent_fault_plan(compiled, serial_arena):
    # A pool-less sharded run executes in the parent; an installed plan
    # must not leak into it through the inline task runner (the inline
    # path is the exactness backstop and clears the plan around each
    # task).  The plan *does* apply to direct evaluation in this
    # process, which is why a pooled run is used for injection instead.
    from repro.runtime import resilience

    plan = FaultPlan([FaultSpec(site="shard-task", action="raise", nth=1)])
    resilience.install_fault_plan(plan)
    try:
        with pytest.raises(InjectedFault):
            resilience.maybe_fault("shard-task")
    finally:
        resilience.clear_fault_plan()
