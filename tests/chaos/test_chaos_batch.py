"""Chaos tests: batch evaluation under injected kills, raises and delays.

Every scenario pins the layer's one contract — **exactness or a typed
error**: whatever faults are injected, a supervised batch either yields
results bit-identical to the serial engine or records the affected
documents in its failure report.  No hangs (the suite-wide alarm in
conftest.py), no tracebacks, no silently dropped documents.

Workers are kept at 1 so the per-process fault arrival counters are
deterministic: with a single worker the sequence of task arrivals — and
therefore of injected faults — is a pure function of the plan.
"""

import pytest

from repro.core.documents import DocumentCollection
from repro.core.errors import ResourceLimitError
from repro.runtime.resilience import (
    FailureReport,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    ResourceBudget,
    RetryPolicy,
)
from repro.spanners.spanner import Spanner

PATTERN = ".*x{a+} .*"

#: Retries back off from 10ms and the pool is given 20s per task — far
#: past any healthy task here, so a deadline trip is always deliberate.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05, seed=7)


@pytest.fixture(scope="module")
def spanner():
    return Spanner.from_regex(PATTERN)


@pytest.fixture(scope="module")
def documents():
    return DocumentCollection(
        {f"doc{index}": "aa bb aaa cc " * (index + 1) for index in range(8)}
    )


@pytest.fixture(scope="module")
def serial_results(spanner, documents):
    return {doc_id: result.to_portable() for doc_id, result in spanner.run_batch(documents)}


def run_supervised(spanner, documents, policy, report, **kwargs):
    kwargs.setdefault("mode", "processes")
    kwargs.setdefault("max_workers", 1)
    kwargs.setdefault("chunk_size", 2)
    return {
        doc_id: result.to_portable()
        for doc_id, result in spanner.run_batch(
            documents, policy=policy, report=report, **kwargs
        )
    }


def policy_with(faults, **overrides):
    overrides.setdefault("retry", FAST_RETRY)
    overrides.setdefault("task_deadline", 20.0)
    return ResiliencePolicy(faults=faults, **overrides)


class TestInjectedRaise:
    def test_first_task_raise_is_retried_to_exact_results(
        self, spanner, documents, serial_results
    ):
        report = FailureReport()
        plan = FaultPlan([FaultSpec(site="task", action="raise", nth=1)])
        results = run_supervised(spanner, documents, policy_with(plan), report)
        assert results == serial_results
        counters = report.as_dict()["counters"]
        assert counters["tasks_retried"] >= 1
        assert counters["documents_quarantined"] == 0

    def test_evaluate_site_raise_is_retried_to_exact_results(
        self, spanner, documents, serial_results
    ):
        report = FailureReport()
        plan = FaultPlan([FaultSpec(site="evaluate", action="raise", nth=1)])
        results = run_supervised(spanner, documents, policy_with(plan), report)
        assert results == serial_results
        assert report.tasks_retried >= 1

    def test_encode_site_raise_is_retried_to_exact_results(
        self, spanner, documents, serial_results
    ):
        report = FailureReport()
        plan = FaultPlan([FaultSpec(site="encode", action="raise", nth=1)])
        results = run_supervised(spanner, documents, policy_with(plan), report)
        assert results == serial_results
        assert report.tasks_retried >= 1

    def test_persistent_raise_isolates_inline_and_stays_exact(
        self, spanner, documents, serial_results
    ):
        # The worker answers (so the pool is healthy) but every task
        # raises: after the retry budget each task is isolated inline —
        # where the plan is never installed — and the results stay exact.
        report = FailureReport()
        plan = FaultPlan(
            [FaultSpec(site="task", action="raise", nth=1, count=10**6)]
        )
        results = run_supervised(spanner, documents, policy_with(plan), report)
        assert results == serial_results
        assert report.inline_fallbacks >= 1
        assert len(report) == 0


class TestWorkerKill:
    def test_kill_on_second_arrival_recovers_exactly(
        self, spanner, documents, serial_results, clean_metrics
    ):
        # Each worker survives its first task and dies on its second; the
        # lost task is detected via the pid-set change and resubmitted
        # (a respawned worker's arrival counter restarts at zero).  The
        # escalation ladder may or may not spend its pool rebuild along
        # the way — what is pinned is that no document is lost and the
        # results are bit-identical.
        report = FailureReport()
        plan = FaultPlan([FaultSpec(site="task", action="kill", nth=2, count=1)])
        results = run_supervised(spanner, documents, policy_with(plan), report)
        assert results == serial_results
        counters = report.as_dict()["counters"]
        assert counters["worker_crashes"] >= 1
        assert counters["documents_quarantined"] == 0
        assert clean_metrics.snapshot()["worker_crashes"] >= 1

    def test_kill_storm_rebuilds_once_then_demotes_inline(
        self, spanner, documents, serial_results
    ):
        # Every task kills its worker: retries exhaust, the one pool
        # rebuild is spent (the fresh pool kills too), and the run is
        # demoted to inline serial evaluation — results exactly match.
        report = FailureReport()
        plan = FaultPlan(
            [FaultSpec(site="task", action="kill", nth=1, count=10**6)]
        )
        results = run_supervised(spanner, documents, policy_with(plan), report)
        assert results == serial_results
        counters = report.as_dict()["counters"]
        assert counters["pool_rebuilds"] == 1
        assert counters["inline_fallbacks"] >= 1
        assert counters["documents_quarantined"] == 0


class TestDeadline:
    def test_delay_past_deadline_falls_back_exactly(
        self, spanner, documents, serial_results
    ):
        # Every task dawdles past the deadline; the supervisor treats the
        # misses as crashes, spends the rebuild, then demotes inline.
        report = FailureReport()
        plan = FaultPlan(
            [FaultSpec(site="task", action="delay", nth=1, count=10**6, seconds=1.0)]
        )
        policy = policy_with(
            plan, retry=RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0),
            task_deadline=0.2,
        )
        results = run_supervised(spanner, documents, policy, report)
        assert results == serial_results
        counters = report.as_dict()["counters"]
        assert counters["deadlines_exceeded"] >= 1
        assert counters["inline_fallbacks"] >= 1


class TestQuarantine:
    @pytest.fixture
    def mixed(self):
        docs = {f"doc{index}": "aa bb aaa cc " * (index + 1) for index in range(4)}
        docs["poison"] = "a" * 500
        docs["doc9"] = "aa cc"
        return DocumentCollection(docs)

    @pytest.mark.parametrize("mode", ["serial", "processes"])
    def test_oversized_document_is_quarantined_not_fatal(self, spanner, mixed, mode):
        report = FailureReport()
        policy = ResiliencePolicy(
            retry=FAST_RETRY,
            task_deadline=20.0,
            quarantine=True,
            budget=ResourceBudget(max_document_chars=400),
        )
        kwargs = {"mode": mode}
        if mode == "processes":
            kwargs.update(max_workers=1, chunk_size=2)
        results = dict(spanner.run_batch(mixed, policy=policy, report=report, **kwargs))
        assert "poison" not in results
        assert set(results) == set(mixed.ids()) - {"poison"}
        healthy = {doc_id: r.to_portable() for doc_id, r in results.items()}
        serial = {
            doc_id: r.to_portable()
            for doc_id, r in spanner.run_batch(mixed)
            if doc_id != "poison"
        }
        assert healthy == serial
        [record] = report.quarantined
        assert record.doc_id == "poison"
        assert record.stage == "guard"
        assert record.error_type == "ResourceLimitError"

    def test_without_quarantine_the_guard_error_is_typed_and_fatal(
        self, spanner, mixed
    ):
        policy = ResiliencePolicy(
            retry=FAST_RETRY,
            task_deadline=20.0,
            budget=ResourceBudget(max_document_chars=400),
        )
        with pytest.raises(ResourceLimitError, match="exceeds the per-document"):
            dict(
                spanner.run_batch(
                    mixed, mode="processes", max_workers=1, policy=policy
                )
            )


class TestFaultPlanDeterminism:
    def test_same_plan_same_counters(self, spanner, documents, serial_results):
        plan_spec = [FaultSpec(site="task", action="raise", nth=1, count=2)]
        counter_runs = []
        for _ in range(2):
            report = FailureReport()
            results = run_supervised(
                spanner, documents, policy_with(FaultPlan(plan_spec)), report
            )
            assert results == serial_results
            counter_runs.append(report.as_dict()["counters"])
        assert counter_runs[0] == counter_runs[1]
