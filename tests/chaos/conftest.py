"""Chaos-suite fixtures: every test runs under an explicit wall-clock bound.

The whole point of the fault-tolerance layer is that supervised runs
*never hang*; a regression here would otherwise turn into a CI timeout
with no traceback.  The alarm fires well past any expected runtime, so a
trip always means a genuine supervision bug.
"""

import signal

import pytest

from repro.runtime.resilience import RESILIENCE_METRICS

#: Per-test wall-clock bound (seconds).  Generous: the slowest chaos
#: scenario (retries + a pool rebuild + inline demotion) completes in a
#: few seconds on a loaded machine.
CHAOS_DEADLINE = 120


@pytest.fixture(autouse=True)
def chaos_deadline():
    def on_alarm(signum, frame):
        raise TimeoutError(
            f"chaos test exceeded its {CHAOS_DEADLINE}s deadline — a "
            "supervised execution hung, which the resilience layer must "
            "never allow"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(CHAOS_DEADLINE)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def clean_metrics():
    """A zeroed process-wide counter set, restored-by-reset afterwards."""
    RESILIENCE_METRICS.reset()
    yield RESILIENCE_METRICS
    RESILIENCE_METRICS.reset()
