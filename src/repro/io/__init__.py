"""Serialization of automata and mappings (JSON and Graphviz)."""

from repro.io.serialization import (
    eva_from_dict,
    eva_to_dict,
    load_automaton,
    mapping_to_dict,
    save_automaton,
    va_from_dict,
    va_to_dict,
)

__all__ = [
    "eva_from_dict",
    "eva_to_dict",
    "load_automaton",
    "mapping_to_dict",
    "save_automaton",
    "va_from_dict",
    "va_to_dict",
]
