"""JSON (de)serialization of automata and mappings.

Compiling a spanner into a deterministic sequential eVA can dominate the
cost of small evaluation jobs, so being able to persist a compiled automaton
and reload it later is a practical necessity.  The format is plain JSON:

.. code-block:: json

    {
      "kind": "eva",
      "states": [0, 1],
      "initial": 0,
      "finals": [1],
      "letter_transitions": [[0, "a", 1]],
      "variable_transitions": [[0, [["x", "open"]], 1]]
    }

States are serialized as-is when they are JSON representable (ints or
strings); automata produced by the compilation pipeline always have integer
states (see :func:`repro.automata.transforms.relabel_states`).
"""

from __future__ import annotations

import json
import os
from typing import Mapping as TypingMapping

from repro.core.errors import ReproError
from repro.core.mappings import Mapping
from repro.automata.eva import ExtendedVA
from repro.automata.markers import Marker, MarkerSet
from repro.automata.va import VariableSetAutomaton

__all__ = [
    "va_to_dict",
    "va_from_dict",
    "eva_to_dict",
    "eva_from_dict",
    "expression_to_dict",
    "expression_from_dict",
    "save_automaton",
    "load_automaton",
    "mapping_to_dict",
]


class SerializationError(ReproError, ValueError):
    """Raised when an automaton document cannot be (de)serialized."""


def _check_state(state: object) -> object:
    if not isinstance(state, (int, str)):
        raise SerializationError(
            f"only automata with int or str states can be serialized, got {state!r}; "
            "apply repro.automata.transforms.relabel_states first"
        )
    return state


def _marker_to_json(marker: Marker) -> list:
    return [marker.variable, "open" if marker.is_open else "close"]


def _marker_from_json(payload: object) -> Marker:
    if not isinstance(payload, (list, tuple)) or len(payload) != 2:
        raise SerializationError(f"malformed marker {payload!r}")
    variable, kind = payload
    if kind not in ("open", "close"):
        raise SerializationError(f"malformed marker kind {kind!r}")
    return Marker(variable, kind == "open")


# ---------------------------------------------------------------------- #
# Classic VA
# ---------------------------------------------------------------------- #


def va_to_dict(automaton: VariableSetAutomaton) -> dict:
    """Serialize a classic VA into a JSON-compatible dictionary."""
    letter, variable = [], []
    for source, label, target in automaton.transitions():
        if isinstance(label, Marker):
            variable.append([_check_state(source), _marker_to_json(label), _check_state(target)])
        else:
            letter.append([_check_state(source), label, _check_state(target)])
    return {
        "kind": "va",
        "states": sorted((_check_state(s) for s in automaton.states), key=repr),
        "initial": _check_state(automaton.initial),
        "finals": sorted((_check_state(s) for s in automaton.finals), key=repr),
        "letter_transitions": letter,
        "variable_transitions": variable,
    }


def va_from_dict(payload: TypingMapping) -> VariableSetAutomaton:
    """Rebuild a classic VA from :func:`va_to_dict` output."""
    if payload.get("kind") != "va":
        raise SerializationError(f"expected kind 'va', got {payload.get('kind')!r}")
    automaton = VariableSetAutomaton()
    for state in payload.get("states", []):
        automaton.add_state(state)
    automaton.set_initial(payload["initial"])
    for state in payload.get("finals", []):
        automaton.add_final(state)
    for source, symbol, target in payload.get("letter_transitions", []):
        automaton.add_letter_transition(source, symbol, target)
    for source, marker, target in payload.get("variable_transitions", []):
        automaton.add_variable_transition(source, _marker_from_json(marker), target)
    return automaton


# ---------------------------------------------------------------------- #
# Extended VA
# ---------------------------------------------------------------------- #


def eva_to_dict(automaton: ExtendedVA) -> dict:
    """Serialize an extended VA into a JSON-compatible dictionary."""
    letter, variable = [], []
    for source, label, target in automaton.transitions():
        if isinstance(label, MarkerSet):
            variable.append(
                [
                    _check_state(source),
                    [_marker_to_json(marker) for marker in label.canonical_order()],
                    _check_state(target),
                ]
            )
        else:
            letter.append([_check_state(source), label, _check_state(target)])
    return {
        "kind": "eva",
        "states": sorted((_check_state(s) for s in automaton.states), key=repr),
        "initial": _check_state(automaton.initial),
        "finals": sorted((_check_state(s) for s in automaton.finals), key=repr),
        "letter_transitions": letter,
        "variable_transitions": variable,
    }


def eva_from_dict(payload: TypingMapping) -> ExtendedVA:
    """Rebuild an extended VA from :func:`eva_to_dict` output."""
    if payload.get("kind") != "eva":
        raise SerializationError(f"expected kind 'eva', got {payload.get('kind')!r}")
    automaton = ExtendedVA()
    for state in payload.get("states", []):
        automaton.add_state(state)
    automaton.set_initial(payload["initial"])
    for state in payload.get("finals", []):
        automaton.add_final(state)
    for source, symbol, target in payload.get("letter_transitions", []):
        automaton.add_letter_transition(source, symbol, target)
    for source, markers, target in payload.get("variable_transitions", []):
        marker_set = MarkerSet(_marker_from_json(marker) for marker in markers)
        automaton.add_variable_transition(source, marker_set, target)
    return automaton


# ---------------------------------------------------------------------- #
# Spanner-algebra expressions
# ---------------------------------------------------------------------- #


def expression_to_dict(expression) -> dict:
    """Serialize a :class:`~repro.algebra.expressions.SpannerExpression`.

    The tree structure maps one-to-one onto nested dictionaries; atoms
    embed their source either as a regex pattern (``str(ast)`` renders the
    concrete syntax the parser accepts, so the round trip is exact) or as
    a :func:`va_to_dict` / :func:`eva_to_dict` automaton document.  This is
    the form the batch engine can use to ship expression-backed spanners
    to workers that do not share memory with the parent.
    """
    from repro.algebra.expressions import Atom, Join, Projection, UnionExpr
    from repro.regex.ast import RegexNode

    if isinstance(expression, Atom):
        source = expression.source
        if isinstance(source, RegexNode):
            payload: dict = {"kind": "regex", "pattern": str(source)}
        elif isinstance(source, ExtendedVA):
            payload = eva_to_dict(source)
        elif isinstance(source, VariableSetAutomaton):
            payload = va_to_dict(source)
        else:
            raise SerializationError(f"cannot serialize atom source {source!r}")
        return {"kind": "expression", "op": "atom", "source": payload}
    if isinstance(expression, Projection):
        return {
            "kind": "expression",
            "op": "project",
            "keep": sorted(expression.keep),
            "child": expression_to_dict(expression.child),
        }
    if isinstance(expression, (UnionExpr, Join)):
        return {
            "kind": "expression",
            "op": "union" if isinstance(expression, UnionExpr) else "join",
            "left": expression_to_dict(expression.left),
            "right": expression_to_dict(expression.right),
        }
    raise SerializationError(f"cannot serialize expression {expression!r}")


def expression_from_dict(payload: TypingMapping):
    """Rebuild a spanner-algebra expression from :func:`expression_to_dict`."""
    from repro.algebra.expressions import Atom, Join, Projection, UnionExpr
    from repro.regex.parser import parse_regex

    if payload.get("kind") != "expression":
        raise SerializationError(
            f"expected kind 'expression', got {payload.get('kind')!r}"
        )
    op = payload.get("op")
    if op == "atom":
        source = payload["source"]
        kind = source.get("kind")
        if kind == "regex":
            return Atom(parse_regex(source["pattern"]))
        if kind == "eva":
            return Atom(eva_from_dict(source))
        if kind == "va":
            return Atom(va_from_dict(source))
        raise SerializationError(f"unknown atom source kind {kind!r}")
    if op == "project":
        return Projection(expression_from_dict(payload["child"]), payload["keep"])
    if op in ("union", "join"):
        left = expression_from_dict(payload["left"])
        right = expression_from_dict(payload["right"])
        return UnionExpr(left, right) if op == "union" else Join(left, right)
    raise SerializationError(f"unknown expression op {op!r}")


# ---------------------------------------------------------------------- #
# Files and mappings
# ---------------------------------------------------------------------- #


def save_automaton(
    automaton: VariableSetAutomaton | ExtendedVA, path: str | os.PathLike
) -> None:
    """Serialize *automaton* to a JSON file."""
    if isinstance(automaton, ExtendedVA):
        payload = eva_to_dict(automaton)
    elif isinstance(automaton, VariableSetAutomaton):
        payload = va_to_dict(automaton)
    else:
        raise SerializationError(f"cannot serialize {automaton!r}")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_automaton(path: str | os.PathLike) -> VariableSetAutomaton | ExtendedVA:
    """Load an automaton previously written by :func:`save_automaton`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    kind = payload.get("kind")
    if kind == "va":
        return va_from_dict(payload)
    if kind == "eva":
        return eva_from_dict(payload)
    raise SerializationError(f"unknown automaton kind {kind!r}")


def mapping_to_dict(mapping: Mapping, document: object | None = None) -> dict:
    """Serialize a mapping (optionally with the extracted text) to a dictionary."""
    payload: dict = {
        variable: {"begin": span.begin, "end": span.end}
        for variable, span in mapping.items()
    }
    if document is not None:
        for variable, span in mapping.items():
            payload[variable]["text"] = span.content(document)
    return payload
