"""The Census problem and the reduction of Theorem 5.2.

The *Census problem* asks, given an NFA ``B`` and a length ``n``, how many
distinct words of length ``n`` the NFA accepts.  Theorem 5.2 shows that
counting the outputs of a functional VA is SpanL-complete by reducing
Census to it parsimoniously: the reduction builds a functional VA
``A_{B,n}`` and a document ``d_{B,n}`` such that ``|⟦A_{B,n}⟧(d_{B,n})|``
equals the Census count.

The construction below generalizes the paper's two-letter alphabet to any
finite alphabet: position ``i`` of a candidate word is encoded by one
document block ``"#" + "c" * |Σ|`` and the symbol chosen at that position
by which ``c`` of the block the capture variable ``x_i`` wraps.

This module provides the reduction itself, a ground-truth Census solver
(dynamic programming over the determinized NFA), and a convenience wrapper
that solves Census *through* the spanner counting machinery — the
round-trip the property-based tests verify to be parsimonious.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.documents import Document
from repro.automata.nfa import NFA
from repro.automata.va import VariableSetAutomaton

__all__ = ["CensusInstance", "census_count", "census_to_spanner"]


def census_count(nfa: NFA, length: int) -> int:
    """Ground truth: the number of distinct words of *length* accepted by *nfa*.

    Computed by determinizing the NFA and counting paths by dynamic
    programming, so every accepted word is counted exactly once.
    """
    return nfa.count_words_of_length(length)


def census_to_spanner(nfa: NFA, length: int) -> tuple[VariableSetAutomaton, Document]:
    """The parsimonious reduction of Theorem 5.2.

    Returns a functional VA ``A_{B,n}`` and a document ``d_{B,n}`` such
    that the number of output mappings equals the Census count of
    ``(nfa, length)``.
    """
    alphabet = sorted(nfa.alphabet())
    k = len(alphabet)
    if k == 0:
        # An NFA without letter transitions accepts at most the empty word.
        alphabet = ["a"]
        k = 1
    symbol_index = {symbol: index for index, symbol in enumerate(alphabet)}

    document = Document(("#" + "c" * k) * length)

    automaton = VariableSetAutomaton()
    automaton.set_initial(("level", nfa.initial, 0))
    for final in nfa.finals:
        automaton.add_final(("level", final, length))

    if length == 0:
        # The empty word is accepted exactly when the ε-closure of the
        # initial state contains a final state.
        if nfa.epsilon_closure({nfa.initial}) & nfa.finals:
            automaton.add_final(("level", nfa.initial, 0))
        return automaton, document

    # ε-transitions of the NFA do not consume a word position; they are
    # compiled away by working on the ε-closure relation.
    def closure_targets(state) -> frozenset:
        return nfa.epsilon_closure({state})

    for level in range(1, length + 1):
        variable = f"x{level}"
        for source, label, target in nfa.transitions():
            if label is None:
                continue
            offset = symbol_index[label]
            # The gadget reads:  '#'  'c'*offset  x⊢  'c'  ⊣x  'c'*(k-1-offset)
            for origin in _origins(nfa, source):
                start = ("level", origin, level - 1)
                previous = start
                step = 0
                for symbol in "#" + "c" * offset:
                    nxt = ("gadget", origin, source, label, target, level, step)
                    automaton.add_letter_transition(previous, symbol, nxt)
                    previous = nxt
                    step += 1
                opened = ("gadget", origin, source, label, target, level, step)
                automaton.add_open_transition(previous, variable, opened)
                previous = opened
                step += 1
                read_c = ("gadget", origin, source, label, target, level, step)
                automaton.add_letter_transition(previous, "c", read_c)
                previous = read_c
                step += 1
                remaining = k - 1 - offset
                if remaining == 0:
                    # Close the variable and land on the level state of the
                    # ε-closure of the NFA target.
                    for landing in closure_targets(target):
                        automaton.add_close_transition(
                            previous, variable, ("level", landing, level)
                        )
                else:
                    closed = ("gadget", origin, source, label, target, level, step)
                    automaton.add_close_transition(previous, variable, closed)
                    previous = closed
                    step += 1
                    for index in range(remaining):
                        if index == remaining - 1:
                            for landing in closure_targets(target):
                                automaton.add_letter_transition(
                                    previous, "c", ("level", landing, level)
                                )
                        else:
                            nxt = ("gadget", origin, source, label, target, level, step)
                            automaton.add_letter_transition(previous, "c", nxt)
                            previous = nxt
                            step += 1
    return automaton, document


def _origins(nfa: NFA, state) -> frozenset:
    """States whose ε-closure contains *state* (including *state* itself).

    A word-position transition of the reduction may start from any state
    that can silently reach the source of the NFA transition.
    """
    origins = {state}
    for candidate in nfa.states:
        if state in nfa.epsilon_closure({candidate}):
            origins.add(candidate)
    return frozenset(origins)


@dataclass(frozen=True)
class CensusInstance:
    """A Census instance ``(B, n)`` with solvers at different abstraction levels."""

    nfa: NFA
    length: int

    def solve_directly(self) -> int:
        """Solve by dynamic programming over the determinized NFA."""
        return census_count(self.nfa, self.length)

    def solve_by_enumeration(self) -> int:
        """Solve by brute-force enumeration of the accepted words."""
        return sum(1 for _ in self.nfa.accepted_words(self.length))

    def to_spanner(self) -> tuple[VariableSetAutomaton, Document]:
        """Materialize the Theorem 5.2 reduction."""
        return census_to_spanner(self.nfa, self.length)

    def solve_via_spanner(self) -> int:
        """Solve by counting the outputs of the reduction's spanner.

        The automaton is compiled to a deterministic sequential eVA and
        counted with Algorithm 3, exercising the full pipeline the paper
        describes (and paying the determinization cost that Theorem 5.2
        says cannot be avoided in general).
        """
        from repro.automata.transforms import to_deterministic_sequential_eva
        from repro.counting.count import count_mappings

        automaton, document = self.to_spanner()
        deterministic = to_deterministic_sequential_eva(automaton, assume_sequential=True)
        return count_mappings(deterministic, document)

    def solve_via_compiled_spanner(self, *, repeat: int = 1) -> int:
        """Solve through the compiled runtime's integer Algorithm 3.

        The same reduction as :meth:`solve_via_spanner`, but counted by
        :func:`repro.runtime.engine.count_compiled` on the dense
        class-indexed tables, with one reusable
        :class:`~repro.runtime.engine.EvaluationScratch` across *repeat*
        counting passes — the steady-state shape of the census benchmark
        (compile once, count many times, allocate nothing per pass).
        """
        from repro.automata.transforms import to_deterministic_sequential_eva
        from repro.runtime.compiled import compile_eva
        from repro.runtime.engine import EvaluationScratch, count_compiled

        automaton, document = self.to_spanner()
        deterministic = to_deterministic_sequential_eva(automaton, assume_sequential=True)
        compiled = compile_eva(deterministic, check_determinism=False)
        scratch = EvaluationScratch(compiled)
        total = 0
        for _ in range(max(1, repeat)):
            total = count_compiled(compiled, document, scratch=scratch)
        return total
