"""Algorithm 3: counting ``|⟦A⟧(d)|`` for deterministic sequential eVA.

Theorem 5.1 of the paper states that the number of output mappings of a
deterministic sequential extended VA can be computed in ``O(|A| × |d|)``.
The algorithm mirrors the constant-delay preprocessing (Algorithm 1) but
keeps, per state, only the *number* of partial runs instead of their
compact representation: determinism guarantees each partial run encodes a
distinct partial mapping, and sequentiality guarantees every accepting run
contributes a (valid) output.

The dict-based loop below is the paper-faithful reference; the compiled
runtime provides integer rewrites of the same algorithm
(:func:`repro.runtime.engine.count_compiled` on dense tables,
:func:`repro.runtime.subset.count_subset` on the lazily determinized
subset automaton) which the :class:`~repro.spanners.Spanner` facade
selects through its execution plan.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.documents import as_text
from repro.core.errors import NotDeterministicError, NotSequentialError
from repro.automata.eva import ExtendedVA

__all__ = ["count_mappings"]

State = Hashable


def count_mappings(
    automaton: ExtendedVA,
    document: object,
    *,
    check_determinism: bool = True,
    check_sequentiality: bool = False,
) -> int:
    """Count ``|⟦A⟧(d)|`` in time ``O(|A| × |d|)`` (Theorem 5.1).

    The flags mirror :func:`repro.enumeration.evaluate.evaluate`: the
    determinism check is cheap and on by default, the sequentiality check
    is potentially expensive and off by default.  Counting a
    non-deterministic or non-sequential automaton with this algorithm
    over- or under-counts, hence the guards.
    """
    if not automaton.has_initial:
        return 0
    if check_determinism and not automaton.is_deterministic():
        raise NotDeterministicError("Algorithm 3 requires a deterministic extended VA")
    if check_sequentiality and not automaton.is_sequential():
        raise NotSequentialError("Algorithm 3 requires a sequential extended VA")

    text = as_text(document)

    variable_transitions: dict[State, list[tuple[object, State]]] = {}
    letter_transitions: dict[State, dict[str, State]] = {}
    for state in automaton.states:
        outgoing = list(automaton.variable_transitions_from(state))
        if outgoing:
            variable_transitions[state] = outgoing
        letters = {
            symbol: target for symbol, target in automaton.letter_transitions_from(state)
        }
        if letters:
            letter_transitions[state] = letters

    # counts[q] = number of partial runs of A over the processed prefix
    # that end in state q.
    counts: dict[State, int] = {automaton.initial: 1}

    def capturing() -> None:
        snapshot = list(counts.items())
        for state, amount in snapshot:
            for _marker_set, target in variable_transitions.get(state, ()):
                counts[target] = counts.get(target, 0) + amount

    def reading(symbol: str) -> None:
        nonlocal counts
        previous = counts
        counts = {}
        for state, amount in previous.items():
            target = letter_transitions.get(state, {}).get(symbol)
            if target is None:
                continue
            counts[target] = counts.get(target, 0) + amount

    for symbol in text:
        capturing()
        reading(symbol)
    capturing()

    return sum(amount for state, amount in counts.items() if state in automaton.finals)
