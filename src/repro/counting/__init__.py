"""Counting the outputs of document spanners (Section 5 of the paper)."""

from repro.counting.count import count_mappings
from repro.counting.census import CensusInstance, census_count, census_to_spanner

__all__ = ["CensusInstance", "census_count", "census_to_spanner", "count_mappings"]
