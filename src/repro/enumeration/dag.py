"""Nodes of the reverse-dual DAG built by Algorithm 1.

Each node corresponds to one *annotated variable transition* ``(S, i)`` of
the product automaton of the paper's Section 3.2.1: ``S`` is the set of
markers executed and ``i`` the 0-based document position at which they were
executed.  A node's adjacency list points to the nodes representing the
*previous* variable transitions of the runs it extends; the distinguished
sink :data:`BOTTOM` plays the role of the initial product state.
"""

from __future__ import annotations

from repro.automata.markers import MarkerSet
from repro.enumeration.lazylist import LazyList

__all__ = ["BOTTOM", "Bottom", "DagNode"]


class Bottom:
    """The unique sink node ⊥ (reaching it completes one output mapping)."""

    __slots__ = ()
    _instance: "Bottom | None" = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = Bottom()


class DagNode:
    """A DAG node labelled ``(S, i)`` with an adjacency :class:`LazyList`.

    ``markers`` is the marker set executed, ``position`` the 0-based
    document position (the number of characters read before the markers
    were executed), and ``adjacency`` the lazy list of predecessor nodes.
    """

    __slots__ = ("markers", "position", "adjacency")

    def __init__(self, markers: MarkerSet, position: int, adjacency: LazyList) -> None:
        self.markers = markers
        self.position = position
        self.adjacency = adjacency

    @property
    def content(self) -> tuple[MarkerSet, int]:
        """The pair ``(S, i)`` (paper: ``node.content``)."""
        return (self.markers, self.position)

    def __repr__(self) -> str:
        return f"DagNode({self.markers}, {self.position})"
