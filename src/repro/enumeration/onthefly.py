"""On-the-fly determinization during evaluation (Section 4, closing remark).

The paper notes that the translations of Section 4 "can be fed to
Algorithm 1 on-the-fly, thus rarely needing to materialize the entire
deterministic seVA".  This module implements that idea: the input is a
*sequential but possibly non-deterministic* extended VA, and the evaluator
runs Algorithm 1 over the subset-construction automaton whose states are
built lazily, only for the subsets actually reached while reading the
document.

Compared with determinizing up front (:func:`repro.automata.transforms.determinize`):

* no exponential preprocessing of the automaton — only subsets reachable on
  *this* document are ever created, and they are cached across positions;
* the result is the same :class:`~repro.enumeration.evaluate.ResultDag`, so
  enumeration and counting work unchanged, and duplicate-freeness still
  follows from the (virtual) determinism of the subset automaton.

The trade-off is a higher per-position constant (subset hashing) and no
reuse of the determinization across documents.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.documents import as_text
from repro.core.errors import NotSequentialError
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.evaluate import ResultDag
from repro.enumeration.lazylist import LazyList

__all__ = ["evaluate_on_the_fly"]

State = Hashable
Subset = frozenset


def evaluate_on_the_fly(
    automaton: ExtendedVA,
    document: object,
    *,
    check_sequentiality: bool = False,
) -> ResultDag:
    """Run Algorithm 1 on the lazily determinized subset automaton.

    The input automaton may be non-deterministic; it must be *sequential*
    (as required by the constant-delay algorithm), which can optionally be
    verified with *check_sequentiality*.
    """
    if not automaton.has_initial:
        raise NotSequentialError("the automaton has no initial state")
    if check_sequentiality and not automaton.is_sequential():
        raise NotSequentialError("on-the-fly evaluation requires a sequential extended VA")

    text = as_text(document)
    n = len(text)

    # Per-state transition tables of the underlying automaton.
    variable_transitions: dict[State, list[tuple[MarkerSet, State]]] = {}
    letter_transitions: dict[State, dict[str, set[State]]] = {}
    for state in automaton.states:
        outgoing = list(automaton.variable_transitions_from(state))
        if outgoing:
            variable_transitions[state] = outgoing
        for symbol, target in automaton.letter_transitions_from(state):
            letter_transitions.setdefault(state, {}).setdefault(symbol, set()).add(target)

    # Caches of the subset-automaton transitions discovered so far.
    subset_variable_cache: dict[Subset, list[tuple[MarkerSet, Subset]]] = {}
    subset_letter_cache: dict[tuple[Subset, str], Subset] = {}

    def subset_variable_successors(subset: Subset) -> list[tuple[MarkerSet, Subset]]:
        cached = subset_variable_cache.get(subset)
        if cached is not None:
            return cached
        grouped: dict[MarkerSet, set[State]] = {}
        for state in subset:
            for marker_set, target in variable_transitions.get(state, ()):
                grouped.setdefault(marker_set, set()).add(target)
        successors = [(marker_set, frozenset(targets)) for marker_set, targets in grouped.items()]
        subset_variable_cache[subset] = successors
        return successors

    def subset_letter_successor(subset: Subset, symbol: str) -> Subset | None:
        key = (subset, symbol)
        if key in subset_letter_cache:
            return subset_letter_cache[key]
        targets: set[State] = set()
        for state in subset:
            targets.update(letter_transitions.get(state, {}).get(symbol, ()))
        successor = frozenset(targets) if targets else None
        subset_letter_cache[key] = successor
        return successor

    initial_subset: Subset = frozenset({automaton.initial})
    initial_list = LazyList()
    initial_list.add(BOTTOM)
    lists: dict[Subset, LazyList] = {initial_subset: initial_list}

    def capturing(position: int) -> None:
        snapshot = [(subset, lazy_list.lazycopy()) for subset, lazy_list in lists.items()]
        for subset, old_list in snapshot:
            for marker_set, successor in subset_variable_successors(subset):
                node = DagNode(marker_set, position, old_list)
                target_list = lists.get(successor)
                if target_list is None:
                    target_list = LazyList()
                    lists[successor] = target_list
                target_list.add(node)

    def reading(position: int) -> None:
        nonlocal lists
        symbol = text[position]
        old_lists = lists
        lists = {}
        for subset, old_list in old_lists.items():
            successor = subset_letter_successor(subset, symbol)
            if successor is None:
                continue
            target_list = lists.get(successor)
            if target_list is None:
                target_list = LazyList()
                lists[successor] = target_list
            target_list.append(old_list)

    for position in range(n):
        capturing(position)
        reading(position)
    capturing(n)

    finals = automaton.finals
    final_lists = {
        subset: lazy_list
        for subset, lazy_list in lists.items()
        if (subset & finals) and not lazy_list.is_empty()
    }

    # The ResultDag's automaton is only used for introspection; expose the
    # original (non-determinized) automaton to the caller.
    return ResultDag(automaton, n, final_lists)
