"""Algorithm 1: linear-time preprocessing for constant-delay enumeration.

Given a deterministic, sequential extended VA ``A`` and a document ``d``,
:func:`evaluate` runs the paper's ``Evaluate`` procedure: it processes the
document one character at a time, alternating the ``Capturing`` and
``Reading`` phases, and incrementally builds the *reverse-dual DAG* whose
paths (ending in the ⊥ sink) are in one-to-one correspondence with the
valid accepting runs of ``A`` over ``d``.

The preprocessing time is ``O(|A| × |d|)`` and the returned
:class:`ResultDag` supports duplicate-free enumeration of ``⟦A⟧(d)`` with
delay independent of ``|d|`` (see :mod:`repro.enumeration.enumerate`).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Hashable, Iterator, Mapping as MappingView

from repro.core.documents import as_text
from repro.core.errors import NotDeterministicError, NotSequentialError
from repro.core.mappings import Mapping
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.lazylist import LazyList

__all__ = ["ResultDag", "evaluate"]

State = Hashable


class ResultDag:
    """The output of the preprocessing phase.

    Holds, for every accepting state that is *live* at the end of the
    document, the lazy list of DAG nodes representing the last variable
    transitions of accepting runs.  Enumeration and counting traverse this
    structure without touching the document again.
    """

    def __init__(
        self,
        automaton: ExtendedVA,
        document_length: int,
        final_lists: dict[State, LazyList],
    ) -> None:
        self._automaton = automaton
        self._document_length = document_length
        self._final_lists = final_lists
        self._final_lists_view = MappingProxyType(final_lists)

    @property
    def automaton(self) -> ExtendedVA:
        """The automaton that was evaluated."""
        return self._automaton

    @property
    def document_length(self) -> int:
        """The length of the evaluated document."""
        return self._document_length

    @property
    def final_lists(self) -> MappingView[State, LazyList]:
        """The per-accepting-state lists of last DAG nodes.

        A read-only mapping view: enumeration and counting walk this on
        every query, so the property must not copy the dict per access.
        """
        return self._final_lists_view

    def is_empty(self) -> bool:
        """Whether the spanner produced no output mapping at all."""
        return all(lazy_list.is_empty() for lazy_list in self._final_lists.values())

    def __iter__(self) -> Iterator[Mapping]:
        from repro.enumeration.enumerate import enumerate_mappings

        return enumerate_mappings(self)

    def mappings(self) -> Iterator[Mapping]:
        """Enumerate the output mappings (Algorithm 2) with constant delay."""
        return iter(self)

    def count(self) -> int:
        """Count the output mappings directly on the DAG.

        This complements Algorithm 3 (which counts without building the
        DAG, see :mod:`repro.counting.count`): the number of outputs equals
        the number of distinct ⊥-terminated paths, computed here by a
        memoized traversal in time linear in the size of the DAG.
        """
        cache: dict[int, int] = {}

        def paths_from(node: object) -> int:
            if node is BOTTOM:
                return 1
            assert isinstance(node, DagNode)
            key = id(node)
            if key not in cache:
                cache[key] = sum(paths_from(child) for child in node.adjacency)
            return cache[key]

        return sum(
            paths_from(node)
            for lazy_list in self._final_lists.values()
            for node in lazy_list
        )

    def node_count(self) -> int:
        """The number of distinct DAG nodes reachable from the final lists."""
        seen: set[int] = set()
        stack: list[object] = [
            node
            for lazy_list in self._final_lists.values()
            for node in lazy_list
            if node is not BOTTOM
        ]
        while stack:
            node = stack.pop()
            assert isinstance(node, DagNode)
            if id(node) in seen:
                continue
            seen.add(id(node))
            for child in node.adjacency:
                if child is not BOTTOM and id(child) not in seen:
                    stack.append(child)
        return len(seen)


def evaluate(
    automaton: ExtendedVA,
    document: object,
    *,
    check_determinism: bool = True,
    check_sequentiality: bool = False,
) -> ResultDag:
    """Run the preprocessing phase of the constant-delay algorithm.

    Parameters
    ----------
    automaton:
        A deterministic sequential extended VA.  Use
        :func:`repro.automata.transforms.to_deterministic_sequential_eva`
        (or the :class:`~repro.spanners.Spanner` facade) to obtain one from
        an arbitrary spanner.
    document:
        The document (``str`` or :class:`~repro.core.documents.Document`).
    check_determinism:
        Verify determinism up front (cheap, enabled by default).
    check_sequentiality:
        Verify sequentiality up front.  The check explores the automaton's
        variable-ledger product and can be exponential in the number of
        variables, so it is off by default; a non-sequential automaton
        would make the enumeration produce spurious mappings.

    Returns
    -------
    ResultDag
        The compact representation of ``⟦A⟧(d)``.
    """
    if not automaton.has_initial:
        raise NotSequentialError("the automaton has no initial state")
    if check_determinism and not automaton.is_deterministic():
        raise NotDeterministicError(
            "the constant-delay algorithm requires a deterministic extended VA"
        )
    if check_sequentiality and not automaton.is_sequential():
        raise NotSequentialError(
            "the constant-delay algorithm requires a sequential extended VA"
        )

    text = as_text(document)
    n = len(text)

    # Per-state transition tables, precomputed once so the inner loops only
    # perform dictionary lookups.
    variable_transitions: dict[State, list[tuple[MarkerSet, State]]] = {}
    letter_transitions: dict[State, dict[str, State]] = {}
    for state in automaton.states:
        outgoing = list(automaton.variable_transitions_from(state))
        if outgoing:
            variable_transitions[state] = outgoing
        letters = {
            symbol: target for symbol, target in automaton.letter_transitions_from(state)
        }
        if letters:
            letter_transitions[state] = letters

    # listq for every live state q.  Only live (non-empty) lists are kept.
    initial_list = LazyList()
    initial_list.add(BOTTOM)
    lists: dict[State, LazyList] = {automaton.initial: initial_list}

    def capturing(position: int) -> None:
        """Simulate the extended variable transitions before reading position *position*."""
        snapshot = [
            (state, lazy_list.lazycopy()) for state, lazy_list in lists.items()
        ]
        for state, old_list in snapshot:
            for marker_set, target in variable_transitions.get(state, ()):
                node = DagNode(marker_set, position, old_list)
                target_list = lists.get(target)
                if target_list is None:
                    target_list = LazyList()
                    lists[target] = target_list
                target_list.add(node)

    def reading(position: int) -> None:
        """Simulate reading the character at *position*."""
        nonlocal lists
        symbol = text[position]
        old_lists = lists
        lists = {}
        for state, old_list in old_lists.items():
            target = letter_transitions.get(state, {}).get(symbol)
            if target is None:
                continue
            target_list = lists.get(target)
            if target_list is None:
                target_list = LazyList()
                lists[target] = target_list
            target_list.append(old_list)

    for position in range(n):
        capturing(position)
        reading(position)
    capturing(n)

    final_lists = {
        state: lazy_list
        for state, lazy_list in lists.items()
        if state in automaton.finals and not lazy_list.is_empty()
    }
    return ResultDag(automaton, n, final_lists)
