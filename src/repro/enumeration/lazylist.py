"""The lazy singly-linked list used by Algorithm 1.

The paper's evaluation algorithm relies on a list data structure with three
*O(1)* update operations — ``add`` (prepend), ``lazycopy`` (share the
underlying cells) and ``append`` (splice another list at the end) — plus
standard iteration.  Cells are immutable once created, with one exception:
a cell whose ``next`` pointer is still ``None`` may have it set **once**
(this is what ``append`` does).  This single-assignment discipline is what
makes ``lazycopy`` safe: a copy records its own ``(start, end)`` pair and
iteration stops at ``end``, so later appends to the original list never
leak into the copy.

The implementation asserts the single-assignment discipline; a violation
indicates the evaluation algorithm was fed a non-deterministic automaton.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["LazyList"]


class _Cell:
    """One cell of the singly linked list."""

    __slots__ = ("node", "next")

    def __init__(self, node: object, next_cell: "_Cell | None") -> None:
        self.node = node
        self.next = next_cell


class LazyList:
    """A list represented by ``(start, end)`` pointers into shared cells."""

    __slots__ = ("_start", "_end")

    def __init__(self) -> None:
        self._start: _Cell | None = None
        self._end: _Cell | None = None

    # ------------------------------------------------------------------ #
    # The three O(1) update operations of the paper
    # ------------------------------------------------------------------ #

    def add(self, node: object) -> None:
        """Insert *node* at the beginning of the list (paper: ``add``)."""
        cell = _Cell(node, self._start)
        if self._start is None:
            self._end = cell
        self._start = cell

    def lazycopy(self) -> "LazyList":
        """Return a copy sharing the underlying cells (paper: ``lazycopy``).

        The copy is not affected by later ``add``/``append`` calls on this
        list.
        """
        copy = LazyList()
        copy._start = self._start
        copy._end = self._end
        return copy

    def append(self, other: "LazyList") -> None:
        """Splice *other* at the end of this list (paper: ``append``).

        After the call this list also contains the elements of *other*; the
        cells are shared, not copied.
        """
        if other._start is None:
            return
        if self._start is None:
            self._start = other._start
            self._end = other._end
            return
        end = self._end
        assert end is not None
        if end.next is not None:
            raise RuntimeError(
                "LazyList.append would overwrite a next pointer; "
                "this indicates the evaluated automaton is not deterministic"
            )
        end.next = other._start
        self._end = other._end

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def is_empty(self) -> bool:
        """Whether the list has no elements."""
        return self._start is None

    def __bool__(self) -> bool:
        return self._start is not None

    def __iter__(self) -> Iterator[object]:
        """Iterate over the payloads from ``start`` up to and including ``end``."""
        cell = self._start
        end = self._end
        while cell is not None:
            yield cell.node
            if cell is end:
                return
            cell = cell.next

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def head(self) -> object:
        """The first element (raises ``IndexError`` on an empty list)."""
        if self._start is None:
            raise IndexError("head of an empty LazyList")
        return self._start.node

    def to_list(self) -> list[object]:
        """Materialize the payloads into a plain Python list."""
        return list(self)

    def __repr__(self) -> str:
        preview = self.to_list()
        return f"LazyList({preview!r})"
