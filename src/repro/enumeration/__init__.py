"""The constant-delay evaluation engine (Algorithms 1 and 2 of the paper)."""

from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.evaluate import ResultDag, evaluate
from repro.enumeration.enumerate import delay_profile, enumerate_mappings
from repro.enumeration.lazylist import LazyList

__all__ = [
    "BOTTOM",
    "DagNode",
    "LazyList",
    "ResultDag",
    "delay_profile",
    "enumerate_mappings",
    "evaluate",
]
