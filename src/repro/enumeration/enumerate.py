"""Algorithm 2: constant-delay enumeration of the output mappings.

The preprocessing phase (:mod:`repro.enumeration.evaluate`) produces a DAG
whose ⊥-terminated paths are in one-to-one correspondence with the valid
accepting runs of the automaton.  This module walks that DAG depth-first
and yields one :class:`~repro.core.mappings.Mapping` per path.  Because the
automaton is deterministic and sequential, every path yields a distinct
mapping and the work between two consecutive outputs is bounded by the
length of a path, which is at most ``2·ℓ + 1`` for ``ℓ`` variables —
independent of the document.

:func:`delay_profile` instruments the generator with a wall-clock probe;
the benchmark harness uses it to verify the constant-delay claim
empirically.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.markers import MarkerSet
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.evaluate import ResultDag
from repro.enumeration.lazylist import LazyList

__all__ = ["enumerate_mappings", "mapping_from_steps", "delay_profile"]


def mapping_from_steps(steps: tuple[tuple[MarkerSet, int], ...]) -> Mapping:
    """Decode a sequence of ``(marker set, position)`` pairs into a mapping.

    The sequence must be ordered by increasing position, which is how the
    enumeration procedure produces it.
    """
    opens: dict[str, int] = {}
    assignment: dict[str, Span] = {}
    for marker_set, position in steps:
        for marker in marker_set:
            if marker.is_open:
                opens[marker.variable] = position
        for marker in marker_set:
            if marker.is_close:
                assignment[marker.variable] = Span(opens.pop(marker.variable), position)
    return Mapping(assignment)


def _paths(lazy_list: LazyList, suffix: tuple[tuple[MarkerSet, int], ...]) -> Iterator[tuple]:
    """Depth-first traversal of the DAG (the paper's ``EnumAll``).

    Yields, for every ⊥-terminated path starting from a node of
    *lazy_list*, the sequence of ``(S, i)`` labels in increasing position
    order.  The recursion depth is bounded by the number of non-empty
    marker steps of a run (at most ``2·ℓ + 1``).
    """
    for node in lazy_list:
        if node is BOTTOM:
            yield suffix
        else:
            assert isinstance(node, DagNode)
            yield from _paths(node.adjacency, ((node.markers, node.position),) + suffix)


def enumerate_mappings(result) -> Iterator[Mapping]:
    """Enumerate all output mappings of a preprocessed evaluation.

    The mappings are produced without repetition; the delay between two
    consecutive outputs depends only on the number of variables of the
    evaluated automaton.  A legacy :class:`ResultDag` is walked with the
    recursive object traversal below; a compiled
    :class:`~repro.runtime.dag.CompiledResultDag` arena delegates to its
    own integer walker.
    """
    if not isinstance(result, ResultDag):
        yield from iter(result)
        return
    for lazy_list in result.final_lists.values():
        for steps in _paths(lazy_list, ()):
            yield mapping_from_steps(steps)


def delay_profile(
    result,
    clock: Callable[[], float] = time.perf_counter,
    limit: int | None = None,
) -> list[float]:
    """Measure the wall-clock delay before each enumerated output.

    *result* may be a legacy :class:`ResultDag` or a compiled
    :class:`~repro.runtime.dag.CompiledResultDag` arena — anything whose
    iterator runs Algorithm 2.  Returns the list of elapsed times (in
    seconds) between consecutive outputs, the first entry being the time
    from the start of the enumeration phase to the first output.
    ``limit`` truncates the enumeration, which keeps benchmark runtimes
    manageable for spanners with huge outputs.

    The paper's claim (Section 3.2.2) is that these delays are bounded by a
    function of the number of variables only; the benchmarks
    ``benchmarks/bench_delay.py`` and ``benchmarks/bench_enumerate.py``
    verify that their maximum does not grow with the document.
    """
    delays: list[float] = []
    previous = clock()
    for index, _mapping in enumerate(iter(result)):
        now = clock()
        delays.append(now - previous)
        previous = now
        if limit is not None and index + 1 >= limit:
            break
    return delays
