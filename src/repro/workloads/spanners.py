"""Spanner and automaton families used by tests, examples and benchmarks.

This module collects:

* the exact automata and documents of the paper's figures (Figures 1–3),
  used by the integration tests that reproduce the worked examples;
* the contact-extraction spanner of Example 2.1 in a form that scales to
  arbitrarily long documents;
* the lower-bound family of Proposition 4.2;
* generators of random functional VA and random NFAs (for the Census
  experiments).
"""

from __future__ import annotations

import random
import string

from repro.core.documents import Document
from repro.automata.builders import EVABuilder, VABuilder
from repro.automata.eva import ExtendedVA
from repro.automata.nfa import NFA
from repro.automata.va import VariableSetAutomaton
from repro.algebra.expressions import Atom, SpannerExpression
from repro.regex.ast import (
    AnyChar,
    Capture,
    CharClass,
    Plus,
    RegexNode,
    Star,
    concat,
)
from repro.regex.compiler import compile_to_va

__all__ = [
    "contact_pattern",
    "contact_spanner",
    "contact_expression",
    "figure1_document",
    "figure2_va",
    "figure3_eva",
    "join_heavy_expression",
    "periodic_atom",
    "nested_capture_regex",
    "proposition42_va",
    "random_census_nfa",
    "random_functional_va",
    "keyword_pair_pattern",
]


# ---------------------------------------------------------------------- #
# The paper's running example (Figure 1 / Example 2.1)
# ---------------------------------------------------------------------- #


def figure1_document() -> Document:
    """The 28-character document of Figure 1.

    Written with ASCII angle brackets; the spans of the expected mappings
    (µ1: name ``[1, 5⟩``, email ``[7, 13⟩``; µ2: name ``[16, 20⟩``, phone
    ``[22, 28⟩`` in the paper's 1-based notation) line up exactly.
    """
    return Document("John <j@g.be>, Jane <555-12>", name="figure-1")


def contact_pattern() -> str:
    """The regex formula of Example 2.1, written in the library's syntax.

    The formula extracts one mapping per ``Name <contact>`` record, binding
    ``name`` always and exactly one of ``email`` / ``phone``.
    """
    return (
        r"(.*, )?"
        r"name{[A-Za-z]+} "
        r"<(email{[a-z]+@[a-z.]+}|phone{[0-9]+-[0-9]+})>"
        r"(, .*)?"
    )


def contact_spanner():
    """The Example 2.1 spanner, ready to evaluate (returns a :class:`Spanner`)."""
    from repro.spanners.spanner import Spanner

    return Spanner.from_regex(contact_pattern())


def contact_expression() -> SpannerExpression:
    """An algebra expression joining name and email extractions.

    ``π_{name,email}( names ⋈ emails )`` over two independent regex atoms;
    because the atoms share no variable the join is a cross product of the
    name mappings and the email mappings of the document.
    """
    names = Atom(r"(.*, )?name{[A-Za-z]+} <[a-z0-9@.\-]*>(, .*)?")
    emails = Atom(r"(.*<)email{[a-z]+@[a-z.]+}(>.*)?")
    return names.join(emails).project(["name", "email"])


def periodic_atom(period: int, variable: str = "x") -> Atom:
    """``(.{period})* x{a} .*``: capture an ``a`` at a period-aligned position."""
    if period < 1:
        raise ValueError(f"period must be at least 1, got {period}")
    return Atom("(" + "." * period + f")*{variable}{{a}}.*")


def join_heavy_expression(periods: tuple[int, ...] = (7, 11, 13, 17)) -> SpannerExpression:
    """A multi-atom join whose fused automaton is exponentially large.

    ``x ⋈``-joins one :func:`periodic_atom` per period: the output is an
    ``a`` at a position aligned to *every* period simultaneously.  Each
    atom is a small automaton (``period + 2`` states), but the fused
    product of Proposition 4.4 must track the joint residue, so it has
    ``Θ(∏ periods)`` states — with the default coprime periods, 17017
    product states versus four atoms of at most 19 states.  This is the
    regime of the paper's Proposition 4.2 lower bound, and the workload
    the cost-based optimizer exists for: the hybrid plan evaluates the
    four small automata and hash-joins their (selective) mapping sets at
    runtime, never building the product.
    """
    if len(periods) < 2:
        raise ValueError(f"need at least two periods, got {periods!r}")
    expression: SpannerExpression = periodic_atom(periods[0])
    for period in periods[1:]:
        expression = expression.join(periodic_atom(period))
    return expression


def keyword_pair_pattern(first: str, second: str) -> str:
    """A spanner extracting the text between two keyword occurrences.

    ``.* first gap{.*} second .*`` — used by the log-analysis example.
    The capture is parenthesised so that a *first* keyword ending in an
    identifier character is not absorbed into the capture variable name.
    """
    return f".*{first}(gap{{.*}}){second}.*"


# ---------------------------------------------------------------------- #
# The paper's figures 2 and 3
# ---------------------------------------------------------------------- #


def figure2_va() -> VariableSetAutomaton:
    """The functional VA of Figure 2 (two runs produce the same mapping)."""
    return (
        VABuilder()
        .initial("q0")
        .final("q5")
        .open("q0", "x", "q1")
        .open("q0", "y", "q2")
        .open("q1", "y", "q3")
        .open("q2", "x", "q3")
        .letter("q3", "a", "q3")
        .close("q3", "x", "q4")
        .close("q4", "y", "q5")
        .build()
    )


def figure3_eva() -> ExtendedVA:
    """The deterministic functional extended VA of Figure 3."""
    return (
        EVABuilder()
        .initial("q0")
        .final("q9")
        .capture("q0", ["x"], [], "q1")
        .capture("q0", ["y"], [], "q2")
        .capture("q0", ["x", "y"], [], "q3")
        .letter("q1", "a", "q4")
        .letter("q2", "a", "q5")
        .letter("q3", "ab", "q3")
        .capture("q4", ["y"], [], "q6")
        .capture("q5", ["x"], [], "q7")
        .letter("q6", "b", "q8")
        .letter("q7", "b", "q8")
        .capture("q8", [], ["x", "y"], "q9")
        .capture("q3", [], ["x", "y"], "q9")
        .build()
    )


# ---------------------------------------------------------------------- #
# Scaling families
# ---------------------------------------------------------------------- #


def nested_capture_regex(depth: int, variable_prefix: str = "x") -> RegexNode:
    """The nested-capture formula of the introduction.

    ``Σ* · x1{ Σ* · x2{ … } · Σ* } · Σ*`` — on a document of length ``n``
    it produces ``Ω(n^depth)`` output mappings, which is the workload used
    to stress the enumeration phase.
    """
    if depth < 1:
        raise ValueError(f"depth must be at least 1, got {depth}")
    inner: RegexNode = Capture(f"{variable_prefix}{depth}", Star(AnyChar()))
    for level in range(depth - 1, 0, -1):
        inner = Capture(
            f"{variable_prefix}{level}",
            concat(Star(AnyChar()), inner, Star(AnyChar())),
        )
    return concat(Star(AnyChar()), inner, Star(AnyChar()))


def proposition42_va(num_pairs: int) -> VariableSetAutomaton:
    """The sequential VA family of Proposition 4.2 (Figures 7–8).

    ``3ℓ + 2`` states, ``4ℓ + 1`` transitions and ``2ℓ`` variables; every
    equivalent extended VA needs at least ``2^ℓ`` extended transitions.
    """
    if num_pairs < 1:
        raise ValueError(f"num_pairs must be at least 1, got {num_pairs}")
    builder = VABuilder().initial("c0").final("f")
    for index in range(1, num_pairs + 1):
        previous, current = f"c{index - 1}", f"c{index}"
        builder.open(previous, f"x{index}", f"mx{index}")
        builder.close(f"mx{index}", f"x{index}", current)
        builder.open(previous, f"y{index}", f"my{index}")
        builder.close(f"my{index}", f"y{index}", current)
    builder.letter(f"c{num_pairs}", "a", "f")
    return builder.build()


def random_functional_va(
    num_blocks: int = 4,
    num_variables: int = 2,
    alphabet: str = "ab",
    seed: int = 0,
) -> VariableSetAutomaton:
    """A random functional VA.

    The automaton is generated from a random regex formula shaped as a
    concatenation of blocks, where every capture variable appears exactly
    once; this guarantees functionality by construction while still
    producing varied automaton shapes.
    """
    rng = random.Random(seed)
    symbols = list(alphabet)
    variables = [f"v{index}" for index in range(num_variables)]
    capture_positions = set(rng.sample(range(max(num_blocks, num_variables)), num_variables))

    blocks: list[RegexNode] = []
    variable_iter = iter(variables)
    for position in range(max(num_blocks, num_variables)):
        body_chars = rng.sample(symbols, k=rng.randint(1, len(symbols)))
        body: RegexNode = CharClass(body_chars)
        if rng.random() < 0.5:
            body = Plus(body)
        if position in capture_positions:
            blocks.append(Capture(next(variable_iter), body))
        else:
            blocks.append(Star(body))
    formula = concat(*blocks)
    return compile_to_va(formula, alphabet)


def random_census_nfa(
    num_states: int = 5,
    alphabet: str = "ab",
    density: float = 0.3,
    seed: int = 0,
) -> NFA:
    """A random NFA for the Census experiments (Theorem 5.2)."""
    rng = random.Random(seed)
    nfa = NFA()
    nfa.set_initial(0)
    for state in range(num_states):
        nfa.add_state(state)
    for source in range(num_states):
        for symbol in alphabet:
            for target in range(num_states):
                if rng.random() < density:
                    nfa.add_transition(source, symbol, target)
    num_finals = max(1, num_states // 3)
    for state in rng.sample(range(num_states), num_finals):
        nfa.add_final(state)
    return nfa


def random_pattern(
    num_literals: int = 6, alphabet: str = string.ascii_lowercase[:3], seed: int = 0
) -> str:
    """A small random regex-formula pattern (used by property tests)."""
    rng = random.Random(seed)
    pieces = []
    for _ in range(num_literals):
        choice = rng.random()
        symbol = rng.choice(alphabet)
        if choice < 0.4:
            pieces.append(symbol)
        elif choice < 0.6:
            pieces.append(f"{symbol}*")
        elif choice < 0.8:
            pieces.append(f"v{rng.randint(0, 2)}{{{symbol}+}}")
        else:
            pieces.append(f"({symbol}|{rng.choice(alphabet)})")
    return "".join(pieces)
