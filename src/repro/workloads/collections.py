"""Multi-document workload scenarios for the batch engine.

Each generator returns a :class:`~repro.core.documents.DocumentCollection`
paired with the regex formula meant to be evaluated over it, so the batch
benchmarks and the CLI smoke tests can say ``scenario("contacts", ...)``
and get a self-contained workload.  Like the single-document generators in
:mod:`repro.workloads.documents`, everything is deterministic given the
``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.documents import DocumentCollection
from repro.algebra.expressions import SpannerExpression
from repro.workloads.documents import (
    contact_document,
    dna_sequence,
    random_document,
    server_log,
)
from repro.workloads.spanners import contact_pattern, join_heavy_expression

__all__ = [
    "NESTED_PATTERN",
    "BatchScenario",
    "chunked_document",
    "contact_collection",
    "dna_collection",
    "join_heavy_collection",
    "log_collection",
    "nested_collection",
    "random_collection",
    "scenario",
    "scenario_names",
    "sparse_log_collection",
    "tailing_log_collection",
]


@dataclass(frozen=True)
class BatchScenario:
    """A named multi-document workload: a collection plus its spanner spec.

    Regex scenarios carry a ``pattern``; algebra scenarios (``join-heavy``)
    carry an ``expression`` and a human-readable ``pattern`` description.
    :meth:`build_spanner` resolves whichever is set.
    """

    name: str
    pattern: str
    collection: DocumentCollection
    expression: SpannerExpression | None = None

    @property
    def num_documents(self) -> int:
        return len(self.collection)

    @property
    def total_length(self) -> int:
        return self.collection.total_length()

    def build_spanner(self, **options):
        """A :class:`~repro.spanners.Spanner` over the scenario's spec."""
        from repro.spanners.spanner import Spanner

        if self.expression is not None:
            return Spanner.from_expression(self.expression, **options)
        return Spanner.from_regex(self.pattern, **options)


def contact_collection(
    num_documents: int, records_per_document: int = 50, seed: int = 0
) -> DocumentCollection:
    """Documents of contact records, as in the paper's Figure 1."""
    collection = DocumentCollection(name="contacts")
    for index in range(num_documents):
        collection.add(
            contact_document(records_per_document, seed=seed + index),
            doc_id=f"contacts-{index}",
        )
    return collection


def log_collection(
    num_documents: int, lines_per_document: int = 100, seed: int = 0
) -> DocumentCollection:
    """Synthetic server logs, one file per document."""
    collection = DocumentCollection(name="logs")
    for index in range(num_documents):
        collection.add(
            server_log(lines_per_document, seed=seed + index),
            doc_id=f"log-{index}",
        )
    return collection


def sparse_log_collection(
    num_documents: int,
    lines_per_document: int = 2000,
    seed: int = 0,
    error_rate: float = 0.005,
) -> DocumentCollection:
    """Long synthetic logs in which ERROR lines are genuinely rare.

    Unlike :func:`log_collection` (whose uniform level draw makes a third
    of the lines ERROR), the non-forced lines here only carry INFO / WARN,
    so ``error_rate`` is the actual match density.  Paired with the ERROR
    pattern this is the sparse-match regime in which the compiled engines'
    quiescent-run fast path should dominate: almost every position has
    only silent runs live, and whole lines are skipped per C-level scan.
    """
    collection = DocumentCollection(name="sparse-logs")
    for index in range(num_documents):
        collection.add(
            server_log(
                lines_per_document,
                seed=seed + index,
                error_rate=error_rate,
                levels=("INFO", "WARN"),
            ),
            doc_id=f"sparse-log-{index}",
        )
    return collection


def tailing_log_collection(
    num_documents: int,
    lines_per_document: int = 4000,
    seed: int = 0,
    error_rate: float = 0.03,
) -> DocumentCollection:
    """Long logs consumed as a stream — the chunk-fed evaluation workload.

    Like :func:`sparse_log_collection`, matches are rare enough that the
    quiescent sprint dominates, but the error rate is tuned so each
    document carries on the order of a hundred matches: enough that the
    whole-document arena is visibly larger than the streaming
    evaluator's compacted buffer, which is exactly what the
    bounded-buffering property and ``bench_streaming.py`` measure.  Feed
    the documents through :func:`chunked_document` to simulate a tail.
    """
    collection = DocumentCollection(name="tailing-logs")
    for index in range(num_documents):
        collection.add(
            server_log(
                lines_per_document,
                seed=seed + index,
                error_rate=error_rate,
                levels=("INFO", "WARN"),
            ),
            doc_id=f"tail-log-{index}",
        )
    return collection


def chunked_document(document, chunk_size: int = 4096):
    """Yield *document* as a stream of text chunks (the tailing simulator).

    A thin, workload-level wrapper over
    :meth:`~repro.core.documents.Document.iter_chunks` that also accepts
    plain strings, so benchmark and test code can chunk-feed whatever a
    scenario hands it.
    """
    chunks = getattr(document, "iter_chunks", None)
    if chunks is not None:
        yield from chunks(chunk_size)
        return
    if chunk_size < 1:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    for begin in range(0, len(document), chunk_size):
        yield document[begin : begin + chunk_size]


def dna_collection(
    num_documents: int, length_per_document: int = 2000, seed: int = 0
) -> DocumentCollection:
    """DNA-like sequences over ``ACGT``."""
    collection = DocumentCollection(name="dna")
    for index in range(num_documents):
        collection.add(
            dna_sequence(length_per_document, seed=seed + index),
            doc_id=f"dna-{index}",
        )
    return collection


def nested_collection(
    num_documents: int, length_per_document: int = 40, seed: int = 0
) -> DocumentCollection:
    """Short random two-letter strings for the nested-capture workload.

    Paired with :data:`NESTED_PATTERN`, every document of length ``n``
    yields ``Θ(n⁴)`` mappings — the output-heavy regime that stresses the
    enumeration phase rather than preprocessing.
    """
    collection = DocumentCollection(name="nested")
    for index in range(num_documents):
        collection.add(
            random_document(length_per_document, alphabet="ab", seed=seed + index),
            doc_id=f"nested-{index}",
        )
    return collection


#: The depth-2 nested capture formula of the introduction, as a pattern.
NESTED_PATTERN = ".*x1{.*x2{.*}.*}.*"


def join_heavy_collection(
    num_documents: int, length_per_document: int = 1500, seed: int = 0
) -> DocumentCollection:
    """Random two-letter documents for the multi-atom ``join-heavy`` join.

    Short relative to the fused product's state count, so the monolithic
    route never amortizes its (exponentially many) subset discoveries
    while the hybrid plan's four small atoms amortize within one document.
    """
    collection = DocumentCollection(name="join-heavy")
    for index in range(num_documents):
        collection.add(
            random_document(length_per_document, alphabet="ab", seed=seed + index),
            doc_id=f"join-heavy-{index}",
        )
    return collection


def random_collection(
    num_documents: int, length_per_document: int = 1000, alphabet: str = "ab", seed: int = 0
) -> DocumentCollection:
    """Uniformly random strings over *alphabet*."""
    collection = DocumentCollection(name="random")
    for index in range(num_documents):
        collection.add(
            random_document(length_per_document, alphabet=alphabet, seed=seed + index),
            doc_id=f"random-{index}",
        )
    return collection


def scenario(name: str, num_documents: int = 8, scale: int | None = None, seed: int = 0) -> BatchScenario:
    """Build a named batch scenario.

    ``scale`` is the per-document size knob (records, lines or characters,
    depending on the scenario); each scenario has a sensible default.
    """
    if name == "contacts":
        return BatchScenario(
            name,
            contact_pattern(),
            contact_collection(num_documents, scale if scale is not None else 50, seed),
        )
    if name == "logs":
        return BatchScenario(
            name,
            r".*ERROR worker-w{[0-9]} .*",
            log_collection(num_documents, scale if scale is not None else 100, seed),
        )
    if name == "sparse-logs":
        return BatchScenario(
            name,
            r".*ERROR worker-w{[0-9]} .*",
            sparse_log_collection(
                num_documents, scale if scale is not None else 2000, seed
            ),
        )
    if name == "tailing-logs":
        return BatchScenario(
            name,
            r".*ERROR worker-w{[0-9]} .*",
            tailing_log_collection(
                num_documents, scale if scale is not None else 4000, seed
            ),
        )
    if name == "dna":
        return BatchScenario(
            name,
            r".*motif{TATA}.*",
            dna_collection(num_documents, scale if scale is not None else 2000, seed),
        )
    if name == "random":
        return BatchScenario(
            name,
            r".*x{a+b}.*",
            random_collection(num_documents, scale if scale is not None else 1000, seed=seed),
        )
    if name == "nested":
        return BatchScenario(
            name,
            NESTED_PATTERN,
            nested_collection(num_documents, scale if scale is not None else 40, seed),
        )
    if name == "join-heavy":
        return BatchScenario(
            name,
            "x{a}@7k ⋈ x{a}@11k ⋈ x{a}@13k ⋈ x{a}@17k (period-aligned join)",
            join_heavy_collection(
                num_documents, scale if scale is not None else 1500, seed
            ),
            expression=join_heavy_expression(),
        )
    raise ValueError(f"unknown batch scenario {name!r}; expected one of {scenario_names()}")


def scenario_names() -> tuple[str, ...]:
    """The available batch scenario names."""
    return (
        "contacts",
        "logs",
        "sparse-logs",
        "tailing-logs",
        "dna",
        "random",
        "nested",
        "join-heavy",
    )
