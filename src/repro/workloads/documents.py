"""Synthetic document generators.

The paper's running example (Figure 1 / Example 2.1) extracts names, email
addresses and phone numbers from free text; :func:`contact_document`
generates arbitrarily long documents of that shape.  The other generators
cover the further scenarios used by the examples and benchmarks: server
logs, DNA-like sequences, and uniformly random strings.

All generators are deterministic given their ``seed`` argument, so
benchmark runs are reproducible.
"""

from __future__ import annotations

import random
import string

from repro.core.documents import Document

__all__ = ["contact_document", "server_log", "dna_sequence", "random_document"]

_FIRST_NAMES = [
    "John", "Jane", "Ada", "Alan", "Grace", "Edsger", "Barbara", "Donald",
    "Leslie", "Tim", "Shafi", "Silvio", "Kurt", "Emmy", "Sofia", "Niklaus",
]

_DOMAINS = ["g.be", "uc.cl", "ulb.ac.be", "example.org", "mail.com"]


def contact_document(num_records: int, seed: int = 0) -> Document:
    """A document listing contacts, as in the paper's Figure 1.

    Each record is ``Name <email>`` or ``Name <phone>``, records are
    separated by ``", "``, e.g.::

        John <j@g.be>, Jane <555-12>, Ada <ada@uc.cl>
    """
    rng = random.Random(seed)
    records = []
    for _ in range(num_records):
        name = rng.choice(_FIRST_NAMES)
        if rng.random() < 0.5:
            local = "".join(rng.choices(string.ascii_lowercase, k=rng.randint(1, 5)))
            contact = f"{local}@{rng.choice(_DOMAINS)}"
        else:
            contact = f"{rng.randint(100, 999)}-{rng.randint(10, 99)}"
        records.append(f"{name} <{contact}>")
    return Document(", ".join(records), name=f"contacts[{num_records}]")


def server_log(
    num_lines: int,
    seed: int = 0,
    error_rate: float = 0.2,
    levels: tuple[str, ...] = ("INFO", "WARN", "ERROR"),
) -> Document:
    """A synthetic server log with INFO / WARN / ERROR lines.

    Lines look like ``2024-03-14 12:33:51 ERROR worker-3 timeout after 30s``.
    ``error_rate`` forces that fraction of lines to ERROR *in addition* to
    the uniform draw over ``levels``; pass ``levels=("INFO", "WARN")`` for
    a truly sparse log where ``error_rate`` alone controls how rare ERROR
    lines are (the ``sparse-logs`` benchmark scenario).
    """
    rng = random.Random(seed)
    levels = list(levels)
    messages = [
        "request served", "cache miss", "timeout after 30s", "connection reset",
        "retrying upstream", "disk nearly full", "user login", "user logout",
    ]
    lines = []
    for _ in range(num_lines):
        level = "ERROR" if rng.random() < error_rate else rng.choice(levels)
        day = rng.randint(1, 28)
        hour, minute, second = rng.randint(0, 23), rng.randint(0, 59), rng.randint(0, 59)
        worker = rng.randint(0, 9)
        message = rng.choice(messages)
        lines.append(
            f"2024-03-{day:02d} {hour:02d}:{minute:02d}:{second:02d} "
            f"{level} worker-{worker} {message}"
        )
    return Document("\n".join(lines), name=f"log[{num_lines}]")


def dna_sequence(length: int, seed: int = 0) -> Document:
    """A random DNA-like sequence over the alphabet ``ACGT``."""
    rng = random.Random(seed)
    return Document("".join(rng.choices("ACGT", k=length)), name=f"dna[{length}]")


def random_document(length: int, alphabet: str = "ab", seed: int = 0) -> Document:
    """A uniformly random string over *alphabet*."""
    rng = random.Random(seed)
    return Document("".join(rng.choices(alphabet, k=length)), name=f"random[{length}]")
