"""Synthetic workload generators used by the examples, tests and benchmarks."""

from repro.workloads.collections import (
    BatchScenario,
    contact_collection,
    dna_collection,
    log_collection,
    random_collection,
    scenario,
    scenario_names,
)
from repro.workloads.documents import (
    contact_document,
    dna_sequence,
    random_document,
    server_log,
)
from repro.workloads.spanners import (
    contact_expression,
    contact_spanner,
    figure1_document,
    figure2_va,
    figure3_eva,
    nested_capture_regex,
    proposition42_va,
    random_census_nfa,
    random_functional_va,
)

__all__ = [
    "BatchScenario",
    "contact_collection",
    "contact_document",
    "contact_expression",
    "contact_spanner",
    "dna_collection",
    "dna_sequence",
    "figure1_document",
    "figure2_va",
    "figure3_eva",
    "log_collection",
    "nested_capture_regex",
    "proposition42_va",
    "random_census_nfa",
    "random_collection",
    "random_document",
    "random_functional_va",
    "scenario",
    "scenario_names",
    "server_log",
]
