"""Command line interface: ``python -m repro``.

Seven subcommands expose the library's main operations on files (or stdin):

``extract``
    Evaluate a regex-formula spanner over a document and print one line per
    output mapping (text, JSON, or paper span notation).

``count``
    Count the output mappings with Algorithm 3 (no enumeration).

``inspect``
    Compile a spanner and print the pipeline report and the size statistics
    of the resulting deterministic sequential eVA.

``explain``
    Print the logical → physical query plan of a spanner.  One pattern
    shows the trivial single-atom plan; several patterns are combined into
    an algebra expression (``--combine join|union``, optionally projected
    with ``--project``), which exercises the cost-based optimizer: the
    output shows the rewritten logical tree, the estimated automaton sizes
    and, per operator, whether it was fused into an automaton or cut into
    a runtime arena operator.

``batch``
    Compile once and evaluate over many document files with the batch
    engine, serially or across worker processes, printing one JSON line per
    document.

``stream``
    Chunk-fed evaluation (:mod:`repro.runtime.streaming`): read the
    document in ``--chunk-size`` slices from a file or line-by-line from a
    pipe, and — in the default ``--emit incremental`` mode — print each
    mapping the moment it becomes settled instead of waiting for EOF.
    Because the document is not known up front, wildcards expand over
    ``--alphabet`` (printable ASCII plus whitespace by default).

``serve``
    The long-lived multi-tenant extraction service
    (:mod:`repro.server`): an asyncio HTTP front-end where every
    connection opens a (pattern, alphabet, emit-mode) session, feeds
    document chunks as NDJSON events and receives mappings back
    incrementally, with a shared plan cache, admission control and a
    ``/metrics`` endpoint.

Every command reports malformed patterns, unreadable files, bind
failures and streaming protocol errors as a one-line message on stderr
with a non-zero exit code — no tracebacks.
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import sys
from typing import Iterable

from repro.core.documents import Document, DocumentCollection
from repro.core.errors import ReproError
from repro.io.serialization import mapping_to_dict
from repro.runtime.batch import MODES
from repro.runtime.plan import ENGINE_CHOICES, KERNEL_CHOICES
from repro.spanners.spanner import Spanner

__all__ = ["build_parser", "main"]

#: The default declared alphabet of ``repro stream``: printable ASCII plus
#: the usual whitespace — what a log pipe realistically carries.  Wildcard
#: patterns expand over this set because the streamed document's own
#: characters are not known up front.
DEFAULT_STREAM_ALPHABET = "".join(chr(point) for point in range(32, 127)) + "\t\n\r"


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constant-delay evaluation of regular document spanners.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("pattern", help="regex formula with captures, e.g. '.*name{[A-Z][a-z]+} .*'")
        sub.add_argument(
            "document",
            nargs="?",
            help="path to the input document (omit to read from stdin)",
        )

    def add_engine(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--engine",
            choices=list(ENGINE_CHOICES),
            default="auto",
            help="evaluation engine: let the planner decide (auto, default), "
            "the dense-table arena runtime (compiled), on-the-fly subset "
            "construction with no up-front determinization (compiled-otf), "
            "the optimizer's physical operator plan for algebra expressions "
            "(hybrid; same as auto on a plain regex pattern), "
            "or the legacy dict-based loop (reference)",
        )

    def add_kernel(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--kernel",
            choices=list(KERNEL_CHOICES),
            default="auto",
            help="inner-loop kernel of the compiled engine: pick per "
            "document from run-length statistics (auto, default), the "
            "character-at-a-time loop (scalar), or O(log k) run "
            "exponentiation over the run-length encoding (runlength); "
            "results are identical either way",
        )

    def add_workers(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            help="shard a large document across this many worker processes "
            "(compiled engine only; documents below the size threshold "
            "run serially regardless)",
        )

    extract = subparsers.add_parser("extract", help="enumerate the output mappings")
    add_common(extract)
    add_engine(extract)
    add_kernel(extract)
    add_workers(extract)
    extract.add_argument(
        "--format",
        choices=["text", "json", "spans"],
        default="text",
        help="output format: extracted text (default), JSON records, or paper span notation",
    )
    extract.add_argument(
        "--limit", type=int, default=None, help="stop after this many mappings"
    )

    count = subparsers.add_parser("count", help="count the output mappings (Algorithm 3)")
    add_common(count)
    add_engine(count)
    add_kernel(count)
    add_workers(count)

    inspect = subparsers.add_parser("inspect", help="show the compilation pipeline report")
    add_common(inspect)

    explain = subparsers.add_parser(
        "explain", help="print the logical → physical query plan"
    )
    explain.add_argument(
        "patterns",
        nargs="+",
        metavar="pattern",
        help="one or more regex formulas; several are combined into an "
        "algebra expression with --combine",
    )
    explain.add_argument(
        "--combine",
        choices=["join", "union"],
        default="join",
        help="how to combine multiple patterns (default: join)",
    )
    explain.add_argument(
        "--project",
        metavar="VARS",
        default=None,
        help="comma-separated variables to project the expression onto",
    )
    explain.add_argument(
        "--document",
        default=None,
        help="path of a document whose alphabet the plan is built for "
        "(omit for the empty alphabet)",
    )
    explain.add_argument(
        "--unchecked",
        action="store_true",
        help="skip the functional-join validation of the optimizer",
    )
    add_engine(explain)

    batch = subparsers.add_parser(
        "batch", help="evaluate one spanner over many documents (compile once)"
    )
    batch.add_argument(
        "pattern", help="regex formula with captures, e.g. '.*name{[A-Z][a-z]+} .*'"
    )
    batch.add_argument(
        "documents", nargs="+", help="paths of the input documents (one per file)"
    )
    batch.add_argument(
        "--mode",
        choices=list(MODES),
        default="serial",
        help="evaluate in-process (serial) or fan out to worker processes",
    )
    add_engine(batch)
    add_kernel(batch)
    batch.add_argument(
        "--chunk-size", type=int, default=16, help="documents per worker task"
    )
    batch.add_argument(
        "--max-workers", type=int, default=None, help="pool size in process mode"
    )
    batch.add_argument(
        "--count-only",
        action="store_true",
        help="print only the per-document mapping counts, not the mappings",
    )
    batch.add_argument(
        "--report",
        action="store_true",
        help="print a final JSON line with the run's failure report: "
        "quarantined documents plus retry/rebuild/fallback counters",
    )
    batch.add_argument(
        "--task-deadline",
        type=float,
        default=300.0,
        help="seconds a pooled task may run before it is treated as a "
        "worker crash (default: 300)",
    )
    batch.add_argument(
        "--max-document-chars",
        type=int,
        default=None,
        help="quarantine documents longer than this instead of evaluating "
        "them (guards worker memory; default: no limit)",
    )
    batch.add_argument(
        "--max-arena-cells",
        type=int,
        default=None,
        help="quarantine documents whose result arena exceeds this many "
        "cells (guards driver memory; default: no limit)",
    )
    batch.add_argument(
        "--inject-faults",
        metavar="JSON",
        default=None,
        help="deterministic fault-injection plan for chaos testing, e.g. "
        '\'[{"site": "task", "action": "kill", "nth": 2}]\' '
        "(sites: task, evaluate, encode, shard-task; actions: raise, "
        "kill, delay)",
    )

    stream = subparsers.add_parser(
        "stream", help="chunk-fed evaluation: emit mappings as a stream settles"
    )
    stream.add_argument(
        "pattern", help="regex formula with captures, e.g. '.*name{[A-Z][a-z]+} .*'"
    )
    stream.add_argument(
        "document",
        nargs="?",
        help="path of the input document, read in --chunk-size slices "
        "(omit to read from stdin line by line — tail -f friendly)",
    )
    stream.add_argument(
        "--chunk-size", type=int, default=8192, help="characters per chunk"
    )
    stream.add_argument(
        "--emit",
        choices=["incremental", "on-finish"],
        default="incremental",
        help="incremental (default): print each mapping the moment it is "
        "settled; on-finish: buffer the arena and print everything at EOF",
    )
    stream.add_argument(
        "--alphabet",
        default=None,
        help="every character the stream may contain (wildcards expand over "
        "this set; default: printable ASCII plus whitespace)",
    )
    stream.add_argument(
        "--format",
        choices=["text", "json", "spans"],
        default="text",
        help="output format; 'text' and 'json' retain the whole streamed "
        "text to slice captured substrings (memory grows with the "
        "stream) — use 'spans' on unbounded tails, it retains nothing",
    )
    stream.add_argument(
        "--limit", type=int, default=None, help="stop after this many mappings"
    )

    serve = subparsers.add_parser(
        "serve", help="run the multi-tenant async extraction service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 picks an ephemeral one)"
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="cap on concurrently open sessions; past it, opens get HTTP 429",
    )
    serve.add_argument(
        "--plan-cache-size",
        type=int,
        default=32,
        help="bound of the shared (pattern, alphabet) -> compiled-plan cache",
    )
    serve.add_argument(
        "--max-session-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="per-session cap on fed document bytes (0 disables the cap)",
    )
    serve.add_argument(
        "--max-session-arena-cells",
        type=int,
        default=0,
        help="per-session cap on live arena cells (0 disables the cap); "
        "trips before a pathological pattern-document pair can exhaust "
        "the server's memory",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        help="seconds a session may sit idle between events before it is closed",
    )
    serve.add_argument(
        "--alphabet",
        default=None,
        help="default declared alphabet for sessions that omit one "
        "(default: printable ASCII plus whitespace)",
    )
    serve.add_argument(
        "--warm",
        action="append",
        default=[],
        metavar="PATTERN",
        help="precompile a pattern into the shared plan cache at boot "
        "(repeatable; malformed patterns abort with a one-line error)",
    )

    return parser


def _read_document(path: str | None, stdin: Iterable[str] | None = None) -> Document:
    if path is None:
        text = "".join(stdin if stdin is not None else sys.stdin)
        return Document(text, name="<stdin>")
    return Document.from_file(path)


def _run_extract(args: argparse.Namespace, document: Document, out) -> int:
    spanner = Spanner.from_regex(args.pattern)
    try:
        mappings = spanner.enumerate(
            document, engine=args.engine, workers=args.workers, kernel=args.kernel
        )
    except ValueError as error:
        print(f"repro extract: error: {error}", file=sys.stderr)
        return 2
    produced = 0
    try:
        for mapping in mappings:
            if args.format == "json":
                print(json.dumps(mapping_to_dict(mapping, document), sort_keys=True), file=out)
            elif args.format == "spans":
                print(mapping.paper_notation(), file=out)
            else:
                print(json.dumps(mapping.contents(document), sort_keys=True), file=out)
            produced += 1
            if args.limit is not None and produced >= args.limit:
                break
    finally:
        spanner.close()
    return 0


def _run_count(args: argparse.Namespace, document: Document, out) -> int:
    spanner = Spanner.from_regex(args.pattern)
    try:
        total = spanner.count(
            document, engine=args.engine, workers=args.workers, kernel=args.kernel
        )
    except ValueError as error:
        print(f"repro count: error: {error}", file=sys.stderr)
        return 2
    finally:
        spanner.close()
    print(total, file=out)
    return 0


def _run_inspect(args: argparse.Namespace, document: Document, out) -> int:
    spanner = Spanner.from_regex(args.pattern)
    report = spanner.compilation_report(document)
    statistics = spanner.statistics(document)
    print(report.summary(), file=out)
    print(file=out)
    print(
        f"deterministic sequential eVA: {statistics.num_states} states, "
        f"{statistics.num_transitions} transitions, "
        f"{statistics.num_variables} variables, "
        f"alphabet size {statistics.alphabet_size}",
        file=out,
    )
    print(
        f"deterministic={statistics.deterministic} "
        f"sequential={statistics.sequential} functional={statistics.functional}",
        file=out,
    )
    return 0


def _run_explain(args: argparse.Namespace, out) -> int:
    from repro.core.errors import CompilationError
    from repro.algebra.expressions import Atom

    expression = Atom(args.patterns[0])
    for pattern in args.patterns[1:]:
        atom = Atom(pattern)
        expression = (
            expression.join(atom) if args.combine == "join" else expression.union(atom)
        )
    if args.project is not None:
        keep = [variable.strip() for variable in args.project.split(",") if variable.strip()]
        expression = expression.project(keep)
    document = _read_document(args.document, stdin=()) if args.document else ""
    spanner = Spanner.from_expression(expression, unchecked=args.unchecked)
    try:
        print(spanner.explain(document, engine=args.engine), file=out)
    except CompilationError as error:
        print(f"repro explain: error: {error}", file=sys.stderr)
        return 2
    return 0


def _batch_policy(args: argparse.Namespace) -> "ResiliencePolicy":
    """The fault-tolerance policy of one ``repro batch`` invocation.

    Quarantine is always on: a poison document becomes a line in the
    failure report and a non-zero exit, never a traceback.  Raises
    ``ValueError`` on a malformed ``--inject-faults`` plan or a
    non-positive guard value.
    """
    from repro.runtime.resilience import (
        FaultPlan,
        ResiliencePolicy,
        ResourceBudget,
        RetryPolicy,
    )

    if args.task_deadline <= 0:
        raise ValueError(
            f"--task-deadline must be positive, got {args.task_deadline:g}"
        )
    budget = None
    if args.max_document_chars is not None or args.max_arena_cells is not None:
        for name, value in (
            ("--max-document-chars", args.max_document_chars),
            ("--max-arena-cells", args.max_arena_cells),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive, got {value}")
        budget = ResourceBudget(
            max_document_chars=args.max_document_chars,
            max_arena_cells=args.max_arena_cells,
        )
    faults = None
    if args.inject_faults is not None:
        faults = FaultPlan.from_json(args.inject_faults)
    return ResiliencePolicy(
        retry=RetryPolicy(seed=0),
        task_deadline=args.task_deadline,
        quarantine=True,
        budget=budget,
        faults=faults,
    )


def _run_batch(args: argparse.Namespace, out) -> int:
    from repro.runtime.resilience import FailureReport

    if args.chunk_size < 1:
        print(f"repro batch: error: --chunk-size must be positive, got {args.chunk_size}", file=sys.stderr)
        return 2
    if args.max_workers is not None and args.max_workers < 1:
        print(f"repro batch: error: --max-workers must be positive, got {args.max_workers}", file=sys.stderr)
        return 2
    try:
        policy = _batch_policy(args)
    except ValueError as error:
        print(f"repro batch: error: {error}", file=sys.stderr)
        return 2
    try:
        collection = DocumentCollection.from_files(args.documents)
    except OSError as error:
        print(f"repro batch: error: cannot read document: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"repro batch: error: {error}", file=sys.stderr)
        return 2
    report = FailureReport()
    spanner = Spanner.from_regex(args.pattern)
    try:
        results = spanner.run_batch(
            collection,
            mode=args.mode,
            engine=args.engine,
            chunk_size=args.chunk_size,
            max_workers=args.max_workers,
            kernel=args.kernel,
            policy=policy,
            report=report,
        )
    except ValueError as error:
        print(f"repro batch: error: {error}", file=sys.stderr)
        return 2
    for doc_id, result in results:
        record: dict[str, object] = {"doc": str(doc_id)}
        if args.count_only:
            record["count"] = result.count()
        else:
            document = collection[doc_id]
            record["mappings"] = [
                mapping_to_dict(mapping, document) for mapping in result
            ]
            record["count"] = len(record["mappings"])
        print(json.dumps(record, sort_keys=True), file=out)
    if args.report:
        print(json.dumps({"report": report.as_dict()}, sort_keys=True), file=out)
    if len(report):
        names = ", ".join(entry.doc_id for entry in report.quarantined)
        print(
            f"repro batch: error: {len(report)} document(s) quarantined "
            f"({names}); rerun with --report for details",
            file=sys.stderr,
        )
        return 1
    return 0


def _stream_chunks(path: str | None, chunk_size: int, stdin: Iterable[str] | None):
    """The chunk source of ``repro stream``.

    A file is read in *chunk_size* slices; stdin is consumed line by
    line, which keeps the command responsive on a pipe that is still
    being written (each line of a ``tail -f`` arrives as its own chunk).
    """
    if path is not None:
        with open(path, "r", encoding="utf-8") as handle:
            while True:
                chunk = handle.read(chunk_size)
                if not chunk:
                    return
                yield chunk
    yield from (stdin if stdin is not None else sys.stdin)


class _StreamedText:
    """Grow-only text with per-span slicing and no whole-stream joins.

    The text/json output formats need the characters a mapping's spans
    cover, but re-joining every chunk seen so far on each flush would be
    quadratic on a long tail.  This keeps the chunks as-is plus their
    cumulative end offsets; a slice touches only the chunks it overlaps
    (binary search + span length).  ``Span.content`` accepts it through
    the ``.text`` duck-typing path.
    """

    def __init__(self) -> None:
        self._parts: list[str] = []
        self._ends: list[int] = []

    def append(self, chunk: str) -> None:
        if chunk:
            base = self._ends[-1] if self._ends else 0
            self._parts.append(chunk)
            self._ends.append(base + len(chunk))

    def __len__(self) -> int:
        return self._ends[-1] if self._ends else 0

    @property
    def text(self) -> "_StreamedText":
        return self

    def __getitem__(self, key) -> str:
        if not isinstance(key, slice) or key.step not in (None, 1):
            raise TypeError("streamed text supports contiguous slices only")
        begin, end, _step = key.indices(len(self))
        index = bisect.bisect_right(self._ends, begin)
        pieces: list[str] = []
        position = self._ends[index - 1] if index else 0
        while index < len(self._parts) and position < end:
            part = self._parts[index]
            pieces.append(part[max(0, begin - position) : end - position])
            position += len(part)
            index += 1
        return "".join(pieces)


def _run_stream(args: argparse.Namespace, out, stdin: Iterable[str] | None) -> int:
    if args.chunk_size < 1:
        print(
            f"repro stream: error: --chunk-size must be positive, got {args.chunk_size}",
            file=sys.stderr,
        )
        return 2
    spanner = Spanner.from_regex(args.pattern)
    alphabet = args.alphabet if args.alphabet is not None else DEFAULT_STREAM_ALPHABET
    emit = "on_finish" if args.emit == "on-finish" else "incremental"
    # Settled mappings are printed straight from feed(), so the evaluator
    # need not keep them around for finish() — memory stays at the
    # in-flight state on an unbounded tail.
    evaluator = spanner.stream(alphabet=alphabet, emit=emit, retain_settled=False)

    # The streamed text is retained only when the output format needs it
    # to slice captured substrings; 'spans' runs with no retention at all.
    retained = _StreamedText() if args.format in ("text", "json") else None
    produced = 0

    if args.limit is not None and args.limit <= 0:
        return 0

    def render(mappings) -> bool:
        nonlocal produced
        for mapping in mappings:
            if args.format == "json":
                print(
                    json.dumps(mapping_to_dict(mapping, retained), sort_keys=True),
                    file=out,
                )
            elif args.format == "spans":
                print(mapping.paper_notation(), file=out)
            else:
                print(json.dumps(mapping.contents(retained), sort_keys=True), file=out)
            produced += 1
            if args.limit is not None and produced >= args.limit:
                return True
        return False

    for chunk in _stream_chunks(args.document, args.chunk_size, stdin):
        if retained is not None:
            retained.append(chunk)
        if render(evaluator.feed(chunk)):
            return 0
    result = evaluator.finish()
    if emit == "incremental":
        render(result.residual)
    else:
        render(result)
    return 0


def _run_serve(args: argparse.Namespace, out) -> int:
    import asyncio

    from repro.server import ServerConfig, SpannerService, serve_forever

    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            plan_cache_size=args.plan_cache_size,
            max_session_bytes=args.max_session_bytes,
            max_session_arena_cells=args.max_session_arena_cells,
            idle_timeout=args.idle_timeout,
            default_alphabet=(
                args.alphabet if args.alphabet is not None else DEFAULT_STREAM_ALPHABET
            ),
        )
    except ValueError as error:
        print(f"repro serve: error: {error}", file=sys.stderr)
        return 2
    service = SpannerService(config)
    # Warm-up patterns compile before the socket binds; a malformed one
    # propagates to main()'s one-line-stderr handler like any other
    # ReproError.
    for pattern in args.warm:
        service.warm(pattern)

    def announce(server) -> None:
        print(
            f"repro serve: listening on http://{config.host}:{server.port}",
            file=out,
            flush=True,
        )

    try:
        asyncio.run(serve_forever(config, service=service, ready=announce))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None, stdin: Iterable[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args, stdin, out, parser)
    except BrokenPipeError:
        # Downstream closed the pipe (`repro ... | head`): the
        # conventional quiet exit, not an error.  Point stdout at
        # /dev/null so the interpreter's shutdown flush stays silent.
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except OSError:
            pass
        return 0
    except (ReproError, OSError, UnicodeDecodeError) as error:
        # One line on stderr, non-zero exit, no traceback — the contract
        # for malformed patterns, unreadable files and broken streams.
        print(f"repro {args.command}: error: {error}", file=sys.stderr)
        return 2


def _dispatch(args, stdin, out, parser) -> int:
    if args.command == "batch":
        return _run_batch(args, out)
    if args.command == "explain":
        return _run_explain(args, out)
    if args.command == "stream":
        return _run_stream(args, out, stdin)
    if args.command == "serve":
        return _run_serve(args, out)
    document = _read_document(args.document, stdin)
    if args.command == "extract":
        return _run_extract(args, document, out)
    if args.command == "count":
        return _run_count(args, document, out)
    if args.command == "inspect":
        return _run_inspect(args, document, out)
    parser.error(f"unknown command {args.command!r}")
    return 2
