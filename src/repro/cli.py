"""Command line interface: ``python -m repro``.

Three subcommands expose the library's main operations on files (or stdin):

``extract``
    Evaluate a regex-formula spanner over a document and print one line per
    output mapping (text, JSON, or paper span notation).

``count``
    Count the output mappings with Algorithm 3 (no enumeration).

``inspect``
    Compile a spanner and print the pipeline report and the size statistics
    of the resulting deterministic sequential eVA.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable

from repro.core.documents import Document
from repro.io.serialization import mapping_to_dict
from repro.spanners.spanner import Spanner

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constant-delay evaluation of regular document spanners.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("pattern", help="regex formula with captures, e.g. '.*name{[A-Z][a-z]+} .*'")
        sub.add_argument(
            "document",
            nargs="?",
            help="path to the input document (omit to read from stdin)",
        )

    extract = subparsers.add_parser("extract", help="enumerate the output mappings")
    add_common(extract)
    extract.add_argument(
        "--format",
        choices=["text", "json", "spans"],
        default="text",
        help="output format: extracted text (default), JSON records, or paper span notation",
    )
    extract.add_argument(
        "--limit", type=int, default=None, help="stop after this many mappings"
    )

    count = subparsers.add_parser("count", help="count the output mappings (Algorithm 3)")
    add_common(count)

    inspect = subparsers.add_parser("inspect", help="show the compilation pipeline report")
    add_common(inspect)

    return parser


def _read_document(path: str | None, stdin: Iterable[str] | None = None) -> Document:
    if path is None:
        text = "".join(stdin if stdin is not None else sys.stdin)
        return Document(text, name="<stdin>")
    return Document.from_file(path)


def _run_extract(args: argparse.Namespace, document: Document, out) -> int:
    spanner = Spanner.from_regex(args.pattern)
    produced = 0
    for mapping in spanner.enumerate(document):
        if args.format == "json":
            print(json.dumps(mapping_to_dict(mapping, document), sort_keys=True), file=out)
        elif args.format == "spans":
            print(mapping.paper_notation(), file=out)
        else:
            print(json.dumps(mapping.contents(document), sort_keys=True), file=out)
        produced += 1
        if args.limit is not None and produced >= args.limit:
            break
    return 0


def _run_count(args: argparse.Namespace, document: Document, out) -> int:
    spanner = Spanner.from_regex(args.pattern)
    print(spanner.count(document), file=out)
    return 0


def _run_inspect(args: argparse.Namespace, document: Document, out) -> int:
    spanner = Spanner.from_regex(args.pattern)
    report = spanner.compilation_report(document)
    statistics = spanner.statistics(document)
    print(report.summary(), file=out)
    print(file=out)
    print(
        f"deterministic sequential eVA: {statistics.num_states} states, "
        f"{statistics.num_transitions} transitions, "
        f"{statistics.num_variables} variables, "
        f"alphabet size {statistics.alphabet_size}",
        file=out,
    )
    print(
        f"deterministic={statistics.deterministic} "
        f"sequential={statistics.sequential} functional={statistics.functional}",
        file=out,
    )
    return 0


def main(argv: list[str] | None = None, stdin: Iterable[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    document = _read_document(args.document, stdin)
    if args.command == "extract":
        return _run_extract(args, document, out)
    if args.command == "count":
        return _run_count(args, document, out)
    if args.command == "inspect":
        return _run_inspect(args, document, out)
    parser.error(f"unknown command {args.command!r}")
    return 2
