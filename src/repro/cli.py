"""Command line interface: ``python -m repro``.

Five subcommands expose the library's main operations on files (or stdin):

``extract``
    Evaluate a regex-formula spanner over a document and print one line per
    output mapping (text, JSON, or paper span notation).

``count``
    Count the output mappings with Algorithm 3 (no enumeration).

``inspect``
    Compile a spanner and print the pipeline report and the size statistics
    of the resulting deterministic sequential eVA.

``explain``
    Print the logical → physical query plan of a spanner.  One pattern
    shows the trivial single-atom plan; several patterns are combined into
    an algebra expression (``--combine join|union``, optionally projected
    with ``--project``), which exercises the cost-based optimizer: the
    output shows the rewritten logical tree, the estimated automaton sizes
    and, per operator, whether it was fused into an automaton or cut into
    a runtime arena operator.

``batch``
    Compile once and evaluate over many document files with the batch
    engine, serially or across worker processes, printing one JSON line per
    document.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable

from repro.core.documents import Document, DocumentCollection
from repro.io.serialization import mapping_to_dict
from repro.runtime.batch import MODES
from repro.runtime.plan import ENGINE_CHOICES
from repro.spanners.spanner import Spanner

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constant-delay evaluation of regular document spanners.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("pattern", help="regex formula with captures, e.g. '.*name{[A-Z][a-z]+} .*'")
        sub.add_argument(
            "document",
            nargs="?",
            help="path to the input document (omit to read from stdin)",
        )

    def add_engine(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--engine",
            choices=list(ENGINE_CHOICES),
            default="auto",
            help="evaluation engine: let the planner decide (auto, default), "
            "the dense-table arena runtime (compiled), on-the-fly subset "
            "construction with no up-front determinization (compiled-otf), "
            "the optimizer's physical operator plan for algebra expressions "
            "(hybrid; same as auto on a plain regex pattern), "
            "or the legacy dict-based loop (reference)",
        )

    extract = subparsers.add_parser("extract", help="enumerate the output mappings")
    add_common(extract)
    add_engine(extract)
    extract.add_argument(
        "--format",
        choices=["text", "json", "spans"],
        default="text",
        help="output format: extracted text (default), JSON records, or paper span notation",
    )
    extract.add_argument(
        "--limit", type=int, default=None, help="stop after this many mappings"
    )

    count = subparsers.add_parser("count", help="count the output mappings (Algorithm 3)")
    add_common(count)
    add_engine(count)

    inspect = subparsers.add_parser("inspect", help="show the compilation pipeline report")
    add_common(inspect)

    explain = subparsers.add_parser(
        "explain", help="print the logical → physical query plan"
    )
    explain.add_argument(
        "patterns",
        nargs="+",
        metavar="pattern",
        help="one or more regex formulas; several are combined into an "
        "algebra expression with --combine",
    )
    explain.add_argument(
        "--combine",
        choices=["join", "union"],
        default="join",
        help="how to combine multiple patterns (default: join)",
    )
    explain.add_argument(
        "--project",
        metavar="VARS",
        default=None,
        help="comma-separated variables to project the expression onto",
    )
    explain.add_argument(
        "--document",
        default=None,
        help="path of a document whose alphabet the plan is built for "
        "(omit for the empty alphabet)",
    )
    explain.add_argument(
        "--unchecked",
        action="store_true",
        help="skip the functional-join validation of the optimizer",
    )
    add_engine(explain)

    batch = subparsers.add_parser(
        "batch", help="evaluate one spanner over many documents (compile once)"
    )
    batch.add_argument(
        "pattern", help="regex formula with captures, e.g. '.*name{[A-Z][a-z]+} .*'"
    )
    batch.add_argument(
        "documents", nargs="+", help="paths of the input documents (one per file)"
    )
    batch.add_argument(
        "--mode",
        choices=list(MODES),
        default="serial",
        help="evaluate in-process (serial) or fan out to worker processes",
    )
    add_engine(batch)
    batch.add_argument(
        "--chunk-size", type=int, default=16, help="documents per worker task"
    )
    batch.add_argument(
        "--max-workers", type=int, default=None, help="pool size in process mode"
    )
    batch.add_argument(
        "--count-only",
        action="store_true",
        help="print only the per-document mapping counts, not the mappings",
    )

    return parser


def _read_document(path: str | None, stdin: Iterable[str] | None = None) -> Document:
    if path is None:
        text = "".join(stdin if stdin is not None else sys.stdin)
        return Document(text, name="<stdin>")
    return Document.from_file(path)


def _run_extract(args: argparse.Namespace, document: Document, out) -> int:
    spanner = Spanner.from_regex(args.pattern)
    produced = 0
    for mapping in spanner.enumerate(document, engine=args.engine):
        if args.format == "json":
            print(json.dumps(mapping_to_dict(mapping, document), sort_keys=True), file=out)
        elif args.format == "spans":
            print(mapping.paper_notation(), file=out)
        else:
            print(json.dumps(mapping.contents(document), sort_keys=True), file=out)
        produced += 1
        if args.limit is not None and produced >= args.limit:
            break
    return 0


def _run_count(args: argparse.Namespace, document: Document, out) -> int:
    spanner = Spanner.from_regex(args.pattern)
    print(spanner.count(document, engine=args.engine), file=out)
    return 0


def _run_inspect(args: argparse.Namespace, document: Document, out) -> int:
    spanner = Spanner.from_regex(args.pattern)
    report = spanner.compilation_report(document)
    statistics = spanner.statistics(document)
    print(report.summary(), file=out)
    print(file=out)
    print(
        f"deterministic sequential eVA: {statistics.num_states} states, "
        f"{statistics.num_transitions} transitions, "
        f"{statistics.num_variables} variables, "
        f"alphabet size {statistics.alphabet_size}",
        file=out,
    )
    print(
        f"deterministic={statistics.deterministic} "
        f"sequential={statistics.sequential} functional={statistics.functional}",
        file=out,
    )
    return 0


def _run_explain(args: argparse.Namespace, out) -> int:
    from repro.core.errors import CompilationError
    from repro.algebra.expressions import Atom

    expression = Atom(args.patterns[0])
    for pattern in args.patterns[1:]:
        atom = Atom(pattern)
        expression = (
            expression.join(atom) if args.combine == "join" else expression.union(atom)
        )
    if args.project is not None:
        keep = [variable.strip() for variable in args.project.split(",") if variable.strip()]
        expression = expression.project(keep)
    document = _read_document(args.document, stdin=()) if args.document else ""
    spanner = Spanner.from_expression(expression, unchecked=args.unchecked)
    try:
        print(spanner.explain(document, engine=args.engine), file=out)
    except CompilationError as error:
        print(f"repro explain: error: {error}", file=sys.stderr)
        return 2
    return 0


def _run_batch(args: argparse.Namespace, out) -> int:
    if args.chunk_size < 1:
        print(f"repro batch: error: --chunk-size must be positive, got {args.chunk_size}", file=sys.stderr)
        return 2
    if args.max_workers is not None and args.max_workers < 1:
        print(f"repro batch: error: --max-workers must be positive, got {args.max_workers}", file=sys.stderr)
        return 2
    try:
        collection = DocumentCollection.from_files(args.documents)
    except OSError as error:
        print(f"repro batch: error: cannot read document: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"repro batch: error: {error}", file=sys.stderr)
        return 2
    spanner = Spanner.from_regex(args.pattern)
    for doc_id, result in spanner.run_batch(
        collection,
        mode=args.mode,
        engine=args.engine,
        chunk_size=args.chunk_size,
        max_workers=args.max_workers,
    ):
        record: dict[str, object] = {"doc": str(doc_id)}
        if args.count_only:
            record["count"] = result.count()
        else:
            document = collection[doc_id]
            record["mappings"] = [
                mapping_to_dict(mapping, document) for mapping in result
            ]
            record["count"] = len(record["mappings"])
        print(json.dumps(record, sort_keys=True), file=out)
    return 0


def main(argv: list[str] | None = None, stdin: Iterable[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "batch":
        return _run_batch(args, out)
    if args.command == "explain":
        return _run_explain(args, out)
    document = _read_document(args.document, stdin)
    if args.command == "extract":
        return _run_extract(args, document, out)
    if args.command == "count":
        return _run_count(args, document, out)
    if args.command == "inspect":
        return _run_inspect(args, document, out)
    parser.error(f"unknown command {args.command!r}")
    return 2
