"""The :class:`Spanner` facade — the library's main entry point.

A :class:`Spanner` wraps any supported specification (regex formula text or
AST, classic VA, extended VA, or an algebra expression) and exposes the
evaluation operations of the paper:

* :meth:`Spanner.enumerate` — constant-delay enumeration after linear-time
  preprocessing (Algorithms 1 and 2),
* :meth:`Spanner.evaluate` — the materialized list of output mappings,
* :meth:`Spanner.count` — output counting in ``O(|A| × |d|)`` (Algorithm 3),
* :meth:`Spanner.extract` — convenience extraction of the captured text.

Compilation into a deterministic sequential eVA happens lazily and is
cached per alphabet (wildcard patterns expand over the characters of the
documents they are evaluated on); the cache is a small LRU bounded by the
``max_cached_alphabets`` knob, and every per-alphabet artifact — the
sequential eVA, the deterministic eVA, both compiled runtimes and the
execution plan — lives in **one** entry, so they are evicted together.

Evaluation goes through the :class:`~repro.runtime.plan.ExecutionPlan`
layer.  ``engine="auto"`` (the default) lets the planner pick between the
dense-table arena engine (``"compiled"``), the lazily determinized subset
engine (``"compiled-otf"``, the paper's Section 4 closing remark — no
up-front :func:`~repro.automata.transforms.determinize` call at all) and is
cross-checked against the dict-based reference loop (``"reference"``).  A
concrete engine name forces that engine.  Multi-document workloads go
through :meth:`Spanner.run_batch`, which compiles once and streams every
document through the same tables.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Iterable, Iterator

from repro.core.documents import DocumentCollection, as_text
from repro.core.mappings import Mapping
from repro.automata.analysis import AutomatonStatistics, statistics
from repro.automata.eva import ExtendedVA
from repro.automata.va import VariableSetAutomaton
from repro.algebra.expressions import SpannerExpression
from repro.counting.count import count_mappings
from repro.enumeration.evaluate import evaluate as run_evaluate
from repro.regex.ast import RegexNode
from repro.regex.parser import parse_regex
from repro.runtime.batch import run_batch as run_batch_compiled
from repro.runtime.compiled import CompiledEVA
from repro.runtime.engine import count_compiled, evaluate_compiled_arena
from repro.runtime.plan import ENGINE_CHOICES, ExecutionPlan, choose_plan
from repro.runtime.subset import CompiledSubsetEVA, count_subset, evaluate_subset_arena
from repro.spanners.pipeline import CompilationPipeline, CompilationReport

__all__ = ["Spanner"]


class _CompiledState:
    """Everything compiled for one alphabet key, evicted as a unit."""

    __slots__ = (
        "sequential",
        "sequential_report",
        "automaton",
        "report",
        "runtime",
        "otf_runtime",
        "plan",
        "stats",
    )

    def __init__(self) -> None:
        self.sequential: ExtendedVA | None = None
        self.sequential_report: CompilationReport | None = None
        self.automaton: ExtendedVA | None = None
        self.report: CompilationReport | None = None
        self.runtime: CompiledEVA | None = None
        self.otf_runtime: CompiledSubsetEVA | None = None
        self.plan: ExecutionPlan | None = None
        self.stats: AutomatonStatistics | None = None


class Spanner:
    """A compiled document spanner with constant-delay evaluation."""

    def __init__(
        self,
        source: str | RegexNode | VariableSetAutomaton | ExtendedVA | SpannerExpression,
        alphabet: Iterable[str] = (),
        *,
        engine: str = "auto",
        max_cached_alphabets: int = 8,
    ) -> None:
        if engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}"
            )
        if max_cached_alphabets < 1:
            raise ValueError(
                f"max_cached_alphabets must be positive, got {max_cached_alphabets}"
            )
        if isinstance(source, str):
            source = parse_regex(source)
        self._pipeline = CompilationPipeline(source, alphabet)
        self._engine = engine
        self.max_cached_alphabets = max_cached_alphabets
        # One LRU entry per alphabet key; the sequential eVA, deterministic
        # eVA, both compiled runtimes and the plan share the entry so a
        # single eviction drops them together.
        self._states: OrderedDict[frozenset[str], _CompiledState] = OrderedDict()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_regex(
        cls, pattern: str | RegexNode, alphabet: Iterable[str] = (), **options
    ) -> "Spanner":
        """Build a spanner from a regex formula (text or AST)."""
        return cls(parse_regex(pattern), alphabet, **options)

    @classmethod
    def from_va(cls, automaton: VariableSetAutomaton, **options) -> "Spanner":
        """Build a spanner from a classic variable-set automaton."""
        return cls(automaton, **options)

    @classmethod
    def from_eva(cls, automaton: ExtendedVA, **options) -> "Spanner":
        """Build a spanner from an extended variable-set automaton."""
        return cls(automaton, **options)

    @classmethod
    def from_expression(
        cls, expression: SpannerExpression, alphabet: Iterable[str] = (), **options
    ) -> "Spanner":
        """Build a spanner from a spanner-algebra expression."""
        return cls(expression, alphabet, **options)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def source(self) -> object:
        """The original specification (regex AST, automaton or expression)."""
        return self._pipeline.source

    @property
    def engine(self) -> str:
        """The default evaluation engine (one of ``ENGINE_CHOICES``)."""
        return self._engine

    def variables(self) -> frozenset[str]:
        """The capture variables of the spanner."""
        return frozenset(self._pipeline.source.variables())

    def compiled(self, document: object = "") -> ExtendedVA:
        """The deterministic sequential eVA used to evaluate *document*."""
        return self._compiled_for(document)[0]

    def compilation_report(self, document: object = "") -> CompilationReport:
        """The per-stage report of the compilation used for *document*."""
        return self._compiled_for(document)[1]

    def statistics(self, document: object = "") -> AutomatonStatistics:
        """Size statistics of the compiled automaton."""
        return statistics(self.compiled(document), check_properties=True)

    def runtime(self, document: object = "") -> CompiledEVA:
        """The interned :class:`CompiledEVA` used to evaluate *document*."""
        return self._runtime_for_key(self._alphabet_key(document))

    def otf_runtime(self, document: object = "") -> CompiledSubsetEVA:
        """The lazily determinized runtime used by ``engine="compiled-otf"``."""
        return self._otf_runtime_for_key(self._alphabet_key(document))

    def plan(self, document: object = "", *, engine: str | None = None) -> ExecutionPlan:
        """The :class:`ExecutionPlan` that would evaluate *document*."""
        return self._plan_for_key(self._alphabet_key(document), engine)

    def cached_alphabets(self) -> int:
        """How many alphabet keys currently sit in the compilation cache."""
        return len(self._states)

    # ------------------------------------------------------------------ #
    # Per-alphabet compilation cache (bounded LRU)
    # ------------------------------------------------------------------ #

    def _alphabet_key(self, document: object) -> frozenset[str]:
        if self._pipeline.source_needs_alphabet():
            return frozenset(as_text(document))
        return frozenset()

    def _state_for_key(self, key: frozenset[str]) -> _CompiledState:
        state = self._states.get(key)
        if state is None:
            state = _CompiledState()
            self._states[key] = state
            while len(self._states) > self.max_cached_alphabets:
                self._states.popitem(last=False)
        else:
            self._states.move_to_end(key)
        return state

    def _sequential_for_key(
        self, key: frozenset[str]
    ) -> tuple[ExtendedVA, CompilationReport]:
        state = self._state_for_key(key)
        if state.sequential is None:
            state.sequential, state.sequential_report = (
                self._pipeline.compile_sequential(key)
            )
        return state.sequential, state.sequential_report

    def _compiled_for(self, document: object) -> tuple[ExtendedVA, CompilationReport]:
        return self._compiled_for_key(self._alphabet_key(document))

    def _compiled_for_key(self, key: frozenset[str]) -> tuple[ExtendedVA, CompilationReport]:
        state = self._state_for_key(key)
        if state.automaton is None:
            sequential, report = self._sequential_for_key(key)
            state.automaton, state.report = self._pipeline.determinize_stage(
                sequential, report.copy()
            )
        return state.automaton, state.report

    def _runtime_for_key(self, key: frozenset[str]) -> CompiledEVA:
        state = self._state_for_key(key)
        if state.runtime is None:
            automaton, report = self._compiled_for_key(key)
            state.runtime = self._pipeline.intern(automaton, report)
        return state.runtime

    def _otf_runtime_for_key(self, key: frozenset[str]) -> CompiledSubsetEVA:
        state = self._state_for_key(key)
        if state.otf_runtime is None:
            sequential, _report = self._sequential_for_key(key)
            state.otf_runtime = CompiledSubsetEVA(sequential)
        return state.otf_runtime

    def _plan_for_key(self, key: frozenset[str], engine: str | None) -> ExecutionPlan:
        engine = self._engine if engine is None else engine
        if engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}"
            )
        if engine != "auto":
            return choose_plan(engine=engine)
        state = self._state_for_key(key)
        if state.plan is None:
            state.plan = choose_plan(self._planner_stats(key), engine="auto")
        return state.plan

    def _planner_stats(self, key: frozenset[str]) -> AutomatonStatistics:
        state = self._state_for_key(key)
        if state.stats is None:
            sequential, _report = self._sequential_for_key(key)
            state.stats = replace(
                statistics(sequential), deterministic=sequential.is_deterministic()
            )
        return state.stats

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def preprocess(self, document: object, *, engine: str | None = None):
        """Run only the preprocessing phase (Algorithm 1) on *document*.

        *engine* overrides the spanner's default.  The compiled engines
        return the flat :class:`~repro.runtime.dag.CompiledResultDag`
        arena (no ``DagNode`` objects are materialized); ``"reference"``
        returns the legacy object :class:`~repro.enumeration.evaluate.ResultDag`.
        Both support iteration, ``count()`` and ``is_empty()``.
        """
        key = self._alphabet_key(document)
        plan = self._plan_for_key(key, engine)
        if plan.engine == "reference":
            automaton, _report = self._compiled_for_key(key)
            return run_evaluate(automaton, document, check_determinism=False)
        if plan.engine == "compiled-otf":
            return evaluate_subset_arena(self._otf_runtime_for_key(key), document)
        return evaluate_compiled_arena(self._runtime_for_key(key), document)

    def enumerate(self, document: object, *, engine: str | None = None) -> Iterator[Mapping]:
        """Enumerate ``⟦γ⟧(d)`` with constant delay after linear preprocessing."""
        return iter(self.preprocess(document, engine=engine))

    def evaluate(self, document: object, *, engine: str | None = None) -> list[Mapping]:
        """Return the full list of output mappings."""
        return list(self.enumerate(document, engine=engine))

    def run_batch(
        self,
        documents: DocumentCollection | Iterable[object],
        *,
        mode: str = "serial",
        engine: str | None = None,
        chunk_size: int = 16,
        max_workers: int | None = None,
    ) -> Iterator[tuple[object, object]]:
        """Evaluate the spanner over many documents, compiling exactly once.

        The spanner is compiled over the *union* alphabet of the batch (a
        wildcard expands to every character any document contains, which is
        semantically transparent: transitions on characters a document does
        not contain can never fire).  Results stream as ``(doc_id,
        result)`` pairs in collection order; ``mode="processes"`` fans
        chunks of documents out to a multiprocessing pool, pickling the
        compiled automaton once per worker.  The engine is resolved through
        the planner exactly as for single documents; ``"compiled-otf"``
        reuses one :class:`CompiledSubsetEVA` across the whole batch, so
        subset rows discovered on one document are cache hits on the next.
        """
        documents = DocumentCollection.coerce(documents)
        if self._pipeline.source_needs_alphabet():
            key = documents.alphabet()
        else:
            key = frozenset()
        plan = self._plan_for_key(key, engine)
        if plan.engine == "compiled-otf":
            compiled: CompiledEVA | CompiledSubsetEVA = self._otf_runtime_for_key(key)
        else:
            compiled = self._runtime_for_key(key)
        return run_batch_compiled(
            compiled,
            documents,
            mode=mode,
            engine=plan.engine,
            chunk_size=chunk_size,
            max_workers=max_workers,
        )

    def count(self, document: object, *, engine: str | None = None) -> int:
        """Count ``|⟦γ⟧(d)|`` with Algorithm 3 (no enumeration).

        The compiled engines run the integer rewrite of Algorithm 3 on
        their dense (or lazily discovered) tables; ``"reference"`` runs the
        original dict-based loop.
        """
        key = self._alphabet_key(document)
        plan = self._plan_for_key(key, engine)
        if plan.engine == "reference":
            automaton, _report = self._compiled_for_key(key)
            return count_mappings(automaton, document, check_determinism=False)
        if plan.engine == "compiled-otf":
            return count_subset(self._otf_runtime_for_key(key), document)
        return count_compiled(self._runtime_for_key(key), document)

    def extract(
        self, document: object, *, engine: str | None = None
    ) -> list[dict[str, str]]:
        """Return the extracted text per output mapping.

        Each output mapping becomes a dictionary from variable name to the
        captured substring — the most convenient form for downstream use.
        """
        text = as_text(document)
        return [
            mapping.contents(text)
            for mapping in self.enumerate(document, engine=engine)
        ]

    def __call__(self, document: object) -> list[Mapping]:
        return self.evaluate(document)

    def __repr__(self) -> str:
        return f"Spanner({self._pipeline.source!r})"
