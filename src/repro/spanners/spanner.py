"""The :class:`Spanner` facade — the library's main entry point.

A :class:`Spanner` wraps any supported specification (regex formula text or
AST, classic VA, extended VA, or an algebra expression) and exposes the
evaluation operations of the paper:

* :meth:`Spanner.enumerate` — constant-delay enumeration after linear-time
  preprocessing (Algorithms 1 and 2),
* :meth:`Spanner.evaluate` — the materialized list of output mappings,
* :meth:`Spanner.count` — output counting in ``O(|A| × |d|)`` (Algorithm 3),
* :meth:`Spanner.extract` — convenience extraction of the captured text.

Compilation into a deterministic sequential eVA happens lazily and is
cached per alphabet (wildcard patterns expand over the characters of the
documents they are evaluated on); the cache is a small LRU bounded by the
``max_cached_alphabets`` knob, and every per-alphabet artifact — the
sequential eVA, the deterministic eVA, both compiled runtimes and the
execution plan — lives in **one** entry, so they are evicted together.

Documents flow down to the engines as objects: every compiled engine
translates them once per alphabet-classing signature into a cached
class-id buffer (:mod:`repro.runtime.encoding`), so calling
:meth:`Spanner.enumerate`, :meth:`Spanner.count` and
:meth:`Spanner.extract` on the same :class:`~repro.core.documents.Document`
pays a single C-level encoding pass, and the per-alphabet cache entry
carries one reusable :class:`~repro.runtime.engine.EvaluationScratch` for
the arena and counting engines.

Evaluation goes through the :class:`~repro.runtime.plan.ExecutionPlan`
layer.  ``engine="auto"`` (the default) lets the planner pick between the
dense-table arena engine (``"compiled"``), the lazily determinized subset
engine (``"compiled-otf"``, the paper's Section 4 closing remark — no
up-front :func:`~repro.automata.transforms.determinize` call at all) and is
cross-checked against the dict-based reference loop (``"reference"``).  A
concrete engine name forces that engine.  Multi-document workloads go
through :meth:`Spanner.run_batch`, which compiles once and streams every
document through the same tables.

Spanner-algebra expression sources additionally go through the cost-based
optimizer (:mod:`repro.algebra.optimizer`): under ``engine="auto"`` (or
the explicit ``"hybrid"``) the expression tree is rewritten (projection
pushdown, union/join flattening, join reordering) and each operator either
fuses into an automaton (Proposition 4.4) or cuts into a runtime operator
over result arenas (:mod:`repro.runtime.operators`).  The optimized plan
is cached in the same per-alphabet LRU entry as the other compilation
artifacts; :meth:`Spanner.explain` renders the logical → physical plan.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Iterator

from repro.core.documents import DocumentCollection, as_text
from repro.core.mappings import Mapping
from repro.automata.analysis import AutomatonStatistics, statistics
from repro.automata.eva import ExtendedVA
from repro.automata.va import VariableSetAutomaton
from repro.algebra.expressions import SpannerExpression
from repro.counting.count import count_mappings
from repro.enumeration.evaluate import evaluate as run_evaluate
from repro.regex.ast import RegexNode
from repro.regex.parser import parse_regex
from repro.runtime.batch import run_batch as run_batch_compiled
from repro.runtime.compiled import CompiledEVA
from repro.runtime.resilience import FailureReport, ResiliencePolicy
from repro.runtime.engine import EvaluationScratch
from repro.runtime.plan import (
    ENGINE_CHOICES,
    KERNEL_CHOICES,
    CacheStats,
    ExecutionPlan,
    PlanCache,
    choose_plan,
)
from repro.runtime.runlength import (
    count_subset_with_kernel,
    count_with_kernel,
    evaluate_arena_with_kernel,
)
from repro.runtime.sharding import (
    DEFAULT_SHARD_MIN_CHARS,
    ShardPool,
    count_sharded,
    evaluate_sharded,
)
from repro.runtime.streaming import StreamingEvaluator
from repro.runtime.subset import CompiledSubsetEVA, evaluate_subset_arena
from repro.spanners.pipeline import CompilationPipeline, CompilationReport

__all__ = ["Spanner"]


class _CompiledState:
    """Everything compiled for one alphabet key, evicted as a unit."""

    __slots__ = (
        "sequential",
        "sequential_report",
        "automaton",
        "report",
        "runtime",
        "otf_runtime",
        "scratch",
        "plan",
        "stats",
        "optimized",
        "shard_pool",
    )

    def __init__(self) -> None:
        self.sequential: ExtendedVA | None = None
        self.sequential_report: CompilationReport | None = None
        self.automaton: ExtendedVA | None = None
        self.report: CompilationReport | None = None
        self.runtime: CompiledEVA | None = None
        self.otf_runtime: CompiledSubsetEVA | None = None
        self.scratch: EvaluationScratch | None = None
        self.plan: ExecutionPlan | None = None
        self.stats: AutomatonStatistics | None = None
        self.optimized = None  # OptimizedPlan, physical tree prepared for the key
        self.shard_pool: ShardPool | None = None


class Spanner:
    """A compiled document spanner with constant-delay evaluation."""

    def __init__(
        self,
        source: str | RegexNode | VariableSetAutomaton | ExtendedVA | SpannerExpression,
        alphabet: Iterable[str] = (),
        *,
        engine: str = "auto",
        kernel: str = "auto",
        max_cached_alphabets: int = 8,
        unchecked: bool = False,
        shard_min_chars: int = DEFAULT_SHARD_MIN_CHARS,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        if engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}"
            )
        if kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_CHOICES}"
            )
        if shard_min_chars < 1:
            raise ValueError(
                f"shard_min_chars must be positive, got {shard_min_chars}"
            )
        if isinstance(source, str):
            source = parse_regex(source)
        self._pipeline = CompilationPipeline(source, alphabet)
        self._engine = engine
        self._kernel = kernel
        self._unchecked = unchecked
        # Documents shorter than this run serially even when ``workers``
        # asks for shard parallelism: below the threshold the serial arena
        # engine beats the cost of shipping shard tasks to a pool.
        self._shard_min_chars = shard_min_chars
        # Fault-tolerance policy applied to every pooled execution this
        # spanner starts (sharded evaluate/count, run_batch).  ``None``
        # means the module default: retries plus inline fallback, no
        # quarantine, no resource budget.
        self._resilience = resilience
        # One LRU entry per alphabet key; the sequential eVA, deterministic
        # eVA, both compiled runtimes and the plan share the entry so a
        # single eviction drops them together.  The cache is the shared
        # PlanCache structure of the plan layer — thread-safe and counted,
        # so the server front-end can expose per-spanner hit ratios too.
        self._states: PlanCache[frozenset[str], _CompiledState] = PlanCache(
            max_cached_alphabets, name="spanner-alphabets"
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_regex(
        cls, pattern: str | RegexNode, alphabet: Iterable[str] = (), **options
    ) -> "Spanner":
        """Build a spanner from a regex formula (text or AST)."""
        return cls(parse_regex(pattern), alphabet, **options)

    @classmethod
    def from_va(cls, automaton: VariableSetAutomaton, **options) -> "Spanner":
        """Build a spanner from a classic variable-set automaton."""
        return cls(automaton, **options)

    @classmethod
    def from_eva(cls, automaton: ExtendedVA, **options) -> "Spanner":
        """Build a spanner from an extended variable-set automaton."""
        return cls(automaton, **options)

    @classmethod
    def from_expression(
        cls, expression: SpannerExpression, alphabet: Iterable[str] = (), **options
    ) -> "Spanner":
        """Build a spanner from a spanner-algebra expression."""
        return cls(expression, alphabet, **options)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def source(self) -> object:
        """The original specification (regex AST, automaton or expression)."""
        return self._pipeline.source

    @property
    def engine(self) -> str:
        """The default evaluation engine (one of ``ENGINE_CHOICES``)."""
        return self._engine

    @property
    def kernel(self) -> str:
        """The default inner-loop kernel (one of ``KERNEL_CHOICES``).

        ``auto`` resolves per document from its measured run-length
        statistics; ``runlength`` forces the run-length kernels of
        :mod:`repro.runtime.runlength` on the count and arena paths
        (engines without a run-length path — ``reference``, ``hybrid``
        and the ``compiled-otf`` capture path — reject or ignore it).
        """
        return self._kernel

    def variables(self) -> frozenset[str]:
        """The capture variables of the spanner."""
        return frozenset(self._pipeline.source.variables())

    def compiled(self, document: object = "") -> ExtendedVA:
        """The deterministic sequential eVA used to evaluate *document*."""
        return self._compiled_for(document)[0]

    def compilation_report(self, document: object = "") -> CompilationReport:
        """The per-stage report of the compilation used for *document*."""
        return self._compiled_for(document)[1]

    def statistics(self, document: object = "") -> AutomatonStatistics:
        """Size statistics of the compiled automaton."""
        return statistics(self.compiled(document), check_properties=True)

    def runtime(self, document: object = "") -> CompiledEVA:
        """The interned :class:`CompiledEVA` used to evaluate *document*."""
        return self._runtime_for_key(self._alphabet_key(document))

    def otf_runtime(self, document: object = "") -> CompiledSubsetEVA:
        """The lazily determinized runtime used by ``engine="compiled-otf"``."""
        return self._otf_runtime_for_key(self._alphabet_key(document))

    def plan(
        self,
        document: object = "",
        *,
        engine: str | None = None,
        kernel: str | None = None,
    ) -> ExecutionPlan:
        """The :class:`ExecutionPlan` that would evaluate *document*."""
        return self._plan_for_key(self._alphabet_key(document), engine, kernel)

    @property
    def max_cached_alphabets(self) -> int:
        """The bound of the per-alphabet compilation cache."""
        return self._states.max_entries

    def cached_alphabets(self) -> int:
        """How many alphabet keys currently sit in the compilation cache."""
        return len(self._states)

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the per-alphabet compilation cache."""
        return self._states.stats()

    def explain(self, document: object = "", *, engine: str | None = None) -> str:
        """Render the logical and physical plan that evaluates *document*.

        Shows the logical operator tree of the source (non-expression
        sources appear as a single atom), the rewrite rules that fired,
        the optimized tree annotated with estimated automaton sizes, the
        physical operator tree with each fused leaf's engine, and the
        resolved :class:`ExecutionPlan`.  This is what the ``repro
        explain`` CLI subcommand prints.
        """
        key = self._alphabet_key(document)
        plan = self._plan_for_key(key, engine)
        # Hybrid plans were prepared by _plan_for_key; a fully-fused plan
        # is rendered unprepared — its single leaf would recompile the
        # monolithic automaton that the "execution plan" line already
        # describes.
        optimized = self._optimized_for_key(key)
        source = repr(self._pipeline.source)
        if len(source) > 120:
            source = source[:117] + "..."
        lines = [f"source: {source}", "", optimized.explain(), ""]
        lines.append(f"execution plan: engine={plan.engine}")
        lines.append(f"reason: {plan.reason}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Per-alphabet compilation cache (bounded LRU)
    # ------------------------------------------------------------------ #

    def _alphabet_key(self, document: object) -> frozenset[str]:
        if self._pipeline.source_needs_alphabet():
            return frozenset(as_text(document))
        return frozenset()

    def _state_for_key(self, key: frozenset[str]) -> _CompiledState:
        return self._states.get_or_create(key, _CompiledState)

    def _sequential_for_key(
        self, key: frozenset[str]
    ) -> tuple[ExtendedVA, CompilationReport]:
        state = self._state_for_key(key)
        if state.sequential is None:
            state.sequential, state.sequential_report = (
                self._pipeline.compile_sequential(key)
            )
        return state.sequential, state.sequential_report

    def _compiled_for(self, document: object) -> tuple[ExtendedVA, CompilationReport]:
        return self._compiled_for_key(self._alphabet_key(document))

    def _compiled_for_key(self, key: frozenset[str]) -> tuple[ExtendedVA, CompilationReport]:
        state = self._state_for_key(key)
        if state.automaton is None:
            sequential, report = self._sequential_for_key(key)
            state.automaton, state.report = self._pipeline.determinize_stage(
                sequential, report.copy()
            )
        return state.automaton, state.report

    def _runtime_for_key(self, key: frozenset[str]) -> CompiledEVA:
        state = self._state_for_key(key)
        if state.runtime is None:
            automaton, report = self._compiled_for_key(key)
            state.runtime = self._pipeline.intern(automaton, report)
        return state.runtime

    def _scratch_for_key(self, key: frozenset[str]) -> EvaluationScratch:
        """The per-alphabet reusable :class:`EvaluationScratch`.

        Shared by the arena engine and :func:`count_compiled`, so repeated
        ``enumerate``/``count`` calls through the facade allocate no slot
        arrays.  A scratch is single-threaded, like the compilation cache
        it lives in.
        """
        state = self._state_for_key(key)
        if state.scratch is None:
            state.scratch = EvaluationScratch(self._runtime_for_key(key))
        return state.scratch

    def _otf_runtime_for_key(self, key: frozenset[str]) -> CompiledSubsetEVA:
        state = self._state_for_key(key)
        if state.otf_runtime is None:
            sequential, _report = self._sequential_for_key(key)
            state.otf_runtime = CompiledSubsetEVA(sequential)
        return state.otf_runtime

    def _optimized_for_key(self, key: frozenset[str], *, prepare: bool = False):
        """The cached :class:`OptimizedPlan` for *key*.

        The physical tree's fused leaves are only compiled when *prepare*
        is true — hybrid plans need them, but a fully-fused plan executes
        through the regular monolithic cache instead, so preparing its
        single leaf would compile the expression twice for nothing.
        """
        state = self._state_for_key(key)
        if state.optimized is None:
            state.optimized = self._pipeline.optimize_expression(
                key, unchecked=self._unchecked
            )
        if prepare:
            # Leaves compile over base ∪ key, exactly like the monolithic
            # pipeline (and the optimizer's own atom profiling) do.
            state.optimized.physical.prepare(self._pipeline.base_alphabet | key)
        return state.optimized

    def _reject_hybrid_streaming(self, key: frozenset[str]) -> None:
        """Refuse to stream an expression whose plan must be hybrid.

        When the optimizer cuts the expression tree, the monolithic
        fused automaton is not a sound substitute (joins over
        non-provably-functional operands silently lose mappings — the
        very reason hybrid plans exist), so streaming cannot quietly
        fall back to it the way whole-document evaluation never would.
        """
        if not isinstance(self._pipeline.source, SpannerExpression):
            return
        if self._optimized_for_key(key).is_hybrid:
            raise ValueError(
                "this expression optimizes to a hybrid operator plan, which "
                "cannot evaluate chunk-fed documents; evaluate whole "
                "documents (engine='hybrid'/'auto') instead"
            )

    def _plan_for_key(
        self,
        key: frozenset[str],
        engine: str | None,
        kernel: str | None = None,
    ) -> ExecutionPlan:
        engine = self._engine if engine is None else engine
        kernel = self._kernel if kernel is None else kernel
        if engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}"
            )
        if kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_CHOICES}"
            )
        # Expression sources consult the cost-based optimizer: when it cuts
        # the tree, both "auto" and the explicit "hybrid" run the physical
        # operator plan.  When it fuses everything (or the source is not an
        # expression at all), "hybrid" degrades to "auto" and the regular
        # automaton-statistics planner decides over the original monolithic
        # compilation (already cached alongside, and byte-identical to what
        # pre-optimizer versions produced).
        if engine in ("auto", "hybrid") and isinstance(
            self._pipeline.source, SpannerExpression
        ):
            optimized = self._optimized_for_key(key)
            if optimized.is_hybrid:
                self._optimized_for_key(key, prepare=True)
                state = self._state_for_key(key)
                if state.plan is None or state.plan.engine != "hybrid":
                    state.plan = ExecutionPlan(
                        "hybrid",
                        False,
                        "optimizer cut the expression tree: "
                        f"rewrites=[{', '.join(optimized.applied_rules) or 'none'}]",
                        operators=optimized.physical,
                    )
                # An explicit runlength kernel cannot ride a hybrid plan;
                # replace() re-validates and raises the plan-layer error.
                if state.plan.kernel != kernel:
                    return replace(state.plan, kernel=kernel)
                return state.plan
        if engine == "hybrid":
            engine = "auto"
        if engine != "auto":
            return choose_plan(engine=engine, kernel=kernel)
        state = self._state_for_key(key)
        if state.plan is None or state.plan.engine == "hybrid":
            state.plan = choose_plan(self._planner_stats(key), engine="auto")
        if state.plan.kernel != kernel:
            return replace(state.plan, kernel=kernel)
        return state.plan

    def _sharded_plan_for_key(
        self,
        key: frozenset[str],
        engine: str | None,
        workers: int,
        kernel: str | None = None,
    ) -> ExecutionPlan:
        """Resolve a shard-parallel plan (``workers > 1``) for *key*.

        Sharding runs the dense-table compiled engine; an expression
        whose optimizer plan is hybrid cannot silently degrade to the
        monolithic fused automaton (the same soundness argument as for
        streaming), so it is rejected rather than mis-evaluated.
        """
        engine = self._engine if engine is None else engine
        if engine in ("auto", "hybrid") and isinstance(
            self._pipeline.source, SpannerExpression
        ):
            if self._optimized_for_key(key).is_hybrid:
                raise ValueError(
                    "this expression optimizes to a hybrid operator plan, "
                    "which cannot shard one document across workers; "
                    "evaluate without workers instead"
                )
        if engine == "hybrid":
            engine = "auto"
        return choose_plan(
            engine=engine,
            shard_workers=workers,
            kernel=self._kernel if kernel is None else kernel,
        )

    def _shard_pool_for_key(self, key: frozenset[str], workers: int) -> ShardPool:
        """The per-alphabet persistent shard worker pool (lazily built).

        Cached in the same LRU entry as the compiled runtime it is bound
        to, so eviction drops both together (the pool's ``__del__``
        terminates its processes).  A request with a different worker
        count replaces the pool.
        """
        state = self._state_for_key(key)
        pool = state.shard_pool
        if pool is not None and pool.workers == workers and not pool.closed:
            return pool
        if pool is not None:
            pool.close()
        pool = ShardPool(self._runtime_for_key(key), workers)
        state.shard_pool = pool
        return pool

    def close(self) -> None:
        """Release worker pools held by the compilation cache.

        Idempotent; the spanner stays usable (pools are rebuilt on the
        next ``workers > 1`` call).  Without it, pools are torn down by
        garbage collection of their cache entries.
        """
        for key in self._states.keys():
            state = self._states.get(key)
            if state is not None and state.shard_pool is not None:
                state.shard_pool.close()
                state.shard_pool = None

    def _planner_stats(self, key: frozenset[str]) -> AutomatonStatistics:
        state = self._state_for_key(key)
        if state.stats is None:
            sequential, _report = self._sequential_for_key(key)
            state.stats = replace(
                statistics(sequential), deterministic=sequential.is_deterministic()
            )
        return state.stats

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def preprocess(
        self,
        document: object,
        *,
        engine: str | None = None,
        workers: int | None = None,
        kernel: str | None = None,
    ):
        """Run only the preprocessing phase (Algorithm 1) on *document*.

        *engine* overrides the spanner's default.  The compiled engines
        return the flat :class:`~repro.runtime.dag.CompiledResultDag`
        arena (no ``DagNode`` objects are materialized); ``"reference"``
        returns the legacy object :class:`~repro.enumeration.evaluate.ResultDag`.
        Both support iteration, ``count()`` and ``is_empty()``.

        ``workers > 1`` splits the document into shards evaluated in
        parallel by a persistent worker pool
        (:mod:`repro.runtime.sharding`); the arena is bit-identical to
        the serial one.  Only the ``compiled`` engine (or ``auto``) can
        shard, and documents shorter than the spanner's
        ``shard_min_chars`` run serially anyway — the pool is then never
        even started.

        *kernel* overrides the spanner's default inner loop for the
        ``compiled`` engine: ``"runlength"`` evaluates the run-length
        encoded buffer with the generalized sprint (the arena stays
        bit-identical), ``"auto"`` decides per document.  The
        ``compiled-otf`` capture path has no run-length arena and runs
        scalar regardless.
        """
        key = self._alphabet_key(document)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if workers is not None and workers > 1:
            plan = self._sharded_plan_for_key(key, engine, workers, kernel)
            runtime = self._runtime_for_key(key)
            if len(as_text(document)) >= self._shard_min_chars:
                return evaluate_sharded(
                    runtime,
                    document,
                    pool=self._shard_pool_for_key(key, plan.shard_workers),
                    shards=plan.shard_workers,
                    kernel=plan.kernel,
                    policy=self._resilience,
                )
            return evaluate_arena_with_kernel(
                runtime,
                document,
                kernel=plan.kernel,
                scratch=self._scratch_for_key(key),
            )
        plan = self._plan_for_key(key, engine, kernel)
        if plan.engine == "hybrid":
            return plan.operators.execute(document)
        if plan.engine == "reference":
            automaton, _report = self._compiled_for_key(key)
            return run_evaluate(automaton, document, check_determinism=False)
        if plan.engine == "compiled-otf":
            return evaluate_subset_arena(self._otf_runtime_for_key(key), document)
        return evaluate_arena_with_kernel(
            self._runtime_for_key(key),
            document,
            kernel=plan.kernel,
            scratch=self._scratch_for_key(key),
        )

    def enumerate(
        self,
        document: object,
        *,
        engine: str | None = None,
        workers: int | None = None,
        kernel: str | None = None,
    ) -> Iterator[Mapping]:
        """Enumerate ``⟦γ⟧(d)`` with constant delay after linear preprocessing."""
        return iter(
            self.preprocess(
                document, engine=engine, workers=workers, kernel=kernel
            )
        )

    def evaluate(
        self,
        document: object,
        *,
        engine: str | None = None,
        workers: int | None = None,
        kernel: str | None = None,
    ) -> list[Mapping]:
        """Return the full list of output mappings."""
        return list(
            self.enumerate(
                document, engine=engine, workers=workers, kernel=kernel
            )
        )

    def stream(
        self,
        *,
        alphabet: Iterable[str] = (),
        emit: str = "on_finish",
        engine: str | None = None,
        fast_path: bool = True,
        retain_settled: bool = True,
    ) -> StreamingEvaluator:
        """Open a chunk-fed evaluation of one document.

        Returns a :class:`~repro.runtime.streaming.StreamingEvaluator`:
        ``feed()`` it ``str`` or ``bytes`` chunks as they arrive and
        ``finish()`` it at end of stream.  Because the document is not
        known up front, wildcard patterns compile over *alphabet* (plus
        the spanner's base alphabet) instead of the document's own
        characters — declare every character the stream may carry.
        Characters outside it kill every run (the compiled engines'
        semantics); under ``emit="incremental"`` they raise once
        mappings have been delivered, since delivery cannot be
        retracted.  The plan layer resolves the engine with
        ``streaming=True`` — only ``"compiled"`` (or ``"auto"``) can
        stream.
        """
        plan = choose_plan(
            engine=self._engine if engine is None else engine, streaming=True
        )
        assert plan.streaming and plan.engine == "compiled"
        if self._pipeline.source_needs_alphabet():
            key = frozenset(alphabet)
        else:
            key = frozenset()
        self._reject_hybrid_streaming(key)
        # A stream holds its evaluator state across feeds, so it gets a
        # private scratch: the per-alphabet cached scratch may be
        # borrowed by interleaved enumerate/count calls meanwhile.
        # ``retain_settled=False`` keeps an unbounded tail's memory at
        # the in-flight state: feed() still returns settled mappings,
        # finish() just doesn't replay them.
        return StreamingEvaluator(
            self._runtime_for_key(key),
            emit=emit,
            fast_path=fast_path,
            retain_settled=retain_settled,
        )

    def run_batch(
        self,
        documents: DocumentCollection | Iterable[object],
        *,
        mode: str = "serial",
        engine: str | None = None,
        kernel: str | None = None,
        chunk_size: int = 16,
        max_workers: int | None = None,
        streaming: bool = False,
        stream_chunk_size: int = 65536,
        shard_min_chars: int | None = None,
        policy: ResiliencePolicy | None = None,
        report: FailureReport | None = None,
    ) -> Iterator[tuple[object, object]]:
        """Evaluate the spanner over many documents, compiling exactly once.

        The spanner is compiled over the *union* alphabet of the batch (a
        wildcard expands to every character any document contains, which is
        semantically transparent: transitions on characters a document does
        not contain can never fire).  Results stream as ``(doc_id,
        result)`` pairs in collection order; ``mode="processes"`` fans
        chunks of documents out to a multiprocessing pool, pickling the
        compiled automaton once per worker.  The engine is resolved through
        the planner exactly as for single documents; ``"compiled-otf"``
        reuses one :class:`CompiledSubsetEVA` across the whole batch, so
        subset rows discovered on one document are cache hits on the next.

        With ``streaming=True`` every document is fed to the compiled
        engine in ``stream_chunk_size``-character slices through the
        chunk-fed evaluator instead of being evaluated whole: results
        are identical (the streaming ``on_finish`` arena is array-equal
        to the whole-document one), but no whole-document class-id
        buffer is ever materialized, cutting each worker's peak memory
        to one encoded chunk plus the live arena.

        ``shard_min_chars`` (processes mode, compiled engine only) turns
        on intra-document parallelism for outsized documents: any
        document at least that long is split into shards evaluated
        across the whole pool (:mod:`repro.runtime.sharding`) instead of
        occupying a single worker while the rest idle.

        *policy* overrides the spanner's fault-tolerance policy for this
        batch (``None`` falls back to the spanner's ``resilience``
        option, then the module default); with ``policy.quarantine`` a
        *report* collects the quarantined documents and the
        retry/rebuild/fallback counters for the run.
        """
        documents = DocumentCollection.coerce(documents)
        if self._pipeline.source_needs_alphabet():
            key = documents.alphabet()
        else:
            key = frozenset()
        if streaming:
            plan = choose_plan(
                engine=self._engine if engine is None else engine,
                streaming=True,
                kernel=self._kernel if kernel is None else kernel,
            )
            self._reject_hybrid_streaming(key)
        else:
            plan = self._plan_for_key(key, engine, kernel)
        if plan.engine == "hybrid":
            compiled: object = plan.operators
        elif plan.engine == "compiled-otf":
            compiled = self._otf_runtime_for_key(key)
        else:
            compiled = self._runtime_for_key(key)
        return run_batch_compiled(
            compiled,
            documents,
            mode=mode,
            engine=plan.engine,
            kernel=plan.kernel,
            chunk_size=chunk_size,
            max_workers=max_workers,
            streaming=plan.streaming,
            stream_chunk_size=stream_chunk_size,
            shard_min_chars=shard_min_chars,
            policy=self._resilience if policy is None else policy,
            report=report,
        )

    def count(
        self,
        document: object,
        *,
        engine: str | None = None,
        workers: int | None = None,
        kernel: str | None = None,
    ) -> int:
        """Count ``|⟦γ⟧(d)|`` with Algorithm 3 (no enumeration).

        The compiled engines run the integer rewrite of Algorithm 3 on
        their dense (or lazily discovered) tables; ``"reference"`` runs the
        original dict-based loop.  ``workers > 1`` shards the count pass
        the same way :meth:`preprocess` shards evaluation — without even
        a replay phase, since counts compose linearly across shards.

        *kernel* overrides the spanner's default inner loop:
        ``"runlength"`` turns the count pass into a product of per-run
        matrices (:mod:`repro.runtime.runlength`) on both the dense and
        the lazily determinized tables; ``"auto"`` decides per document
        from its measured run statistics.
        """
        key = self._alphabet_key(document)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if workers is not None and workers > 1:
            shard_plan = self._sharded_plan_for_key(key, engine, workers, kernel)
            runtime = self._runtime_for_key(key)
            if len(as_text(document)) >= self._shard_min_chars:
                return count_sharded(
                    runtime,
                    document,
                    pool=self._shard_pool_for_key(key, shard_plan.shard_workers),
                    shards=shard_plan.shard_workers,
                    kernel=shard_plan.kernel,
                    policy=self._resilience,
                )
            return count_with_kernel(
                runtime,
                document,
                kernel=shard_plan.kernel,
                scratch=self._scratch_for_key(key),
            )
        plan = self._plan_for_key(key, engine, kernel)
        if plan.engine == "hybrid":
            # Cut-edge operators dedup while materializing, so the count is
            # the size of the (already deduplicated) result set.
            return plan.operators.execute(document).count()
        if plan.engine == "reference":
            automaton, _report = self._compiled_for_key(key)
            return count_mappings(automaton, document, check_determinism=False)
        if plan.engine == "compiled-otf":
            return count_subset_with_kernel(
                self._otf_runtime_for_key(key), document, kernel=plan.kernel
            )
        return count_with_kernel(
            self._runtime_for_key(key),
            document,
            kernel=plan.kernel,
            scratch=self._scratch_for_key(key),
        )

    def extract(
        self,
        document: object,
        *,
        engine: str | None = None,
        workers: int | None = None,
        kernel: str | None = None,
    ) -> list[dict[str, str]]:
        """Return the extracted text per output mapping.

        Each output mapping becomes a dictionary from variable name to the
        captured substring — the most convenient form for downstream use.
        """
        text = as_text(document)
        return [
            mapping.contents(text)
            for mapping in self.enumerate(
                document, engine=engine, workers=workers, kernel=kernel
            )
        ]

    def __call__(self, document: object) -> list[Mapping]:
        return self.evaluate(document)

    def __repr__(self) -> str:
        return f"Spanner({self._pipeline.source!r})"
