"""The :class:`Spanner` facade — the library's main entry point.

A :class:`Spanner` wraps any supported specification (regex formula text or
AST, classic VA, extended VA, or an algebra expression) and exposes the
evaluation operations of the paper:

* :meth:`Spanner.enumerate` — constant-delay enumeration after linear-time
  preprocessing (Algorithms 1 and 2),
* :meth:`Spanner.evaluate` — the materialized list of output mappings,
* :meth:`Spanner.count` — output counting in ``O(|A| × |d|)`` (Algorithm 3),
* :meth:`Spanner.extract` — convenience extraction of the captured text.

Compilation into a deterministic sequential eVA happens lazily and is
cached per alphabet, because wildcard patterns expand over the characters
of the documents they are evaluated on.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.documents import as_text
from repro.core.mappings import Mapping
from repro.automata.analysis import AutomatonStatistics, statistics
from repro.automata.eva import ExtendedVA
from repro.automata.va import VariableSetAutomaton
from repro.algebra.expressions import SpannerExpression
from repro.counting.count import count_mappings
from repro.enumeration.evaluate import ResultDag, evaluate as run_evaluate
from repro.regex.ast import RegexNode
from repro.regex.parser import parse_regex
from repro.spanners.pipeline import CompilationPipeline, CompilationReport

__all__ = ["Spanner"]


class Spanner:
    """A compiled document spanner with constant-delay evaluation."""

    def __init__(
        self,
        source: str | RegexNode | VariableSetAutomaton | ExtendedVA | SpannerExpression,
        alphabet: Iterable[str] = (),
    ) -> None:
        if isinstance(source, str):
            source = parse_regex(source)
        self._pipeline = CompilationPipeline(source, alphabet)
        self._cache: dict[frozenset[str], tuple[ExtendedVA, CompilationReport]] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_regex(cls, pattern: str | RegexNode, alphabet: Iterable[str] = ()) -> "Spanner":
        """Build a spanner from a regex formula (text or AST)."""
        return cls(parse_regex(pattern), alphabet)

    @classmethod
    def from_va(cls, automaton: VariableSetAutomaton) -> "Spanner":
        """Build a spanner from a classic variable-set automaton."""
        return cls(automaton)

    @classmethod
    def from_eva(cls, automaton: ExtendedVA) -> "Spanner":
        """Build a spanner from an extended variable-set automaton."""
        return cls(automaton)

    @classmethod
    def from_expression(
        cls, expression: SpannerExpression, alphabet: Iterable[str] = ()
    ) -> "Spanner":
        """Build a spanner from a spanner-algebra expression."""
        return cls(expression, alphabet)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def source(self) -> object:
        """The original specification (regex AST, automaton or expression)."""
        return self._pipeline.source

    def variables(self) -> frozenset[str]:
        """The capture variables of the spanner."""
        return frozenset(self._pipeline.source.variables())

    def compiled(self, document: object = "") -> ExtendedVA:
        """The deterministic sequential eVA used to evaluate *document*."""
        return self._compiled_for(document)[0]

    def compilation_report(self, document: object = "") -> CompilationReport:
        """The per-stage report of the compilation used for *document*."""
        return self._compiled_for(document)[1]

    def statistics(self, document: object = "") -> AutomatonStatistics:
        """Size statistics of the compiled automaton."""
        return statistics(self.compiled(document), check_properties=True)

    def _compiled_for(self, document: object) -> tuple[ExtendedVA, CompilationReport]:
        if self._pipeline.source_needs_alphabet():
            key = frozenset(as_text(document))
        else:
            key = frozenset()
        if key not in self._cache:
            self._cache[key] = self._pipeline.compile(key)
        return self._cache[key]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def preprocess(self, document: object) -> ResultDag:
        """Run only the preprocessing phase (Algorithm 1) on *document*."""
        automaton, _report = self._compiled_for(document)
        return run_evaluate(automaton, document, check_determinism=False)

    def enumerate(self, document: object) -> Iterator[Mapping]:
        """Enumerate ``⟦γ⟧(d)`` with constant delay after linear preprocessing."""
        return iter(self.preprocess(document))

    def evaluate(self, document: object) -> list[Mapping]:
        """Return the full list of output mappings."""
        return list(self.enumerate(document))

    def count(self, document: object) -> int:
        """Count ``|⟦γ⟧(d)|`` with Algorithm 3 (no enumeration)."""
        automaton, _report = self._compiled_for(document)
        return count_mappings(automaton, document, check_determinism=False)

    def extract(self, document: object) -> list[dict[str, str]]:
        """Return the extracted text per output mapping.

        Each output mapping becomes a dictionary from variable name to the
        captured substring — the most convenient form for downstream use.
        """
        text = as_text(document)
        return [mapping.contents(text) for mapping in self.enumerate(document)]

    def __call__(self, document: object) -> list[Mapping]:
        return self.evaluate(document)

    def __repr__(self) -> str:
        return f"Spanner({self._pipeline.source!r})"
