"""The :class:`Spanner` facade — the library's main entry point.

A :class:`Spanner` wraps any supported specification (regex formula text or
AST, classic VA, extended VA, or an algebra expression) and exposes the
evaluation operations of the paper:

* :meth:`Spanner.enumerate` — constant-delay enumeration after linear-time
  preprocessing (Algorithms 1 and 2),
* :meth:`Spanner.evaluate` — the materialized list of output mappings,
* :meth:`Spanner.count` — output counting in ``O(|A| × |d|)`` (Algorithm 3),
* :meth:`Spanner.extract` — convenience extraction of the captured text.

Compilation into a deterministic sequential eVA happens lazily and is
cached per alphabet, because wildcard patterns expand over the characters
of the documents they are evaluated on.

Two evaluation engines are available.  ``engine="compiled"`` (the default)
interns the deterministic seVA into the integer-indexed
:class:`~repro.runtime.compiled.CompiledEVA` and runs the dense inner loop
of :mod:`repro.runtime.engine`; ``engine="reference"`` keeps the original
dict-based Algorithm 1 of :mod:`repro.enumeration.evaluate`, which the
property tests use to cross-check the compiled runtime.  Multi-document
workloads go through :meth:`Spanner.run_batch`, which compiles once and
streams every document through the same tables.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.documents import DocumentCollection, as_text
from repro.core.mappings import Mapping
from repro.automata.analysis import AutomatonStatistics, statistics
from repro.automata.eva import ExtendedVA
from repro.automata.va import VariableSetAutomaton
from repro.algebra.expressions import SpannerExpression
from repro.counting.count import count_mappings
from repro.enumeration.evaluate import ResultDag, evaluate as run_evaluate
from repro.regex.ast import RegexNode
from repro.regex.parser import parse_regex
from repro.runtime.batch import ENGINES, run_batch as run_batch_compiled
from repro.runtime.compiled import CompiledEVA
from repro.runtime.engine import evaluate_compiled
from repro.spanners.pipeline import CompilationPipeline, CompilationReport

__all__ = ["Spanner"]


class Spanner:
    """A compiled document spanner with constant-delay evaluation."""

    def __init__(
        self,
        source: str | RegexNode | VariableSetAutomaton | ExtendedVA | SpannerExpression,
        alphabet: Iterable[str] = (),
        *,
        engine: str = "compiled",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if isinstance(source, str):
            source = parse_regex(source)
        self._pipeline = CompilationPipeline(source, alphabet)
        self._engine = engine
        self._cache: dict[frozenset[str], tuple[ExtendedVA, CompilationReport]] = {}
        self._runtime_cache: dict[frozenset[str], CompiledEVA] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_regex(cls, pattern: str | RegexNode, alphabet: Iterable[str] = ()) -> "Spanner":
        """Build a spanner from a regex formula (text or AST)."""
        return cls(parse_regex(pattern), alphabet)

    @classmethod
    def from_va(cls, automaton: VariableSetAutomaton) -> "Spanner":
        """Build a spanner from a classic variable-set automaton."""
        return cls(automaton)

    @classmethod
    def from_eva(cls, automaton: ExtendedVA) -> "Spanner":
        """Build a spanner from an extended variable-set automaton."""
        return cls(automaton)

    @classmethod
    def from_expression(
        cls, expression: SpannerExpression, alphabet: Iterable[str] = ()
    ) -> "Spanner":
        """Build a spanner from a spanner-algebra expression."""
        return cls(expression, alphabet)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def source(self) -> object:
        """The original specification (regex AST, automaton or expression)."""
        return self._pipeline.source

    @property
    def engine(self) -> str:
        """The default evaluation engine (``"compiled"`` or ``"reference"``)."""
        return self._engine

    def variables(self) -> frozenset[str]:
        """The capture variables of the spanner."""
        return frozenset(self._pipeline.source.variables())

    def compiled(self, document: object = "") -> ExtendedVA:
        """The deterministic sequential eVA used to evaluate *document*."""
        return self._compiled_for(document)[0]

    def compilation_report(self, document: object = "") -> CompilationReport:
        """The per-stage report of the compilation used for *document*."""
        return self._compiled_for(document)[1]

    def statistics(self, document: object = "") -> AutomatonStatistics:
        """Size statistics of the compiled automaton."""
        return statistics(self.compiled(document), check_properties=True)

    def runtime(self, document: object = "") -> CompiledEVA:
        """The interned :class:`CompiledEVA` used to evaluate *document*."""
        return self._runtime_for_key(self._alphabet_key(document))

    def _alphabet_key(self, document: object) -> frozenset[str]:
        if self._pipeline.source_needs_alphabet():
            return frozenset(as_text(document))
        return frozenset()

    def _compiled_for(self, document: object) -> tuple[ExtendedVA, CompilationReport]:
        return self._compiled_for_key(self._alphabet_key(document))

    def _compiled_for_key(self, key: frozenset[str]) -> tuple[ExtendedVA, CompilationReport]:
        if key not in self._cache:
            self._cache[key] = self._pipeline.compile(key)
        return self._cache[key]

    def _runtime_for_key(self, key: frozenset[str]) -> CompiledEVA:
        compiled = self._runtime_cache.get(key)
        if compiled is None:
            automaton, report = self._compiled_for_key(key)
            compiled = self._pipeline.intern(automaton, report)
            self._runtime_cache[key] = compiled
        return compiled

    def _resolve_engine(self, engine: str | None) -> str:
        engine = self._engine if engine is None else engine
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        return engine

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def preprocess(self, document: object, *, engine: str | None = None) -> ResultDag:
        """Run only the preprocessing phase (Algorithm 1) on *document*.

        *engine* overrides the spanner's default: ``"compiled"`` runs the
        integer runtime, ``"reference"`` the original dict-based loop.
        """
        if self._resolve_engine(engine) == "reference":
            automaton, _report = self._compiled_for(document)
            return run_evaluate(automaton, document, check_determinism=False)
        return evaluate_compiled(self._runtime_for_key(self._alphabet_key(document)), document)

    def enumerate(self, document: object, *, engine: str | None = None) -> Iterator[Mapping]:
        """Enumerate ``⟦γ⟧(d)`` with constant delay after linear preprocessing."""
        return iter(self.preprocess(document, engine=engine))

    def evaluate(self, document: object, *, engine: str | None = None) -> list[Mapping]:
        """Return the full list of output mappings."""
        return list(self.enumerate(document, engine=engine))

    def run_batch(
        self,
        documents: DocumentCollection | Iterable[object],
        *,
        mode: str = "serial",
        engine: str | None = None,
        chunk_size: int = 16,
        max_workers: int | None = None,
    ) -> Iterator[tuple[object, ResultDag]]:
        """Evaluate the spanner over many documents, compiling exactly once.

        The spanner is compiled over the *union* alphabet of the batch (a
        wildcard expands to every character any document contains, which is
        semantically transparent: transitions on characters a document does
        not contain can never fire).  Results stream as ``(doc_id,
        ResultDag)`` pairs in collection order; ``mode="processes"`` fans
        chunks of documents out to a multiprocessing pool, pickling the
        compiled automaton once per worker.
        """
        documents = DocumentCollection.coerce(documents)
        if self._pipeline.source_needs_alphabet():
            key = documents.alphabet()
        else:
            key = frozenset()
        compiled = self._runtime_for_key(key)
        return run_batch_compiled(
            compiled,
            documents,
            mode=mode,
            engine=self._resolve_engine(engine),
            chunk_size=chunk_size,
            max_workers=max_workers,
        )

    def count(self, document: object) -> int:
        """Count ``|⟦γ⟧(d)|`` with Algorithm 3 (no enumeration)."""
        automaton, _report = self._compiled_for(document)
        return count_mappings(automaton, document, check_determinism=False)

    def extract(self, document: object) -> list[dict[str, str]]:
        """Return the extracted text per output mapping.

        Each output mapping becomes a dictionary from variable name to the
        captured substring — the most convenient form for downstream use.
        """
        text = as_text(document)
        return [mapping.contents(text) for mapping in self.enumerate(document)]

    def __call__(self, document: object) -> list[Mapping]:
        return self.evaluate(document)

    def __repr__(self) -> str:
        return f"Spanner({self._pipeline.source!r})"
