"""High-level public API: the :class:`Spanner` facade and its pipeline."""

from repro.spanners.pipeline import CompilationPipeline, CompilationReport, StageReport
from repro.spanners.spanner import Spanner

__all__ = ["CompilationPipeline", "CompilationReport", "Spanner", "StageReport"]
