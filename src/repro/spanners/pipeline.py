"""The compilation pipeline from a spanner specification to a deterministic seVA.

The pipeline mirrors Section 4 of the paper: regex formulas compile to VA,
VA convert to extended VA, algebra expressions compile bottom-up with the
operator constructions of Proposition 4.4, and the result is
sequentialized (if needed) and determinized so that the constant-delay
algorithm applies.  Each stage's size and wall-clock time are recorded in a
:class:`CompilationReport`, which the benchmarks use to reproduce the
paper's translation-cost statements (Propositions 4.1–4.6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import CompilationError
from repro.automata.analysis import AutomatonStatistics, is_sequential, statistics, trim
from repro.automata.eva import ExtendedVA
from repro.automata.transforms import (
    determinize,
    relabel_states,
    sequentialize,
    va_to_eva,
)
from repro.automata.va import VariableSetAutomaton
from repro.algebra.compile import compile_expression
from repro.algebra.expressions import SpannerExpression
from repro.regex.ast import RegexNode
from repro.regex.compiler import compile_to_va
from repro.regex.parser import parse_regex

__all__ = ["CompilationPipeline", "CompilationReport", "StageReport"]

SpannerSource = "RegexNode | VariableSetAutomaton | ExtendedVA | SpannerExpression | str"


@dataclass(frozen=True)
class StageReport:
    """Size and timing of one pipeline stage."""

    name: str
    num_states: int
    num_transitions: int
    seconds: float

    @property
    def size(self) -> int:
        """States plus transitions after this stage."""
        return self.num_states + self.num_transitions


@dataclass
class CompilationReport:
    """The full record of one compilation run."""

    stages: list[StageReport] = field(default_factory=list)

    def record(self, name: str, automaton: VariableSetAutomaton | ExtendedVA, seconds: float) -> None:
        """Append a stage entry."""
        self.stages.append(
            StageReport(name, automaton.num_states, automaton.num_transitions, seconds)
        )

    def copy(self) -> "CompilationReport":
        """An independent report continuing from the same stages."""
        return CompilationReport(stages=list(self.stages))

    @property
    def total_seconds(self) -> float:
        """Total compilation time across stages."""
        return sum(stage.seconds for stage in self.stages)

    @property
    def final_stage(self) -> StageReport:
        """The last stage (the deterministic sequential eVA)."""
        if not self.stages:
            raise CompilationError("the pipeline has not produced any stage yet")
        return self.stages[-1]

    def summary(self) -> str:
        """A human-readable multi-line summary (used by the examples)."""
        lines = ["stage                     states  transitions   seconds"]
        for stage in self.stages:
            lines.append(
                f"{stage.name:<24} {stage.num_states:>7} {stage.num_transitions:>12} "
                f"{stage.seconds:>9.4f}"
            )
        return "\n".join(lines)


class CompilationPipeline:
    """Compile any supported spanner specification into a deterministic seVA."""

    def __init__(
        self,
        source: object,
        alphabet: Iterable[str] = (),
        *,
        check_functional_joins: bool = False,
    ) -> None:
        if isinstance(source, str):
            source = parse_regex(source)
        if not isinstance(
            source, (RegexNode, VariableSetAutomaton, ExtendedVA, SpannerExpression)
        ):
            raise CompilationError(f"unsupported spanner source {source!r}")
        self._source = source
        self._base_alphabet = frozenset(alphabet)
        self._check_functional_joins = check_functional_joins

    @property
    def source(self) -> object:
        """The original spanner specification."""
        return self._source

    @property
    def base_alphabet(self) -> frozenset[str]:
        """The user-supplied alphabet, unioned into every compilation."""
        return self._base_alphabet

    def source_needs_alphabet(self) -> bool:
        """Whether compilation output depends on the document alphabet."""
        if isinstance(self._source, RegexNode):
            return self._source.needs_alphabet()
        if isinstance(self._source, SpannerExpression):
            return any(
                isinstance(atom.source, RegexNode) and atom.source.needs_alphabet()
                for atom in self._source.atoms()
            )
        return False

    def compile_sequential(
        self, extra_alphabet: Iterable[str] = ()
    ) -> tuple[ExtendedVA, CompilationReport]:
        """Run the pipeline up to (and including) sequentialization.

        The result is a *sequential but possibly non-deterministic* eVA —
        the input format of the on-the-fly subset runtime and of the
        planner (which inspects it to decide whether determinizing up
        front is affordable).  :meth:`compile` continues from here.
        """
        alphabet = self._base_alphabet | frozenset(extra_alphabet)
        report = CompilationReport()

        extended, assume_sequential = self._to_extended(alphabet, report)

        start = time.perf_counter()
        sequential = assume_sequential or is_sequential(extended)
        if not sequential:
            extended = sequentialize(extended)
            report.record("sequentialize", extended, time.perf_counter() - start)
        else:
            extended = trim(extended)
            report.record("trim", extended, time.perf_counter() - start)
        return extended, report

    def determinize_stage(
        self, extended: ExtendedVA, report: CompilationReport
    ) -> tuple[ExtendedVA, CompilationReport]:
        """Determinize (if needed) and relabel a sequential eVA.

        Appends its stage entry to *report* and returns the deterministic
        seVA.  Callers that cached the :meth:`compile_sequential` output
        (the :class:`~repro.spanners.Spanner` facade does, so one alphabet
        key never runs the front of the pipeline twice) pass a *copy* of
        the sequential report to keep the two records independent.
        """
        start = time.perf_counter()
        if not extended.is_deterministic():
            extended = determinize(extended)
            extended = relabel_states(extended)
            report.record("determinize", extended, time.perf_counter() - start)
        else:
            extended = relabel_states(extended)
            report.record("relabel", extended, time.perf_counter() - start)
        return extended, report

    def compile(
        self, extra_alphabet: Iterable[str] = ()
    ) -> tuple[ExtendedVA, CompilationReport]:
        """Run the full pipeline and return the deterministic seVA plus a report."""
        extended, report = self.compile_sequential(extra_alphabet)
        return self.determinize_stage(extended, report)

    def intern(self, extended: ExtendedVA, report: CompilationReport):
        """Intern a pipeline-produced deterministic seVA into dense tables.

        The single place where a :class:`CompiledEVA` is built and its cost
        recorded as an ``"intern"`` stage — both :meth:`compile_runtime`
        and the :class:`~repro.spanners.Spanner` facade funnel through it.
        """
        from repro.runtime.compiled import compile_eva

        start = time.perf_counter()
        compiled = compile_eva(extended, check_determinism=False)
        report.record("intern", extended, time.perf_counter() - start)
        return compiled

    def optimize_expression(self, extra_alphabet: Iterable[str] = (), **options):
        """Run the cost-based expression optimizer for this source.

        Returns the :class:`~repro.algebra.optimizer.OptimizedPlan` whose
        physical tree still needs :meth:`PhysicalOperator.prepare` for the
        alphabet key (the :class:`~repro.spanners.Spanner` facade prepares
        and caches it per key).  Non-expression sources are wrapped in an
        :class:`~repro.algebra.expressions.Atom`, so ``repro explain`` can
        render the (trivial) plan of a plain regex or automaton spanner.
        *options* are forwarded to :func:`repro.algebra.optimizer.optimize`
        (``unchecked``, thresholds, ``enable_rewrites``).
        """
        from repro.algebra.expressions import Atom
        from repro.algebra.optimizer import optimize

        source = self._source
        if not isinstance(source, SpannerExpression):
            source = Atom(source)
        alphabet = self._base_alphabet | frozenset(extra_alphabet)
        return optimize(source, alphabet, **options)

    def compile_runtime(self, extra_alphabet: Iterable[str] = ()):
        """Run the pipeline and intern the result into a :class:`CompiledEVA`.

        This is the compile-once entry point of the batch engine: the dense
        integer tables are built a single time here and then reused across
        every document (and pickled once per worker in process mode).  The
        interning cost is recorded as its own pipeline stage.
        """
        extended, report = self.compile(extra_alphabet)
        return self.intern(extended, report), report

    def _to_extended(
        self, alphabet: frozenset[str], report: CompilationReport
    ) -> tuple[ExtendedVA, bool]:
        """Produce the initial extended VA and whether it is known sequential."""
        source = self._source
        if isinstance(source, RegexNode):
            start = time.perf_counter()
            automaton = compile_to_va(source, alphabet)
            report.record("regex→VA", automaton, time.perf_counter() - start)
            start = time.perf_counter()
            extended = va_to_eva(automaton)
            report.record("VA→eVA", extended, time.perf_counter() - start)
            return extended, False
        if isinstance(source, VariableSetAutomaton):
            start = time.perf_counter()
            extended = va_to_eva(source)
            report.record("VA→eVA", extended, time.perf_counter() - start)
            return extended, False
        if isinstance(source, ExtendedVA):
            report.record("eVA", source, 0.0)
            return source, False
        if isinstance(source, SpannerExpression):
            start = time.perf_counter()
            extended = compile_expression(
                source, alphabet, check_functional_joins=self._check_functional_joins
            )
            report.record("algebra→eVA", extended, time.perf_counter() - start)
            return extended, False
        raise CompilationError(f"unsupported spanner source {source!r}")

    def statistics(self, extra_alphabet: Iterable[str] = ()) -> AutomatonStatistics:
        """Statistics of the compiled deterministic seVA."""
        compiled, _report = self.compile(extra_alphabet)
        return statistics(compiled, check_properties=True)
