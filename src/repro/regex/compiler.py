"""Compilation of regex formulas into variable-set automata.

The construction is a Thompson-style translation extended with capture
markers: a capture ``x{γ}`` compiles into an ``x⊢`` transition, the
automaton for ``γ``, and a ``⊣x`` transition.  ε-transitions introduced by
the glue of unions and stars are eliminated at the end, so the result is a
plain :class:`~repro.automata.va.VariableSetAutomaton` (the paper's model,
which has no ε-transitions).

Wildcards and negated character classes expand over an explicit alphabet,
which must therefore be supplied (or be derivable from the formula's
literals) — see :func:`compile_to_va`.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import CompilationError
from repro.automata.analysis import trim
from repro.automata.markers import Marker, close, open_
from repro.automata.va import VariableSetAutomaton
from repro.regex.ast import (
    AnyChar,
    Capture,
    CharClass,
    Concat,
    Epsilon,
    Literal,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
)
from repro.regex.parser import parse_regex

__all__ = ["compile_to_va", "required_alphabet"]

_EPSILON = None


def required_alphabet(pattern: str | RegexNode, document_alphabet: Iterable[str] = ()) -> frozenset[str]:
    """The alphabet a compiled automaton needs to evaluate *pattern*.

    This is the union of the formula's literal characters and the
    characters of the documents it will be evaluated on (needed so that
    wildcards and negated classes can match them).
    """
    node = parse_regex(pattern)
    return frozenset(node.literals()) | frozenset(document_alphabet)


class _Compiler:
    """Stateful Thompson construction over integer states."""

    def __init__(self, alphabet: frozenset[str]) -> None:
        self._alphabet = alphabet
        self._next_state = 0
        # (source, label, target); label is a char, a Marker, or None for ε.
        self._transitions: list[tuple[int, object, int]] = []

    def fresh_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def add(self, source: int, label: object, target: int) -> None:
        self._transitions.append((source, label, target))

    # ------------------------------------------------------------------ #

    def compile(self, node: RegexNode) -> tuple[int, int]:
        """Compile *node* into a fragment and return its (start, end) states."""
        if isinstance(node, Epsilon):
            start, end = self.fresh_state(), self.fresh_state()
            self.add(start, _EPSILON, end)
            return start, end
        if isinstance(node, Literal):
            return self._character_fragment([node.symbol])
        if isinstance(node, AnyChar):
            return self._character_fragment(sorted(self._alphabet))
        if isinstance(node, CharClass):
            characters = node.expand(self._alphabet) if node.negated else node.characters
            return self._character_fragment(sorted(characters))
        if isinstance(node, Capture):
            start, end = self.fresh_state(), self.fresh_state()
            inner_start, inner_end = self.compile(node.inner)
            self.add(start, open_(node.variable), inner_start)
            self.add(inner_end, close(node.variable), end)
            return start, end
        if isinstance(node, Concat):
            start, end = self.compile(node.parts[0])
            for part in node.parts[1:]:
                next_start, next_end = self.compile(part)
                self.add(end, _EPSILON, next_start)
                end = next_end
            return start, end
        if isinstance(node, Union):
            start, end = self.fresh_state(), self.fresh_state()
            for part in node.parts:
                inner_start, inner_end = self.compile(part)
                self.add(start, _EPSILON, inner_start)
                self.add(inner_end, _EPSILON, end)
            return start, end
        if isinstance(node, Star):
            start, end = self.fresh_state(), self.fresh_state()
            inner_start, inner_end = self.compile(node.inner)
            self.add(start, _EPSILON, end)
            self.add(start, _EPSILON, inner_start)
            self.add(inner_end, _EPSILON, inner_start)
            self.add(inner_end, _EPSILON, end)
            return start, end
        if isinstance(node, Plus):
            start, end = self.compile(node.inner)
            self.add(end, _EPSILON, start)
            return start, end
        if isinstance(node, Optional):
            start, end = self.fresh_state(), self.fresh_state()
            inner_start, inner_end = self.compile(node.inner)
            self.add(start, _EPSILON, end)
            self.add(start, _EPSILON, inner_start)
            self.add(inner_end, _EPSILON, end)
            return start, end
        raise TypeError(f"unknown regex node {node!r}")

    def _character_fragment(self, characters: Iterable[str]) -> tuple[int, int]:
        characters = list(characters)
        if not characters:
            # An unsatisfiable atom (e.g. a negated class covering the whole
            # alphabet); represented by a fragment with no transition.
            return self.fresh_state(), self.fresh_state()
        start, end = self.fresh_state(), self.fresh_state()
        for character in characters:
            self.add(start, character, end)
        return start, end

    # ------------------------------------------------------------------ #

    def to_va(self, start: int, end: int) -> VariableSetAutomaton:
        """Eliminate ε-transitions and build the final VA."""
        epsilon_successors: dict[int, set[int]] = {}
        concrete: dict[int, list[tuple[object, int]]] = {}
        for source, label, target in self._transitions:
            if label is _EPSILON:
                epsilon_successors.setdefault(source, set()).add(target)
            else:
                concrete.setdefault(source, []).append((label, target))

        def closure(state: int) -> set[int]:
            reached = {state}
            frontier = [state]
            while frontier:
                current = frontier.pop()
                for successor in epsilon_successors.get(current, ()):
                    if successor not in reached:
                        reached.add(successor)
                        frontier.append(successor)
            return reached

        closures = {state: closure(state) for state in range(self._next_state)}

        automaton = VariableSetAutomaton()
        automaton.set_initial(start)
        for state in range(self._next_state):
            if end in closures[state]:
                automaton.add_final(state)
        for state in range(self._next_state):
            for member in closures[state]:
                for label, target in concrete.get(member, ()):
                    if isinstance(label, Marker):
                        automaton.add_variable_transition(state, label, target)
                    else:
                        automaton.add_letter_transition(state, label, target)
        return trim(automaton)


def compile_to_va(
    pattern: str | RegexNode, alphabet: Iterable[str] | None = None
) -> VariableSetAutomaton:
    """Compile a regex formula into an equivalent variable-set automaton.

    Parameters
    ----------
    pattern:
        Either the concrete syntax (see :mod:`repro.regex.parser`) or an
        already-built AST node.
    alphabet:
        The alphabet over which wildcards (``.``) and negated character
        classes expand.  May be omitted when the formula does not contain
        such constructs, in which case the formula's own literals are used.

    The translation is linear in the size of the formula, as stated in the
    paper (Section 4, "regex formulas can be translated into VA in linear
    time") — up to the alphabet factor introduced by wildcard expansion.
    """
    node = parse_regex(pattern)
    if alphabet is None:
        if node.needs_alphabet():
            raise CompilationError(
                "the formula contains a wildcard or negated class; "
                "pass the alphabet it should range over"
            )
        alphabet_set = frozenset(node.literals())
    else:
        alphabet_set = frozenset(alphabet) | frozenset(node.literals())
    for character in alphabet_set:
        if not isinstance(character, str) or len(character) != 1:
            raise CompilationError(f"alphabet members must be single characters, got {character!r}")
    compiler = _Compiler(alphabet_set)
    start, end = compiler.compile(node)
    return compiler.to_va(start, end)
