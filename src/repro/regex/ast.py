"""Abstract syntax trees for regex formulas (RGX).

The grammar follows the paper (Section 2):

    γ := ε | a | x{γ} | γ · γ | γ ∨ γ | γ*

extended with the standard convenience forms ``γ+``, ``γ?``, the wildcard
``.`` and character classes ``[a-z]`` / ``[^a-z]``, which are syntactic
sugar over finite unions once an alphabet is fixed.

Nodes are immutable and hashable.  ``str(node)`` renders the concrete
syntax accepted by :func:`repro.regex.parser.parse_regex`.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import CompilationError

__all__ = [
    "RegexNode",
    "Epsilon",
    "Literal",
    "AnyChar",
    "CharClass",
    "Capture",
    "Concat",
    "Union",
    "Star",
    "Plus",
    "Optional",
    "concat",
    "union",
    "literal_string",
]

_SPECIAL_CHARACTERS = set("\\.|*+?()[]{}")


def _escape(character: str) -> str:
    """Escape a character for the concrete regex syntax."""
    if character in _SPECIAL_CHARACTERS:
        return "\\" + character
    if character == "\n":
        return "\\n"
    if character == "\t":
        return "\\t"
    if character == "\r":
        return "\\r"
    return character


class RegexNode:
    """Base class of all regex formula AST nodes."""

    __slots__ = ()

    def variables(self) -> frozenset[str]:
        """``var(γ)``: the capture variables occurring in the formula."""
        return frozenset(self._collect_variables())

    def _collect_variables(self) -> Iterator[str]:
        for child in self.children():
            yield from child._collect_variables()

    def children(self) -> tuple["RegexNode", ...]:
        """The direct sub-formulas."""
        return ()

    def literals(self) -> frozenset[str]:
        """All concrete characters mentioned by the formula."""
        found: set[str] = set()
        for node in self.walk():
            if isinstance(node, Literal):
                found.add(node.symbol)
            elif isinstance(node, CharClass):
                found.update(node.characters)
        return frozenset(found)

    def walk(self) -> Iterator["RegexNode"]:
        """Pre-order traversal of the AST."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """``|γ|``: the number of AST nodes."""
        return sum(1 for _ in self.walk())

    def needs_alphabet(self) -> bool:
        """Whether compiling the formula requires an explicit alphabet.

        True when the formula contains a wildcard or a negated character
        class, whose expansion depends on the alphabet.
        """
        return any(
            isinstance(node, AnyChar) or (isinstance(node, CharClass) and node.negated)
            for node in self.walk()
        )

    # Subclasses override __str__, __eq__, __hash__, __repr__.

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


class Epsilon(RegexNode):
    """The empty-word formula ``ε``."""

    __slots__ = ()

    def __str__(self) -> str:
        return "()"

    def __repr__(self) -> str:
        return "Epsilon()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Epsilon)

    def __hash__(self) -> int:
        return hash("Epsilon")


class Literal(RegexNode):
    """A single concrete character."""

    __slots__ = ("symbol",)

    def __init__(self, symbol: str) -> None:
        if not isinstance(symbol, str) or len(symbol) != 1:
            raise CompilationError(f"Literal expects a single character, got {symbol!r}")
        self.symbol = symbol

    def __str__(self) -> str:
        return _escape(self.symbol)

    def __repr__(self) -> str:
        return f"Literal({self.symbol!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.symbol == self.symbol

    def __hash__(self) -> int:
        return hash(("Literal", self.symbol))


class AnyChar(RegexNode):
    """The wildcard ``.`` — any single character of the alphabet."""

    __slots__ = ()

    def __str__(self) -> str:
        return "."

    def __repr__(self) -> str:
        return "AnyChar()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AnyChar)

    def __hash__(self) -> int:
        return hash("AnyChar")


class CharClass(RegexNode):
    """A character class ``[abc]`` or its complement ``[^abc]``."""

    __slots__ = ("characters", "negated")

    def __init__(self, characters, negated: bool = False) -> None:
        characters = frozenset(characters)
        for character in characters:
            if not isinstance(character, str) or len(character) != 1:
                raise CompilationError(f"character classes hold single characters, got {character!r}")
        if not characters and not negated:
            raise CompilationError("a positive character class cannot be empty")
        self.characters = characters
        self.negated = bool(negated)

    def expand(self, alphabet) -> frozenset[str]:
        """The concrete characters matched, relative to *alphabet*."""
        alphabet = frozenset(alphabet)
        if self.negated:
            return alphabet - self.characters
        return self.characters

    def __str__(self) -> str:
        prefix = "^" if self.negated else ""
        body = "".join(
            c if c not in "]^-\\" else "\\" + c for c in sorted(self.characters)
        )
        return f"[{prefix}{body}]"

    def __repr__(self) -> str:
        return f"CharClass({sorted(self.characters)!r}, negated={self.negated})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CharClass)
            and other.characters == self.characters
            and other.negated == self.negated
        )

    def __hash__(self) -> int:
        return hash(("CharClass", self.characters, self.negated))


class Capture(RegexNode):
    """A variable capture ``x{γ}``."""

    __slots__ = ("variable", "inner")

    def __init__(self, variable: str, inner: RegexNode) -> None:
        if not isinstance(variable, str) or not variable:
            raise CompilationError(f"capture variables must be non-empty strings, got {variable!r}")
        self.variable = variable
        self.inner = inner

    def children(self) -> tuple[RegexNode, ...]:
        return (self.inner,)

    def _collect_variables(self) -> Iterator[str]:
        yield self.variable
        yield from self.inner._collect_variables()

    def __str__(self) -> str:
        return f"{self.variable}{{{self.inner}}}"

    def __repr__(self) -> str:
        return f"Capture({self.variable!r}, {self.inner!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Capture)
            and other.variable == self.variable
            and other.inner == self.inner
        )

    def __hash__(self) -> int:
        return hash(("Capture", self.variable, self.inner))


class Concat(RegexNode):
    """Concatenation ``γ1 · γ2 · … · γk``."""

    __slots__ = ("parts",)

    def __init__(self, parts) -> None:
        parts = tuple(parts)
        if len(parts) < 2:
            raise CompilationError("Concat requires at least two sub-formulas")
        self.parts = parts

    def children(self) -> tuple[RegexNode, ...]:
        return self.parts

    def __str__(self) -> str:
        rendered = []
        for part in self.parts:
            text = str(part)
            if isinstance(part, Union):
                text = f"({text})"
            rendered.append(text)
        return "".join(rendered)

    def __repr__(self) -> str:
        return f"Concat({list(self.parts)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Concat) and other.parts == self.parts

    def __hash__(self) -> int:
        return hash(("Concat", self.parts))


class Union(RegexNode):
    """Disjunction ``γ1 ∨ γ2 ∨ … ∨ γk``."""

    __slots__ = ("parts",)

    def __init__(self, parts) -> None:
        parts = tuple(parts)
        if len(parts) < 2:
            raise CompilationError("Union requires at least two sub-formulas")
        self.parts = parts

    def children(self) -> tuple[RegexNode, ...]:
        return self.parts

    def __str__(self) -> str:
        return "|".join(str(part) for part in self.parts)

    def __repr__(self) -> str:
        return f"Union({list(self.parts)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Union) and other.parts == self.parts

    def __hash__(self) -> int:
        return hash(("Union", self.parts))


class _Postfix(RegexNode):
    """Shared implementation of the postfix operators ``*``, ``+`` and ``?``."""

    __slots__ = ("inner",)
    _symbol = "?"

    def __init__(self, inner: RegexNode) -> None:
        self.inner = inner

    def children(self) -> tuple[RegexNode, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        text = str(self.inner)
        if isinstance(self.inner, (Concat, Union)):
            text = f"({text})"
        return text + self._symbol

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.inner == self.inner

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.inner))


class Star(_Postfix):
    """Kleene star ``γ*``."""

    __slots__ = ()
    _symbol = "*"


class Plus(_Postfix):
    """One-or-more repetition ``γ+`` (sugar for ``γ · γ*``)."""

    __slots__ = ()
    _symbol = "+"


class Optional(_Postfix):
    """Zero-or-one repetition ``γ?`` (sugar for ``γ ∨ ε``)."""

    __slots__ = ()
    _symbol = "?"


# ---------------------------------------------------------------------- #
# Convenience constructors
# ---------------------------------------------------------------------- #


def concat(*parts: RegexNode) -> RegexNode:
    """Concatenate formulas, flattening nested concatenations."""
    flattened: list[RegexNode] = []
    for part in parts:
        if isinstance(part, Concat):
            flattened.extend(part.parts)
        elif isinstance(part, Epsilon):
            continue
        else:
            flattened.append(part)
    if not flattened:
        return Epsilon()
    if len(flattened) == 1:
        return flattened[0]
    return Concat(flattened)


def union(*parts: RegexNode) -> RegexNode:
    """Build a disjunction, flattening nested unions."""
    flattened: list[RegexNode] = []
    for part in parts:
        if isinstance(part, Union):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    if not flattened:
        raise CompilationError("union of zero formulas is undefined")
    if len(flattened) == 1:
        return flattened[0]
    return Union(flattened)


def literal_string(text: str) -> RegexNode:
    """A formula matching exactly *text*."""
    if not text:
        return Epsilon()
    return concat(*(Literal(character) for character in text))
