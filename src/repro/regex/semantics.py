"""Reference semantics of regex formulas (Table 1 of the paper).

This is a direct, set-based implementation of the two-layer semantics
``[γ]_d`` / ``⟦γ⟧_d``.  It materializes every intermediate relation and is
exponential in the worst case; its purpose is to serve as ground truth for
the automata-based evaluation algorithms, which the property-based tests
compare against it on small inputs.
"""

from __future__ import annotations

from repro.core.documents import as_text
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.regex.ast import (
    AnyChar,
    Capture,
    CharClass,
    Concat,
    Epsilon,
    Literal,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
)
from repro.regex.parser import parse_regex

__all__ = ["evaluate_regex", "match_relation"]

# A "match relation" is the paper's [γ]_d: a set of (span, mapping) pairs.
MatchRelation = frozenset[tuple[Span, Mapping]]


def evaluate_regex(pattern: str | RegexNode, document: object) -> set[Mapping]:
    """``⟦γ⟧_d``: the mappings produced by matching *pattern* against the whole document."""
    node = parse_regex(pattern)
    text = as_text(document)
    whole = Span(0, len(text))
    return {mapping for span, mapping in match_relation(node, text) if span == whole}


def match_relation(pattern: str | RegexNode, document: object) -> MatchRelation:
    """``[γ]_d``: all (span, mapping) pairs produced by sub-matches of *pattern*."""
    node = parse_regex(pattern)
    text = as_text(document)
    return _relation(node, text, {})


def _relation(node: RegexNode, text: str, cache: dict[RegexNode, MatchRelation]) -> MatchRelation:
    if node in cache:
        return cache[node]
    result = _compute_relation(node, text, cache)
    cache[node] = result
    return result


def _compute_relation(
    node: RegexNode, text: str, cache: dict[RegexNode, MatchRelation]
) -> MatchRelation:
    n = len(text)
    if isinstance(node, Epsilon):
        return frozenset((Span(i, i), Mapping.EMPTY) for i in range(n + 1))
    if isinstance(node, Literal):
        return frozenset(
            (Span(i, i + 1), Mapping.EMPTY) for i in range(n) if text[i] == node.symbol
        )
    if isinstance(node, AnyChar):
        return frozenset((Span(i, i + 1), Mapping.EMPTY) for i in range(n))
    if isinstance(node, CharClass):
        return frozenset(
            (Span(i, i + 1), Mapping.EMPTY)
            for i in range(n)
            if (text[i] in node.characters) != node.negated
        )
    if isinstance(node, Capture):
        inner = _relation(node.inner, text, cache)
        return frozenset(
            (span, Mapping.single(node.variable, span).union(mapping))
            for span, mapping in inner
            if node.variable not in mapping
        )
    if isinstance(node, Concat):
        current = _relation(node.parts[0], text, cache)
        for part in node.parts[1:]:
            current = _combine(current, _relation(part, text, cache))
        return current
    if isinstance(node, Union):
        result: set[tuple[Span, Mapping]] = set()
        for part in node.parts:
            result |= _relation(part, text, cache)
        return frozenset(result)
    if isinstance(node, Star):
        return _star(_relation(node.inner, text, cache), text)
    if isinstance(node, Plus):
        inner = _relation(node.inner, text, cache)
        return _combine(inner, _star(inner, text))
    if isinstance(node, Optional):
        epsilon = frozenset((Span(i, i), Mapping.EMPTY) for i in range(n + 1))
        return _relation(node.inner, text, cache) | epsilon
    raise TypeError(f"unknown regex node {node!r}")


def _combine(left: MatchRelation, right: MatchRelation) -> MatchRelation:
    """The concatenation rule of Table 1.

    Pairs combine when the spans are adjacent and the mapping domains are
    disjoint (the paper requires disjointness, not mere compatibility).
    """
    by_begin: dict[int, list[tuple[Span, Mapping]]] = {}
    for span, mapping in right:
        by_begin.setdefault(span.begin, []).append((span, mapping))
    result: set[tuple[Span, Mapping]] = set()
    for left_span, left_mapping in left:
        for right_span, right_mapping in by_begin.get(left_span.end, ()):
            if left_mapping.domain() & right_mapping.domain():
                continue
            result.add(
                (left_span.concatenate(right_span), left_mapping.union(right_mapping))
            )
    return frozenset(result)


def _star(inner: MatchRelation, text: str) -> MatchRelation:
    """The Kleene-star rule: ``[γ*] = [ε] ∪ [γ] ∪ [γ²] ∪ …`` computed as a fixpoint."""
    n = len(text)
    result: set[tuple[Span, Mapping]] = {(Span(i, i), Mapping.EMPTY) for i in range(n + 1)}
    frontier = frozenset(result)
    while True:
        extended = _combine(inner, frontier)
        new = extended - result
        if not new:
            return frozenset(result)
        result |= new
        frontier = new
