"""Regex formulas (RGX): syntax, parsing, semantics and compilation."""

from repro.regex.ast import (
    AnyChar,
    Capture,
    CharClass,
    Concat,
    Epsilon,
    Literal,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
)
from repro.regex.compiler import compile_to_va
from repro.regex.parser import parse_regex
from repro.regex.semantics import evaluate_regex

__all__ = [
    "AnyChar",
    "Capture",
    "CharClass",
    "Concat",
    "Epsilon",
    "Literal",
    "Optional",
    "Plus",
    "RegexNode",
    "Star",
    "Union",
    "compile_to_va",
    "evaluate_regex",
    "parse_regex",
]
