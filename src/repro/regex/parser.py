"""Parser for the concrete regex-formula syntax.

The accepted syntax extends classic regular expressions with the paper's
variable capture construct ``x{γ}``:

==============  ====================================================
``abc``         literal characters (including spaces)
``.``           any single character of the alphabet
``[a-z0-9_]``   character class (ranges allowed), ``[^...]`` negated
``\\d \\w \\s``    digit / word / whitespace classes
``(γ)``         grouping, ``()`` is ε
``γ1|γ2``       disjunction
``γ* γ+ γ?``    repetition / optional
``name{γ}``     capture the span matched by ``γ`` into variable ``name``
``\\x``          escape a special character
==============  ====================================================

A capture variable is an identifier (``[A-Za-z_][A-Za-z0-9_]*``) that is
*immediately* followed by ``{``; identifiers not followed by ``{`` are read
as plain literal characters, so ``abc*`` means ``ab`` followed by ``c*``.
Literal braces must be escaped (``\\{``, ``\\}``).
"""

from __future__ import annotations

import string

from repro.core.errors import ParseError
from repro.regex.ast import (
    AnyChar,
    Capture,
    CharClass,
    Epsilon,
    Literal,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
    concat,
)

__all__ = ["parse_regex"]

_IDENTIFIER_START = set(string.ascii_letters + "_")
_IDENTIFIER_CHARS = _IDENTIFIER_START | set(string.digits)

_ESCAPE_SHORTCUTS = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
}

_CLASS_SHORTCUTS = {
    "d": CharClass(string.digits),
    "w": CharClass(string.ascii_letters + string.digits + "_"),
    "s": CharClass(" \t\n\r\x0b\f"),
}


class _Parser:
    """Recursive-descent parser over the regex source string."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._position = 0

    # -------------------------- low-level helpers -------------------- #

    def _peek(self, offset: int = 0) -> str | None:
        index = self._position + offset
        if index < len(self._source):
            return self._source[index]
        return None

    def _advance(self) -> str:
        character = self._source[self._position]
        self._position += 1
        return character

    def _expect(self, character: str) -> None:
        if self._peek() != character:
            raise ParseError(
                f"expected {character!r} at position {self._position} in {self._source!r}"
            )
        self._advance()

    def _error(self, message: str) -> ParseError:
        return ParseError(f"{message} at position {self._position} in {self._source!r}")

    # -------------------------- grammar rules ------------------------ #

    def parse(self) -> RegexNode:
        node = self._parse_union()
        if self._position != len(self._source):
            raise self._error(f"unexpected character {self._peek()!r}")
        return node

    def _parse_union(self) -> RegexNode:
        branches = [self._parse_concat()]
        while self._peek() == "|":
            self._advance()
            branches.append(self._parse_concat())
        if len(branches) == 1:
            return branches[0]
        return Union(branches)

    def _parse_concat(self) -> RegexNode:
        parts: list[RegexNode] = []
        while True:
            character = self._peek()
            if character is None or character in "|)}":
                break
            parts.append(self._parse_repetition())
        if not parts:
            return Epsilon()
        return concat(*parts)

    def _parse_repetition(self) -> RegexNode:
        node = self._parse_atom()
        while True:
            character = self._peek()
            if character == "*":
                self._advance()
                node = Star(node)
            elif character == "+":
                self._advance()
                node = Plus(node)
            elif character == "?":
                self._advance()
                node = Optional(node)
            else:
                return node

    def _parse_atom(self) -> RegexNode:
        character = self._peek()
        if character is None:
            raise self._error("unexpected end of pattern")
        if character == "(":
            self._advance()
            inner = self._parse_union()
            self._expect(")")
            return inner
        if character == "[":
            return self._parse_char_class()
        if character == ".":
            self._advance()
            return AnyChar()
        if character == "\\":
            return self._parse_escape()
        if character in "*+?":
            raise self._error(f"repetition operator {character!r} with nothing to repeat")
        if character in ")}|":
            raise self._error(f"unexpected character {character!r}")
        if character == "{":
            raise self._error("unexpected '{' (captures are written name{...}; escape literal braces)")
        capture = self._try_parse_capture()
        if capture is not None:
            return capture
        self._advance()
        return Literal(character)

    def _try_parse_capture(self) -> RegexNode | None:
        """Parse ``name{γ}`` if the cursor is at an identifier followed by '{'."""
        start = self._position
        if self._peek() not in _IDENTIFIER_START:
            return None
        length = 0
        while True:
            character = self._peek(length)
            if character is not None and character in _IDENTIFIER_CHARS:
                length += 1
            else:
                break
        if self._peek(length) != "{":
            return None
        variable = self._source[start:start + length]
        self._position = start + length
        self._expect("{")
        inner = self._parse_union()
        self._expect("}")
        return Capture(variable, inner)

    def _parse_escape(self) -> RegexNode:
        self._expect("\\")
        character = self._peek()
        if character is None:
            raise self._error("dangling escape character")
        self._advance()
        if character in _CLASS_SHORTCUTS:
            return _CLASS_SHORTCUTS[character]
        if character in _ESCAPE_SHORTCUTS:
            return Literal(_ESCAPE_SHORTCUTS[character])
        return Literal(character)

    def _parse_char_class(self) -> RegexNode:
        self._expect("[")
        negated = False
        if self._peek() == "^":
            negated = True
            self._advance()
        characters: set[str] = set()
        if self._peek() == "]":
            # Allow a literal ']' as the first member, like POSIX classes do.
            characters.add("]")
            self._advance()
        while True:
            character = self._peek()
            if character is None:
                raise self._error("unterminated character class")
            if character == "]":
                self._advance()
                break
            if character == "\\":
                self._advance()
                escaped = self._peek()
                if escaped is None:
                    raise self._error("dangling escape in character class")
                self._advance()
                if escaped in _CLASS_SHORTCUTS:
                    characters.update(_CLASS_SHORTCUTS[escaped].characters)
                    continue
                character = _ESCAPE_SHORTCUTS.get(escaped, escaped)
            else:
                self._advance()
            if self._peek() == "-" and self._peek(1) not in (None, "]"):
                self._advance()
                upper = self._advance()
                if upper == "\\":
                    upper = self._advance()
                if ord(upper) < ord(character):
                    raise self._error(f"invalid range {character}-{upper}")
                characters.update(chr(code) for code in range(ord(character), ord(upper) + 1))
            else:
                characters.add(character)
        if not characters and not negated:
            raise self._error("empty character class")
        return CharClass(characters, negated=negated)


def parse_regex(source: str | RegexNode) -> RegexNode:
    """Parse a regex formula from its concrete syntax.

    Passing an already-built :class:`~repro.regex.ast.RegexNode` returns it
    unchanged, which lets higher-level APIs accept both forms.
    """
    if isinstance(source, RegexNode):
        return source
    if not isinstance(source, str):
        raise ParseError(f"expected a pattern string, got {source!r}")
    return _Parser(source).parse()
