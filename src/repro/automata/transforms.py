"""Translations between spanner automaton models (Section 4 of the paper).

The constant-delay algorithm of Section 3 requires a *deterministic,
sequential, extended* VA.  This module provides the translations that bring
an arbitrary VA or eVA into that form:

* :func:`va_to_eva` / :func:`eva_to_va` — Theorem 3.1,
* :func:`determinize` — Proposition 3.2 (subset construction),
* :func:`sequentialize` — the variable-ledger product underlying
  Proposition 4.1 / 4.3,
* :func:`to_deterministic_sequential_eva` — the full pipeline used by the
  public :class:`~repro.spanners.Spanner` facade.

All constructions are semantics preserving; the property-based tests check
this on randomly generated automata and documents.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.errors import CompilationError
from repro.automata.analysis import (
    CLOSED,
    OPEN,
    UNSEEN,
    VIOLATED,
    VariableLedger,
    is_sequential,
    trim,
)
from repro.automata.eva import ExtendedVA
from repro.automata.markers import Marker, MarkerSet
from repro.automata.va import VariableSetAutomaton

__all__ = [
    "va_to_eva",
    "eva_to_va",
    "determinize",
    "sequentialize",
    "relabel_states",
    "to_deterministic_sequential_eva",
]

State = Hashable


# ---------------------------------------------------------------------- #
# Theorem 3.1: VA  ->  eVA
# ---------------------------------------------------------------------- #


def va_to_eva(automaton: VariableSetAutomaton) -> ExtendedVA:
    """Convert a classic VA into an equivalent extended VA (Theorem 3.1).

    Every *variable path* — a sequence of variable transitions that uses
    pairwise distinct markers — between two states ``p`` and ``q`` becomes a
    single extended transition ``(p, Markers(π), q)``.  Letter transitions
    are copied verbatim.  The number of extended transitions can be
    exponential in the number of variables (Proposition 4.2 shows this is
    unavoidable for sequential VA).

    One refinement over the textbook construction is required for
    correctness: a variable path that *closes* a variable before *opening*
    it (``⊣x … x⊢``) can only occur on invalid VA runs, yet its marker set
    ``{x⊢, ⊣x}`` would be read by the eVA as a perfectly valid empty-span
    capture.  Such paths are therefore pruned instead of condensed.
    """
    extended = ExtendedVA()
    for state in automaton.states:
        extended.add_state(state)
    extended.set_initial(automaton.initial)
    for state in automaton.finals:
        extended.add_final(state)
    for source, symbol, target in (
        (s, label, t) for s, label, t in automaton.transitions() if isinstance(label, str)
    ):
        extended.add_letter_transition(source, symbol, target)

    for origin in automaton.states:
        # Depth-first search over variable paths with distinct markers in
        # which no variable is closed before it is opened *within the path*.
        stack: list[tuple[State, frozenset[Marker]]] = [(origin, frozenset())]
        seen: set[tuple[State, frozenset[Marker]]] = {(origin, frozenset())}
        while stack:
            state, used = stack.pop()
            for marker, target in automaton.variable_transitions_from(state):
                if marker in used:
                    continue
                if marker.is_open and marker.dual() in used:
                    # The path already closed this variable; re-opening it
                    # here can never belong to a valid run.
                    continue
                new_used = used | {marker}
                extended.add_variable_transition(origin, MarkerSet(new_used), target)
                key = (target, new_used)
                if key not in seen:
                    seen.add(key)
                    stack.append(key)
    return extended


def eva_to_va(automaton: ExtendedVA) -> VariableSetAutomaton:
    """Convert an extended VA into an equivalent classic VA (Theorem 3.1).

    Every extended transition ``(p, S, q)`` is expanded into a chain of
    single-marker transitions following the canonical marker order (open
    markers before close markers), through ``|S| - 1`` fresh intermediate
    states.

    To remain faithful to eVA run semantics — which *alternate* variable
    and letter transitions — each original state is split into a
    "may capture" and a "must read" phase: marker chains end in the
    "must read" copy, so two extended transitions can never be chained at
    the same document position (which plain chains would allow, silently
    accepting runs the eVA does not have).
    """
    classic = VariableSetAutomaton()

    def capture_phase(state: State) -> State:
        return ("capture", state)

    def read_phase(state: State) -> State:
        return ("read", state)

    for state in automaton.states:
        classic.add_state(capture_phase(state))
        classic.add_state(read_phase(state))
    classic.set_initial(capture_phase(automaton.initial))
    for state in automaton.finals:
        classic.add_final(capture_phase(state))
        classic.add_final(read_phase(state))

    for source, label, target in automaton.transitions():
        if isinstance(label, str):
            # A letter may be read whether or not markers were executed
            # just before it, and it re-enables capturing at the target.
            classic.add_letter_transition(capture_phase(source), label, capture_phase(target))
            classic.add_letter_transition(read_phase(source), label, capture_phase(target))
            continue
        markers = label.canonical_order()
        current = capture_phase(source)
        for index, marker in enumerate(markers):
            if index == len(markers) - 1:
                successor: State = read_phase(target)
            else:
                successor = ("chain", source, label, target, index)
                classic.add_state(successor)
            classic.add_variable_transition(current, marker, successor)
            current = successor
    return classic


# ---------------------------------------------------------------------- #
# Proposition 3.2: determinization
# ---------------------------------------------------------------------- #


def determinize(automaton: ExtendedVA) -> ExtendedVA:
    """Determinize an extended VA by the subset construction.

    Marker-set labels are treated as atomic alphabet symbols, exactly as in
    Proposition 3.2.  The resulting automaton's states are frozensets of the
    original states; apply :func:`relabel_states` to obtain small integer
    states.  Only subsets reachable from the initial subset are created.
    """
    if not automaton.has_initial:
        raise CompilationError("cannot determinize an automaton without an initial state")
    result = ExtendedVA()
    start = frozenset({automaton.initial})
    result.set_initial(start)
    if start & automaton.finals:
        result.add_final(start)
    frontier = [start]
    seen = {start}
    while frontier:
        subset = frontier.pop()
        # Letter transitions.
        letter_targets: dict[str, set[State]] = {}
        marker_targets: dict[MarkerSet, set[State]] = {}
        for state in subset:
            for symbol, target in automaton.letter_transitions_from(state):
                letter_targets.setdefault(symbol, set()).add(target)
            for marker_set, target in automaton.variable_transitions_from(state):
                marker_targets.setdefault(marker_set, set()).add(target)
        successors: list[tuple[object, frozenset[State]]] = [
            (symbol, frozenset(targets)) for symbol, targets in letter_targets.items()
        ] + [(markers, frozenset(targets)) for markers, targets in marker_targets.items()]
        for label, successor in successors:
            if isinstance(label, MarkerSet):
                result.add_variable_transition(subset, label, successor)
            else:
                result.add_letter_transition(subset, label, successor)
            if successor not in seen:
                seen.add(successor)
                if successor & automaton.finals:
                    result.add_final(successor)
                frontier.append(successor)
    return result


# ---------------------------------------------------------------------- #
# Proposition 4.1 / 4.3: sequentialization via the variable ledger
# ---------------------------------------------------------------------- #


def sequentialize(automaton: VariableSetAutomaton | ExtendedVA) -> ExtendedVA:
    """Return an equivalent *sequential* extended VA.

    The construction is the product of the automaton with the variable
    ledger that tracks which variables are open/closed along a run; marker
    uses that could never belong to a valid run are dropped, and a product
    state is accepting only when the underlying state is accepting and
    every opened variable has been closed.  This mirrors the state space of
    Proposition 4.1 (``2^n · 3^ℓ`` after determinization).

    Classic VA are first converted with :func:`va_to_eva`.
    """
    extended = va_to_eva(automaton) if isinstance(automaton, VariableSetAutomaton) else automaton
    if not extended.has_initial:
        raise CompilationError("cannot sequentialize an automaton without an initial state")

    variables = tuple(sorted(extended.variables()))
    fresh = VariableLedger.fresh(variables)
    result = ExtendedVA()
    start = (extended.initial, fresh.status)
    result.set_initial(start)
    if extended.initial in extended.finals and fresh.is_valid_final():
        result.add_final(start)

    frontier = [(extended.initial, fresh)]
    seen = {start}
    while frontier:
        state, ledger = frontier.pop()
        source = (state, ledger.status)
        for symbol, target in extended.letter_transitions_from(state):
            successor = (target, ledger.status)
            result.add_letter_transition(source, symbol, successor)
            if successor not in seen:
                seen.add(successor)
                if target in extended.finals and ledger.is_valid_final():
                    result.add_final(successor)
                frontier.append((target, ledger))
        for marker_set, target in extended.variable_transitions_from(state):
            new_ledger = ledger.apply_markers(marker_set)
            if not new_ledger.can_become_valid():
                continue
            successor = (target, new_ledger.status)
            result.add_variable_transition(source, marker_set, successor)
            if successor not in seen:
                seen.add(successor)
                if target in extended.finals and new_ledger.is_valid_final():
                    result.add_final(successor)
                frontier.append((target, new_ledger))
    return trim(result)


# ---------------------------------------------------------------------- #
# Utilities and the full pipeline
# ---------------------------------------------------------------------- #


def relabel_states(automaton: ExtendedVA) -> ExtendedVA:
    """Rename states to consecutive integers (initial state becomes 0).

    Subset construction and product constructions produce states that are
    frozensets or nested tuples; renaming keeps hashing cheap inside the
    inner loops of Algorithm 1.
    """
    naming: dict[State, int] = {}
    if automaton.has_initial:
        naming[automaton.initial] = 0
    for state in sorted(automaton.states, key=repr):
        naming.setdefault(state, len(naming))
    return automaton.rename_states(naming)


def to_deterministic_sequential_eva(
    automaton: VariableSetAutomaton | ExtendedVA,
    *,
    assume_sequential: bool | None = None,
) -> ExtendedVA:
    """Compile any VA or eVA into a deterministic sequential extended VA.

    This is the full pipeline of Section 4:

    1. classic VA are converted to extended VA (Theorem 3.1);
    2. non-sequential automata are sequentialized through the variable
       ledger product (Proposition 4.1);
    3. the result is trimmed and determinized (Proposition 3.2);
    4. states are renamed to small integers.

    *assume_sequential* can be used to skip the (worst-case exponential)
    sequentiality check when the caller already knows the answer — e.g. for
    functional VA (Proposition 4.3) or for automata produced by the regex
    compiler, which are sequential by construction.
    """
    extended = va_to_eva(automaton) if isinstance(automaton, VariableSetAutomaton) else automaton
    sequential = assume_sequential if assume_sequential is not None else is_sequential(extended)
    if not sequential:
        extended = sequentialize(extended)
    else:
        extended = trim(extended)
    if not extended.is_deterministic():
        extended = determinize(extended)
    return relabel_states(extended)


# Re-export the ledger status constants so that downstream modules can rely
# on a single import point for the ledger abstraction.
LEDGER_STATUSES = (UNSEEN, OPEN, CLOSED, VIOLATED)
