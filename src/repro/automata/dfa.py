"""Deterministic finite automata (DFA).

Used as the target of the NFA subset construction, mainly to count accepted
words of a fixed length (the Census problem of Theorem 5.2) by dynamic
programming, where determinism guarantees each word is counted once.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.core.errors import CompilationError

__all__ = ["DFA"]

State = Hashable


class DFA:
    """A deterministic finite automaton (partial transition function)."""

    def __init__(self) -> None:
        self._states: set[State] = set()
        self._initial: State | None = None
        self._finals: set[State] = set()
        # state -> symbol -> target
        self._transitions: dict[State, dict[str, State]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_state(self, state: State) -> State:
        """Register *state* (idempotent) and return it."""
        self._states.add(state)
        return state

    def set_initial(self, state: State) -> None:
        """Declare the (unique) initial state."""
        self.add_state(state)
        self._initial = state

    def add_final(self, state: State) -> None:
        """Mark *state* as accepting."""
        self.add_state(state)
        self._finals.add(state)

    def add_transition(self, source: State, symbol: str, target: State) -> None:
        """Add the transition ``δ(source, symbol) = target``."""
        if not isinstance(symbol, str) or len(symbol) != 1:
            raise CompilationError(f"DFA transitions need single-character symbols, got {symbol!r}")
        existing = self._transitions.get(source, {}).get(symbol)
        if existing is not None and existing != target:
            raise CompilationError(
                f"state {source!r} already has a transition on {symbol!r} to {existing!r}"
            )
        self.add_state(source)
        self.add_state(target)
        self._transitions.setdefault(source, {})[symbol] = target

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> frozenset[State]:
        """All states."""
        return frozenset(self._states)

    @property
    def initial(self) -> State:
        """The initial state."""
        if self._initial is None:
            raise CompilationError("the DFA has no initial state")
        return self._initial

    @property
    def finals(self) -> frozenset[State]:
        """The accepting states."""
        return frozenset(self._finals)

    def alphabet(self) -> frozenset[str]:
        """All symbols mentioned by transitions."""
        found: set[str] = set()
        for per_symbol in self._transitions.values():
            found.update(per_symbol)
        return frozenset(found)

    def successor(self, state: State, symbol: str) -> State | None:
        """``δ(state, symbol)`` or ``None`` if undefined."""
        return self._transitions.get(state, {}).get(symbol)

    def transitions(self) -> Iterator[tuple[State, str, State]]:
        """Iterate over all transitions."""
        for source, per_symbol in self._transitions.items():
            for symbol, target in per_symbol.items():
                yield source, symbol, target

    @property
    def num_states(self) -> int:
        """The number of states."""
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        """The number of transitions."""
        return sum(len(per_symbol) for per_symbol in self._transitions.values())

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #

    def accepts(self, word: str) -> bool:
        """Whether the DFA accepts *word*."""
        if self._initial is None:
            return False
        state = self._initial
        for symbol in word:
            state = self.successor(state, symbol)
            if state is None:
                return False
        return state in self._finals

    def count_words_of_length(self, length: int) -> int:
        """Count the words of exactly *length* characters that are accepted.

        Dynamic programming over ``(position, state)``; determinism ensures
        each word contributes exactly once.
        """
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if self._initial is None:
            return 0
        counts: dict[State, int] = {self._initial: 1}
        for _ in range(length):
            successor_counts: dict[State, int] = {}
            for state, count in counts.items():
                for target in self._transitions.get(state, {}).values():
                    successor_counts[target] = successor_counts.get(target, 0) + count
            counts = successor_counts
            if not counts:
                return 0
        return sum(count for state, count in counts.items() if state in self._finals)

    def count_words_up_to_length(self, length: int) -> int:
        """Count the accepted words of length at most *length*."""
        return sum(self.count_words_of_length(n) for n in range(length + 1))

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def rename_states(self) -> "DFA":
        """Return a copy with states renamed to consecutive integers."""
        ordered = sorted(self._states, key=repr)
        naming = {state: index for index, state in enumerate(ordered)}
        renamed = DFA()
        for state in self._states:
            renamed.add_state(naming[state])
        if self._initial is not None:
            renamed.set_initial(naming[self._initial])
        for state in self._finals:
            renamed.add_final(naming[state])
        for source, symbol, target in self.transitions():
            renamed.add_transition(naming[source], symbol, naming[target])
        return renamed

    def minimize(self) -> "DFA":
        """Return an equivalent minimal DFA (Moore partition refinement).

        The automaton is first completed with a sink state so that the
        classical refinement applies, and the sink is removed afterwards.
        """
        if self._initial is None:
            raise CompilationError("cannot minimize a DFA without an initial state")
        alphabet = sorted(self.alphabet())
        sink = ("sink",)
        states = set(self._states) | {sink}

        def total_successor(state: State, symbol: str) -> State:
            if state == sink:
                return sink
            return self._transitions.get(state, {}).get(symbol, sink)

        # Initial partition: finals vs non-finals.
        partition: list[set[State]] = [set(self._finals), states - set(self._finals)]
        partition = [block for block in partition if block]
        changed = True
        while changed:
            changed = False
            block_of = {state: index for index, block in enumerate(partition) for state in block}
            new_partition: list[set[State]] = []
            for block in partition:
                groups: dict[tuple, set[State]] = {}
                for state in block:
                    signature = tuple(block_of[total_successor(state, symbol)] for symbol in alphabet)
                    groups.setdefault(signature, set()).add(state)
                if len(groups) > 1:
                    changed = True
                new_partition.extend(groups.values())
            partition = new_partition

        block_of = {state: index for index, block in enumerate(partition) for state in block}
        minimal = DFA()
        sink_block = block_of[sink]
        for state in self._states:
            if block_of[state] != sink_block or state in self._finals:
                minimal.add_state(block_of[state])
        minimal.set_initial(block_of[self._initial])
        for final in self._finals:
            minimal.add_final(block_of[final])
        for source, symbol, target in self.transitions():
            if block_of[source] == sink_block or block_of[target] == sink_block:
                continue
            if minimal.successor(block_of[source], symbol) is None:
                minimal.add_transition(block_of[source], symbol, block_of[target])
        return minimal

    def __repr__(self) -> str:
        return f"DFA(states={self.num_states}, transitions={self.num_transitions})"
