"""Automata substrate: variable-set automata, extended VA, NFAs and DFAs."""

from repro.automata.eva import ExtendedVA
from repro.automata.markers import Marker, MarkerSet, close, open_
from repro.automata.nfa import NFA
from repro.automata.dfa import DFA
from repro.automata.va import VariableSetAutomaton

__all__ = [
    "DFA",
    "ExtendedVA",
    "Marker",
    "MarkerSet",
    "NFA",
    "VariableSetAutomaton",
    "close",
    "open_",
]
