"""Structural analysis of variable-set automata and extended VA.

The constant-delay algorithm needs its input automaton to be *sequential*
(every accepting run is valid) and *deterministic*.  This module implements
the decision procedures for these properties, plus reachability-based
trimming and basic size statistics used by the benchmark harness.

Sequentiality and functionality are decided by a forward exploration of the
product of the automaton with the "variable ledger" that tracks, per
variable, whether it is *unseen*, *open*, *closed* or *violated*
(a marker reused, or a close without an open).  The ledger is the same
abstraction the paper's Proposition 4.1 construction uses for its states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.automata.eva import ExtendedVA
from repro.automata.markers import Marker, MarkerSet
from repro.automata.va import VariableSetAutomaton

__all__ = [
    "AutomatonStatistics",
    "VariableLedger",
    "is_functional",
    "is_sequential",
    "reachable_states",
    "coreachable_states",
    "trim",
    "statistics",
]

State = Hashable

# Per-variable ledger values.
UNSEEN, OPEN, CLOSED, VIOLATED = 0, 1, 2, 3


@dataclass(frozen=True)
class VariableLedger:
    """Tracks the open/close status of every capture variable along a run.

    The ledger is immutable; applying markers returns a new ledger.  The
    special ``VIOLATED`` status is absorbing and records that the run can
    never be valid (a marker was reused or a variable closed before being
    opened).
    """

    variables: tuple[str, ...]
    status: tuple[int, ...]

    @classmethod
    def fresh(cls, variables: tuple[str, ...]) -> "VariableLedger":
        """A ledger where every variable is unseen."""
        return cls(variables, tuple(UNSEEN for _ in variables))

    def _index(self, variable: str) -> int:
        return self.variables.index(variable)

    def apply_marker(self, marker: Marker) -> "VariableLedger":
        """Apply a single marker."""
        return self.apply_markers((marker,))

    def apply_markers(self, markers) -> "VariableLedger":
        """Apply a set of markers (opens are processed before closes)."""
        status = list(self.status)
        ordered = sorted(markers)  # canonical order: opens before closes
        for marker in ordered:
            index = self._index(marker.variable)
            current = status[index]
            if marker.is_open:
                status[index] = OPEN if current == UNSEEN else VIOLATED
            else:
                status[index] = CLOSED if current == OPEN else VIOLATED
        return VariableLedger(self.variables, tuple(status))

    def is_valid_final(self) -> bool:
        """Whether a run ending with this ledger is valid."""
        return all(value in (UNSEEN, CLOSED) for value in self.status)

    def is_total_final(self) -> bool:
        """Whether a run ending with this ledger is valid *and* assigns all variables."""
        return all(value == CLOSED for value in self.status)

    def can_become_valid(self) -> bool:
        """Whether the run can still be completed into a valid run."""
        return VIOLATED not in self.status

    def opened_variables(self) -> frozenset[str]:
        """Variables currently open."""
        return frozenset(
            variable for variable, value in zip(self.variables, self.status) if value == OPEN
        )

    def closed_variables(self) -> frozenset[str]:
        """Variables already closed."""
        return frozenset(
            variable for variable, value in zip(self.variables, self.status) if value == CLOSED
        )


def _explore_ledgers(
    automaton: VariableSetAutomaton | ExtendedVA,
) -> Iterator[tuple[State, VariableLedger]]:
    """All reachable (state, ledger) pairs of the automaton.

    For extended VA the exploration respects the alternation requirement of
    eVA runs: after an extended variable transition, the next transition
    must be a letter transition.  Without this, paths that no actual run
    can take would be reported and the sequentiality check would be overly
    pessimistic.
    """
    if not automaton.has_initial:
        return
    is_extended = isinstance(automaton, ExtendedVA)
    variables = tuple(sorted(automaton.variables()))
    # The boolean flag records whether a variable transition is still
    # allowed from this configuration (it is not, immediately after one).
    start = (automaton.initial, VariableLedger.fresh(variables), True)
    seen = {start}
    frontier = [start]
    while frontier:
        state, ledger, may_capture = frontier.pop()
        yield state, ledger
        successors: list[tuple[State, VariableLedger, bool]] = []
        for _symbol, target in automaton.letter_transitions_from(state):
            successors.append((target, ledger, True))
        if may_capture or not is_extended:
            for label, target in automaton.variable_transitions_from(state):
                if isinstance(label, Marker):
                    new_ledger = ledger.apply_marker(label)
                else:
                    new_ledger = ledger.apply_markers(label)
                successors.append((target, new_ledger, not is_extended))
        for successor in successors:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)


def is_sequential(automaton: VariableSetAutomaton | ExtendedVA) -> bool:
    """Whether every accepting run of the automaton is valid.

    Note that this follows the paper's definition literally: an automaton
    with *no* accepting run at all is (vacuously) sequential.
    """
    finals = automaton.finals
    for state, ledger in _explore_ledgers(automaton):
        if state in finals and not ledger.is_valid_final():
            return False
    return True


def is_functional(automaton: VariableSetAutomaton | ExtendedVA) -> bool:
    """Whether every accepting run is valid and assigns every variable."""
    finals = automaton.finals
    for state, ledger in _explore_ledgers(automaton):
        if state in finals and not ledger.is_total_final():
            return False
    return True


# ---------------------------------------------------------------------- #
# Reachability and trimming
# ---------------------------------------------------------------------- #


def reachable_states(automaton: VariableSetAutomaton | ExtendedVA) -> frozenset[State]:
    """States reachable from the initial state."""
    if not automaton.has_initial:
        return frozenset()
    seen = {automaton.initial}
    frontier = [automaton.initial]
    while frontier:
        state = frontier.pop()
        for _, target in automaton.letter_transitions_from(state):
            if target not in seen:
                seen.add(target)
                frontier.append(target)
        for _, target in automaton.variable_transitions_from(state):
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    return frozenset(seen)


def coreachable_states(automaton: VariableSetAutomaton | ExtendedVA) -> frozenset[State]:
    """States from which some final state is reachable."""
    predecessors: dict[State, set[State]] = {}
    for source, _label, target in automaton.transitions():
        predecessors.setdefault(target, set()).add(source)
    seen = set(automaton.finals)
    frontier = list(seen)
    while frontier:
        state = frontier.pop()
        for source in predecessors.get(state, ()):
            if source not in seen:
                seen.add(source)
                frontier.append(source)
    return frozenset(seen)


def trim(automaton: VariableSetAutomaton | ExtendedVA):
    """Return a copy keeping only useful (reachable and co-reachable) states."""
    useful = reachable_states(automaton) & coreachable_states(automaton)
    if isinstance(automaton, VariableSetAutomaton):
        trimmed: VariableSetAutomaton | ExtendedVA = VariableSetAutomaton()
    else:
        trimmed = ExtendedVA()
    if automaton.has_initial and automaton.initial in useful:
        trimmed.set_initial(automaton.initial)
    elif automaton.has_initial:
        # Keep the initial state so the automaton stays well-formed even if
        # its language is empty.
        trimmed.set_initial(automaton.initial)
    for state in automaton.finals:
        if state in useful:
            trimmed.add_final(state)
    for source, label, target in automaton.transitions():
        if source not in useful or target not in useful:
            continue
        if isinstance(label, (Marker, MarkerSet)):
            trimmed.add_variable_transition(source, label, target)
        else:
            trimmed.add_letter_transition(source, label, target)
    return trimmed


# ---------------------------------------------------------------------- #
# Statistics
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class AutomatonStatistics:
    """Size statistics of an automaton, as used in the paper's bounds."""

    num_states: int
    num_transitions: int
    num_letter_transitions: int
    num_variable_transitions: int
    num_variables: int
    alphabet_size: int
    deterministic: bool | None = None
    sequential: bool | None = None
    functional: bool | None = None

    @property
    def size(self) -> int:
        """``|A|``: states plus transitions."""
        return self.num_states + self.num_transitions


def statistics(
    automaton: VariableSetAutomaton | ExtendedVA, check_properties: bool = False
) -> AutomatonStatistics:
    """Compute size statistics for *automaton*.

    When *check_properties* is true the (potentially expensive) determinism,
    sequentiality and functionality checks are also run.
    """
    letter = sum(1 for _, label, _ in automaton.transitions() if isinstance(label, str))
    total = automaton.num_transitions
    deterministic = sequential = functional = None
    if check_properties:
        deterministic = (
            automaton.is_deterministic() if isinstance(automaton, ExtendedVA) else None
        )
        sequential = is_sequential(automaton)
        functional = is_functional(automaton)
    return AutomatonStatistics(
        num_states=automaton.num_states,
        num_transitions=total,
        num_letter_transitions=letter,
        num_variable_transitions=total - letter,
        num_variables=len(automaton.variables()),
        alphabet_size=len(automaton.alphabet()),
        deterministic=deterministic,
        sequential=sequential,
        functional=functional,
    )
