"""Extended variable-set automata (eVA).

Extended VA (Section 3.1 of the paper) differ from classic VA in that a
single *extended variable transition* is labelled by a non-empty **set** of
markers, and runs must alternate between variable transitions and letter
transitions.  This normal form removes the run-order ambiguity of classic
VA and is the input format of the constant-delay algorithm.

The class exposes the reference run-based semantics (exponential, used as
ground truth) plus the structural predicates the paper relies on:
*deterministic*, *sequential* and *functional*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.core.documents import as_text
from repro.core.errors import CompilationError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.markers import Marker, MarkerSet

__all__ = ["ExtendedVA", "EVARun"]

State = Hashable


@dataclass(frozen=True)
class EVARun:
    """A run of an extended VA over a document.

    ``marker_steps`` is the tuple of ``(position, MarkerSet)`` pairs for the
    *non-empty* variable transitions taken (position is 0-based: the number
    of characters read before the transition), and ``states`` is the full
    sequence of states visited.
    """

    marker_steps: tuple[tuple[int, MarkerSet], ...]
    states: tuple[State, ...]

    def mapping(self) -> Mapping:
        """The mapping encoded by the run's marker steps."""
        opens: dict[str, int] = {}
        assignment: dict[str, Span] = {}
        for position, markers in self.marker_steps:
            for marker in markers:
                if marker.is_open:
                    opens[marker.variable] = position
            for marker in markers:
                if marker.is_close:
                    assignment[marker.variable] = Span(opens.pop(marker.variable), position)
        return Mapping(assignment)


class ExtendedVA:
    """An extended variable-set automaton.

    Letter transitions are ``(q, a, q')`` with ``a`` a single character;
    variable transitions are ``(q, S, q')`` with ``S`` a non-empty
    :class:`~repro.automata.markers.MarkerSet`.
    """

    def __init__(self) -> None:
        self._states: set[State] = set()
        self._initial: State | None = None
        self._finals: set[State] = set()
        # state -> symbol -> set of targets
        self._letter: dict[State, dict[str, set[State]]] = {}
        # state -> MarkerSet -> set of targets
        self._variable: dict[State, dict[MarkerSet, set[State]]] = {}
        # Memoized frozenset views handed out by letter_targets /
        # variable_targets, invalidated on mutation, so repeated calls to
        # the accessors don't allocate a fresh frozenset each time.
        self._letter_targets_cache: dict[tuple[State, str], frozenset[State]] = {}
        self._variable_targets_cache: dict[tuple[State, MarkerSet], frozenset[State]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_state(self, state: State) -> State:
        """Register *state* (idempotent) and return it."""
        self._states.add(state)
        return state

    def set_initial(self, state: State) -> None:
        """Declare the (unique) initial state."""
        self.add_state(state)
        self._initial = state

    def add_final(self, state: State) -> None:
        """Mark *state* as accepting."""
        self.add_state(state)
        self._finals.add(state)

    def add_letter_transition(self, source: State, symbol: str, target: State) -> None:
        """Add a letter transition ``(source, symbol, target)``."""
        if not isinstance(symbol, str) or len(symbol) != 1:
            raise CompilationError(f"letter transitions need single-character symbols, got {symbol!r}")
        self.add_state(source)
        self.add_state(target)
        self._letter.setdefault(source, {}).setdefault(symbol, set()).add(target)
        self._letter_targets_cache.pop((source, symbol), None)

    def add_variable_transition(
        self, source: State, markers: MarkerSet | Iterable[Marker], target: State
    ) -> None:
        """Add an extended variable transition labelled by a non-empty marker set."""
        marker_set = markers if isinstance(markers, MarkerSet) else MarkerSet(markers)
        if not marker_set.non_empty():
            raise CompilationError("extended variable transitions must carry a non-empty marker set")
        self.add_state(source)
        self.add_state(target)
        self._variable.setdefault(source, {}).setdefault(marker_set, set()).add(target)
        self._variable_targets_cache.pop((source, marker_set), None)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> frozenset[State]:
        """All states."""
        return frozenset(self._states)

    @property
    def initial(self) -> State:
        """The initial state."""
        if self._initial is None:
            raise CompilationError("the automaton has no initial state")
        return self._initial

    @property
    def has_initial(self) -> bool:
        """Whether an initial state has been declared."""
        return self._initial is not None

    @property
    def finals(self) -> frozenset[State]:
        """The accepting states."""
        return frozenset(self._finals)

    def variables(self) -> frozenset[str]:
        """``var(A)``: all variables mentioned by some transition."""
        found: set[str] = set()
        for per_state in self._variable.values():
            for marker_set in per_state:
                found.update(marker_set.variables())
        return frozenset(found)

    def alphabet(self) -> frozenset[str]:
        """All symbols mentioned by letter transitions."""
        found: set[str] = set()
        for per_state in self._letter.values():
            found.update(per_state)
        return frozenset(found)

    def letter_targets(self, state: State, symbol: str) -> frozenset[State]:
        """Targets of letter transitions from *state* on *symbol* (memoized)."""
        key = (state, symbol)
        targets = self._letter_targets_cache.get(key)
        if targets is None:
            targets = frozenset(self._letter.get(state, {}).get(symbol, ()))
            self._letter_targets_cache[key] = targets
        return targets

    def variable_targets(self, state: State, markers: MarkerSet) -> frozenset[State]:
        """Targets of the extended variable transition from *state* labelled *markers* (memoized)."""
        key = (state, markers)
        targets = self._variable_targets_cache.get(key)
        if targets is None:
            targets = frozenset(self._variable.get(state, {}).get(markers, ()))
            self._variable_targets_cache[key] = targets
        return targets

    def marker_sets_from(self, state: State) -> Iterator[MarkerSet]:
        """``Markers_δ(q)``: the marker sets labelling variable transitions from *state*."""
        return iter(self._variable.get(state, {}))

    def letter_transitions_from(self, state: State) -> Iterator[tuple[str, State]]:
        """Iterate over ``(symbol, target)`` letter transitions from *state*."""
        for symbol, targets in self._letter.get(state, {}).items():
            for target in targets:
                yield symbol, target

    def variable_transitions_from(self, state: State) -> Iterator[tuple[MarkerSet, State]]:
        """Iterate over ``(marker_set, target)`` variable transitions from *state*."""
        for marker_set, targets in self._variable.get(state, {}).items():
            for target in targets:
                yield marker_set, target

    def transitions(self) -> Iterator[tuple[State, object, State]]:
        """Iterate over all transitions as ``(source, label, target)``."""
        for source, per_symbol in self._letter.items():
            for symbol, targets in per_symbol.items():
                for target in targets:
                    yield source, symbol, target
        for source, per_markers in self._variable.items():
            for marker_set, targets in per_markers.items():
                for target in targets:
                    yield source, marker_set, target

    @property
    def num_states(self) -> int:
        """The number of states."""
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        """The number of transitions (letter plus variable)."""
        return sum(1 for _ in self.transitions())

    @property
    def num_variable_transitions(self) -> int:
        """The number of extended variable transitions."""
        return sum(
            len(targets)
            for per_markers in self._variable.values()
            for targets in per_markers.values()
        )

    @property
    def size(self) -> int:
        """``|A|``: number of states plus number of transitions."""
        return self.num_states + self.num_transitions

    # ------------------------------------------------------------------ #
    # Structural predicates
    # ------------------------------------------------------------------ #

    def is_deterministic(self) -> bool:
        """Whether the transition relation is a partial function.

        Determinism here is per the paper: for every state and every symbol
        there is at most one target, and for every state and every *marker
        set* there is at most one target.  It does **not** mean a unique run
        per document — only that each run produces a distinct mapping.
        """
        for per_symbol in self._letter.values():
            for targets in per_symbol.values():
                if len(targets) > 1:
                    return False
        for per_markers in self._variable.values():
            for targets in per_markers.values():
                if len(targets) > 1:
                    return False
        return True

    def is_sequential(self) -> bool:
        """Whether every accepting run is valid."""
        from repro.automata.analysis import is_sequential

        return is_sequential(self)

    def is_functional(self) -> bool:
        """Whether every accepting run is valid and mentions all variables."""
        from repro.automata.analysis import is_functional

        return is_functional(self)

    def deterministic_letter_successor(self, state: State, symbol: str) -> State | None:
        """``δ(q, a)`` for deterministic automata (``None`` if undefined)."""
        targets = self._letter.get(state, {}).get(symbol)
        if not targets:
            return None
        if len(targets) > 1:
            raise CompilationError(f"state {state!r} is non-deterministic on symbol {symbol!r}")
        return next(iter(targets))

    def deterministic_variable_successor(self, state: State, markers: MarkerSet) -> State | None:
        """``δ(q, S)`` for deterministic automata (``None`` if undefined)."""
        targets = self._variable.get(state, {}).get(markers)
        if not targets:
            return None
        if len(targets) > 1:
            raise CompilationError(f"state {state!r} is non-deterministic on marker set {markers}")
        return next(iter(targets))

    # ------------------------------------------------------------------ #
    # Reference semantics
    # ------------------------------------------------------------------ #

    def runs(self, document: object) -> Iterator[EVARun]:
        """Enumerate the valid accepting runs of the automaton over *document*.

        This is a direct implementation of the run definition (Equation 2 of
        the paper): variable transitions and letter transitions alternate,
        a variable transition may be skipped (``S = ∅`` keeps the state),
        and a run is valid when markers are used consistently.
        """
        text = as_text(document)
        if self._initial is None:
            return
        n = len(text)

        # Configuration: (state, position, phase, opened, closed, steps, states)
        # phase: "capture" before the variable transition at this position,
        #        "read" after it (about to consume text[position]).
        initial_config = (self._initial, 0, "capture", frozenset(), frozenset(), (), (self._initial,))
        stack = [initial_config]
        while stack:
            state, position, phase, opened, closed, steps, visited = stack.pop()
            if phase == "capture":
                # Option 1: skip the variable transition (S = ∅, stay put).
                stack.append((state, position, "read", opened, closed, steps, visited))
                # Option 2: take one extended variable transition.
                for marker_set, targets in self._variable.get(state, {}).items():
                    outcome = _apply_marker_set(marker_set, opened, closed)
                    if outcome is None:
                        continue
                    new_opened, new_closed = outcome
                    for target in targets:
                        stack.append(
                            (
                                target,
                                position,
                                "read",
                                new_opened,
                                new_closed,
                                steps + ((position, marker_set),),
                                visited + (target,),
                            )
                        )
            else:
                if position == n:
                    if state in self._finals and opened == closed:
                        yield EVARun(steps, visited)
                    continue
                symbol = text[position]
                for target in self._letter.get(state, {}).get(symbol, ()):
                    stack.append(
                        (target, position + 1, "capture", opened, closed, steps, visited + (target,))
                    )

    def evaluate(self, document: object) -> set[Mapping]:
        """``⟦A⟧(d)``: the set of mappings of valid accepting runs."""
        return {run.mapping() for run in self.runs(document)}

    # ------------------------------------------------------------------ #
    # Structural helpers
    # ------------------------------------------------------------------ #

    def copy(self) -> "ExtendedVA":
        """Return a deep copy of the automaton."""
        duplicate = ExtendedVA()
        for state in self._states:
            duplicate.add_state(state)
        if self._initial is not None:
            duplicate.set_initial(self._initial)
        for state in self._finals:
            duplicate.add_final(state)
        for source, label, target in self.transitions():
            if isinstance(label, MarkerSet):
                duplicate.add_variable_transition(source, label, target)
            else:
                duplicate.add_letter_transition(source, label, target)
        return duplicate

    def rename_states(self, naming: dict[State, State] | None = None) -> "ExtendedVA":
        """Return a copy with states renamed (default: consecutive integers)."""
        if naming is None:
            ordered = sorted(self._states, key=repr)
            naming = {state: index for index, state in enumerate(ordered)}
        renamed = ExtendedVA()
        for state in self._states:
            renamed.add_state(naming[state])
        if self._initial is not None:
            renamed.set_initial(naming[self._initial])
        for state in self._finals:
            renamed.add_final(naming[state])
        for source, label, target in self.transitions():
            if isinstance(label, MarkerSet):
                renamed.add_variable_transition(naming[source], label, naming[target])
            else:
                renamed.add_letter_transition(naming[source], label, naming[target])
        return renamed

    def to_dot(self, name: str = "eva") -> str:
        """Render the automaton in Graphviz dot format (for documentation)."""
        lines = [f"digraph {name} {{", "  rankdir=LR;"]
        for state in sorted(self._states, key=repr):
            shape = "doublecircle" if state in self._finals else "circle"
            lines.append(f'  "{state!r}" [shape={shape}];')
        if self._initial is not None:
            lines.append("  __start [shape=point];")
            lines.append(f'  __start -> "{self._initial!r}";')
        for source, label, target in self.transitions():
            lines.append(f'  "{source!r}" -> "{target!r}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExtendedVA(states={self.num_states}, transitions={self.num_transitions}, "
            f"variables={len(self.variables())})"
        )


def _apply_marker_set(
    marker_set: MarkerSet, opened: frozenset[str], closed: frozenset[str]
) -> tuple[frozenset[str], frozenset[str]] | None:
    """Apply a marker set to an (opened, closed) variable configuration.

    Returns the new configuration, or ``None`` if applying the set would
    violate validity (reuse of a marker, or closing a variable that is not
    open and not opened by the same set).
    """
    opening = marker_set.opened()
    closing = marker_set.closed()
    if opening & opened:
        return None
    if closing & closed:
        return None
    # A close is allowed when the variable is already open or opened by this
    # very set (producing an empty span).
    if not closing <= (opened | opening):
        return None
    return opened | opening, closed | closing
