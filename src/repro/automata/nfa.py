"""Plain nondeterministic finite automata (NFA).

NFAs are used as a substrate in two places:

* the Census problem of Theorem 5.2 (counting words of a given length
  accepted by an NFA), and
* the variable-free fragments of regex formulas.

The implementation supports ε-transitions, the subset construction to a
:class:`~repro.automata.dfa.DFA`, and exact word counting by dynamic
programming over the determinized automaton.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.core.errors import CompilationError

__all__ = ["NFA"]

State = Hashable
EPSILON = None  # transition label for ε-moves


class NFA:
    """A nondeterministic finite automaton with ε-transitions."""

    def __init__(self) -> None:
        self._states: set[State] = set()
        self._initial: State | None = None
        self._finals: set[State] = set()
        # state -> label (symbol or None for ε) -> set of targets
        self._transitions: dict[State, dict[object, set[State]]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_state(self, state: State) -> State:
        """Register *state* (idempotent) and return it."""
        self._states.add(state)
        return state

    def set_initial(self, state: State) -> None:
        """Declare the (unique) initial state."""
        self.add_state(state)
        self._initial = state

    def add_final(self, state: State) -> None:
        """Mark *state* as accepting."""
        self.add_state(state)
        self._finals.add(state)

    def add_transition(self, source: State, symbol: str, target: State) -> None:
        """Add a transition on a single-character symbol."""
        if not isinstance(symbol, str) or len(symbol) != 1:
            raise CompilationError(f"NFA transitions need single-character symbols, got {symbol!r}")
        self.add_state(source)
        self.add_state(target)
        self._transitions.setdefault(source, {}).setdefault(symbol, set()).add(target)

    def add_epsilon_transition(self, source: State, target: State) -> None:
        """Add an ε-transition."""
        self.add_state(source)
        self.add_state(target)
        self._transitions.setdefault(source, {}).setdefault(EPSILON, set()).add(target)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> frozenset[State]:
        """All states."""
        return frozenset(self._states)

    @property
    def initial(self) -> State:
        """The initial state."""
        if self._initial is None:
            raise CompilationError("the NFA has no initial state")
        return self._initial

    @property
    def finals(self) -> frozenset[State]:
        """The accepting states."""
        return frozenset(self._finals)

    def alphabet(self) -> frozenset[str]:
        """All symbols mentioned by non-ε transitions."""
        found: set[str] = set()
        for per_label in self._transitions.values():
            found.update(label for label in per_label if label is not EPSILON)
        return frozenset(found)

    def transitions(self) -> Iterator[tuple[State, object, State]]:
        """Iterate over all transitions (ε transitions carry label ``None``)."""
        for source, per_label in self._transitions.items():
            for label, targets in per_label.items():
                for target in targets:
                    yield source, label, target

    @property
    def num_states(self) -> int:
        """The number of states."""
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        """The number of transitions."""
        return sum(1 for _ in self.transitions())

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        """The set of states reachable from *states* through ε-transitions."""
        closure = set(states)
        frontier = list(closure)
        while frontier:
            state = frontier.pop()
            for target in self._transitions.get(state, {}).get(EPSILON, ()):
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[State], symbol: str) -> frozenset[State]:
        """One symbol step (including the closing ε-closure)."""
        direct: set[State] = set()
        for state in states:
            direct.update(self._transitions.get(state, {}).get(symbol, ()))
        return self.epsilon_closure(direct)

    def accepts(self, word: str) -> bool:
        """Whether the NFA accepts *word*."""
        if self._initial is None:
            return False
        current = self.epsilon_closure({self._initial})
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self._finals)

    def accepted_words(self, length: int) -> Iterator[str]:
        """Enumerate (in lexicographic order) the accepted words of *length*.

        Exponential; used only as ground truth in tests of the Census
        reduction.
        """
        alphabet = sorted(self.alphabet())
        if self._initial is None:
            return

        def explore(prefix: str, states: frozenset[State]) -> Iterator[str]:
            if len(prefix) == length:
                if states & self._finals:
                    yield prefix
                return
            for symbol in alphabet:
                successors = self.step(states, symbol)
                if successors:
                    yield from explore(prefix + symbol, successors)

        yield from explore("", self.epsilon_closure({self._initial}))

    def count_words_of_length(self, length: int) -> int:
        """The number of distinct words of the given *length* accepted.

        This is the Census problem of Theorem 5.2.  Counting over the NFA
        directly would overcount words with several accepting runs, so the
        count is computed by dynamic programming over the determinization.
        """
        return self.determinize().count_words_of_length(length)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def determinize(self) -> "DFA":
        """Subset construction into an equivalent DFA."""
        from repro.automata.dfa import DFA

        dfa = DFA()
        if self._initial is None:
            raise CompilationError("cannot determinize an NFA without an initial state")
        alphabet = sorted(self.alphabet())
        start = self.epsilon_closure({self._initial})
        dfa.set_initial(start)
        if start & self._finals:
            dfa.add_final(start)
        frontier = [start]
        seen = {start}
        while frontier:
            subset = frontier.pop()
            for symbol in alphabet:
                successor = self.step(subset, symbol)
                if not successor:
                    continue
                dfa.add_transition(subset, symbol, successor)
                if successor not in seen:
                    seen.add(successor)
                    if successor & self._finals:
                        dfa.add_final(successor)
                    frontier.append(successor)
        return dfa

    def reverse(self) -> "NFA":
        """The reverse automaton (accepts the mirror language)."""
        reversed_nfa = NFA()
        for state in self._states:
            reversed_nfa.add_state(state)
        fresh_initial = ("reverse-initial",)
        reversed_nfa.set_initial(fresh_initial)
        for final in self._finals:
            reversed_nfa.add_epsilon_transition(fresh_initial, final)
        if self._initial is not None:
            reversed_nfa.add_final(self._initial)
        for source, label, target in self.transitions():
            if label is EPSILON:
                reversed_nfa.add_epsilon_transition(target, source)
            else:
                reversed_nfa.add_transition(target, label, source)
        return reversed_nfa

    def __repr__(self) -> str:
        return f"NFA(states={self.num_states}, transitions={self.num_transitions})"
