"""Variable markers: the ``x⊢`` (open) and ``⊣x`` (close) symbols.

Variable-set automata manipulate capture variables through *markers*: the
symbol ``x⊢`` opens variable ``x`` and ``⊣x`` closes it.  Extended VA group
several markers into a single transition label, represented here by
:class:`MarkerSet` (a thin frozenset wrapper with validation and pretty
printing).
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Marker", "MarkerSet", "open_", "close"]


class Marker:
    """An open or close marker for a capture variable.

    Markers are immutable, hashable and totally ordered.  The ordering puts
    every open marker before every close marker and is otherwise
    alphabetical on the variable name; this mirrors the canonical marker
    order used in the paper's eVA → VA translation (proof of Theorem 3.1).

    >>> open_("x")
    Marker.open('x')
    >>> str(close("x"))
    '⊣x'
    """

    __slots__ = ("_variable", "_is_open")

    def __init__(self, variable: str, is_open: bool) -> None:
        if not isinstance(variable, str) or not variable:
            raise ValueError(f"marker variable must be a non-empty string, got {variable!r}")
        self._variable = variable
        self._is_open = bool(is_open)

    @property
    def variable(self) -> str:
        """The captured variable this marker refers to."""
        return self._variable

    @property
    def is_open(self) -> bool:
        """True for ``x⊢`` markers, False for ``⊣x`` markers."""
        return self._is_open

    @property
    def is_close(self) -> bool:
        """True for ``⊣x`` markers."""
        return not self._is_open

    def dual(self) -> "Marker":
        """The matching marker of the other kind for the same variable."""
        return Marker(self._variable, not self._is_open)

    def _sort_key(self) -> tuple[int, str]:
        # All open markers sort before all close markers (canonical order).
        return (0 if self._is_open else 1, self._variable)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Marker):
            return NotImplemented
        return self._variable == other._variable and self._is_open == other._is_open

    def __lt__(self, other: "Marker") -> bool:
        if not isinstance(other, Marker):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "Marker") -> bool:
        if not isinstance(other, Marker):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "Marker") -> bool:
        if not isinstance(other, Marker):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "Marker") -> bool:
        if not isinstance(other, Marker):
            return NotImplemented
        return self._sort_key() >= other._sort_key()

    def __hash__(self) -> int:
        return hash((self._variable, self._is_open))

    def __str__(self) -> str:
        return f"{self._variable}⊢" if self._is_open else f"⊣{self._variable}"

    def __repr__(self) -> str:
        kind = "open" if self._is_open else "close"
        return f"Marker.{kind}({self._variable!r})"


def open_(variable: str) -> Marker:
    """Shorthand for the open marker ``x⊢``."""
    return Marker(variable, True)


def close(variable: str) -> Marker:
    """Shorthand for the close marker ``⊣x``."""
    return Marker(variable, False)


class MarkerSet:
    """An immutable, non-empty-by-convention set of markers.

    Extended VA transitions are labelled by such sets.  The empty set is
    representable (it is convenient as the label of "no variable action" in
    partial-run encodings) but :meth:`non_empty` lets callers enforce the
    paper's requirement that transition labels are non-empty.
    """

    __slots__ = ("_markers",)

    def __init__(self, markers: Iterable[Marker] = ()) -> None:
        markers = frozenset(markers)
        for marker in markers:
            if not isinstance(marker, Marker):
                raise TypeError(f"expected Marker instances, got {marker!r}")
        self._markers = markers

    @classmethod
    def of(cls, *markers: Marker) -> "MarkerSet":
        """Build a marker set from positional marker arguments."""
        return cls(markers)

    @property
    def markers(self) -> frozenset[Marker]:
        """The underlying frozenset of markers."""
        return self._markers

    def non_empty(self) -> bool:
        """Whether the set contains at least one marker."""
        return bool(self._markers)

    def variables(self) -> frozenset[str]:
        """The variables mentioned by the markers in this set."""
        return frozenset(marker.variable for marker in self._markers)

    def opened(self) -> frozenset[str]:
        """Variables opened by this set."""
        return frozenset(m.variable for m in self._markers if m.is_open)

    def closed(self) -> frozenset[str]:
        """Variables closed by this set."""
        return frozenset(m.variable for m in self._markers if m.is_close)

    def restrict(self, variables: Iterable[str]) -> "MarkerSet":
        """Keep only markers whose variable is in *variables*."""
        keep = set(variables)
        return MarkerSet(m for m in self._markers if m.variable in keep)

    def union(self, other: "MarkerSet") -> "MarkerSet":
        """The union of two marker sets."""
        return MarkerSet(self._markers | other._markers)

    def isdisjoint(self, other: "MarkerSet") -> bool:
        """Whether the two sets share no marker."""
        return self._markers.isdisjoint(other._markers)

    def canonical_order(self) -> list[Marker]:
        """Markers sorted in the canonical (open-before-close) order."""
        return sorted(self._markers)

    def __contains__(self, marker: object) -> bool:
        return marker in self._markers

    def __iter__(self) -> Iterator[Marker]:
        return iter(self._markers)

    def __len__(self) -> int:
        return len(self._markers)

    def __bool__(self) -> bool:
        return bool(self._markers)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MarkerSet):
            return self._markers == other._markers
        if isinstance(other, frozenset):
            return self._markers == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._markers)

    def __str__(self) -> str:
        if not self._markers:
            return "{}"
        return "{" + ", ".join(str(m) for m in self.canonical_order()) + "}"

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self.canonical_order())
        return f"MarkerSet([{inner}])"
