"""Fluent builders for variable-set automata and extended VA.

Hand-writing automata (in tests, examples and workload generators) with the
imperative ``add_*`` methods is verbose.  The builders below provide a
compact, chainable construction style:

>>> from repro.automata.builders import EVABuilder
>>> eva = (
...     EVABuilder()
...     .initial(0)
...     .final(2)
...     .capture(0, ["x"], [], 1)
...     .letter(1, "a", 1)
...     .capture(1, [], ["x"], 2)
...     .build()
... )
>>> sorted(eva.variables())
['x']
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet, close, open_
from repro.automata.va import VariableSetAutomaton

__all__ = ["VABuilder", "EVABuilder", "marker_set"]

State = Hashable


def marker_set(opens: Iterable[str] = (), closes: Iterable[str] = ()) -> MarkerSet:
    """Build a marker set from variable names to open and close."""
    markers = [open_(variable) for variable in opens]
    markers.extend(close(variable) for variable in closes)
    return MarkerSet(markers)


class VABuilder:
    """Chainable builder for :class:`VariableSetAutomaton`."""

    def __init__(self) -> None:
        self._automaton = VariableSetAutomaton()

    def state(self, state: State) -> "VABuilder":
        """Declare a state (states used in transitions are added implicitly)."""
        self._automaton.add_state(state)
        return self

    def initial(self, state: State) -> "VABuilder":
        """Declare the initial state."""
        self._automaton.set_initial(state)
        return self

    def final(self, *states: State) -> "VABuilder":
        """Declare one or more accepting states."""
        for state in states:
            self._automaton.add_final(state)
        return self

    def letter(self, source: State, symbols: str, target: State) -> "VABuilder":
        """Add letter transitions for every character in *symbols*."""
        for symbol in symbols:
            self._automaton.add_letter_transition(source, symbol, target)
        return self

    def open(self, source: State, variable: str, target: State) -> "VABuilder":
        """Add a transition opening *variable*."""
        self._automaton.add_open_transition(source, variable, target)
        return self

    def close(self, source: State, variable: str, target: State) -> "VABuilder":
        """Add a transition closing *variable*."""
        self._automaton.add_close_transition(source, variable, target)
        return self

    def build(self) -> VariableSetAutomaton:
        """Return the constructed automaton."""
        return self._automaton


class EVABuilder:
    """Chainable builder for :class:`ExtendedVA`."""

    def __init__(self) -> None:
        self._automaton = ExtendedVA()

    def state(self, state: State) -> "EVABuilder":
        """Declare a state (states used in transitions are added implicitly)."""
        self._automaton.add_state(state)
        return self

    def initial(self, state: State) -> "EVABuilder":
        """Declare the initial state."""
        self._automaton.set_initial(state)
        return self

    def final(self, *states: State) -> "EVABuilder":
        """Declare one or more accepting states."""
        for state in states:
            self._automaton.add_final(state)
        return self

    def letter(self, source: State, symbols: str, target: State) -> "EVABuilder":
        """Add letter transitions for every character in *symbols*."""
        for symbol in symbols:
            self._automaton.add_letter_transition(source, symbol, target)
        return self

    def capture(
        self,
        source: State,
        opens: Iterable[str],
        closes: Iterable[str],
        target: State,
    ) -> "EVABuilder":
        """Add an extended variable transition opening/closing variables."""
        self._automaton.add_variable_transition(source, marker_set(opens, closes), target)
        return self

    def build(self) -> ExtendedVA:
        """Return the constructed automaton."""
        return self._automaton
