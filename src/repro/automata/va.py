"""Classic variable-set automata (VA).

A variable-set automaton is a finite state automaton whose transitions are
either *letter transitions* ``(q, a, q')`` with ``a`` an alphabet symbol, or
*variable transitions* ``(q, m, q')`` where ``m`` is a single marker
(``x⊢`` or ``⊣x``).  Its semantics over a document is the set of mappings
produced by *valid accepting runs* (Section 2 of the paper).

This module provides the reference, run-based semantics.  It is exponential
in the worst case and exists to (a) model spanners the way the paper's
Section 2 defines them, and (b) serve as ground truth for the efficient
algorithms in :mod:`repro.enumeration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.core.documents import as_text
from repro.core.errors import CompilationError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.automata.markers import Marker, close, open_

__all__ = ["VariableSetAutomaton", "VARun"]

State = Hashable


@dataclass(frozen=True)
class VARun:
    """A single valid accepting run of a VA over a document.

    ``steps`` is the sequence of ``(source, label, target, position)``
    tuples, where ``label`` is either a symbol or a :class:`Marker` and
    ``position`` is the 0-based document position *before* the step.
    """

    steps: tuple[tuple[State, object, State, int], ...]

    def mapping(self) -> Mapping:
        """The mapping produced by this run."""
        opens: dict[str, int] = {}
        assignment: dict[str, Span] = {}
        for _, label, _, position in self.steps:
            if isinstance(label, Marker):
                if label.is_open:
                    opens[label.variable] = position
                else:
                    assignment[label.variable] = Span(opens.pop(label.variable), position)
        return Mapping(assignment)


class VariableSetAutomaton:
    """A variable-set automaton with single-marker variable transitions.

    States may be any hashable values.  The automaton is built imperatively
    through :meth:`add_state`, :meth:`add_letter_transition` and
    :meth:`add_variable_transition`; see :mod:`repro.automata.builders` for
    a fluent construction helper.
    """

    def __init__(self) -> None:
        self._states: set[State] = set()
        self._initial: State | None = None
        self._finals: set[State] = set()
        # state -> symbol -> set of targets
        self._letter: dict[State, dict[str, set[State]]] = {}
        # state -> marker -> set of targets
        self._variable: dict[State, dict[Marker, set[State]]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_state(self, state: State) -> State:
        """Register *state* (idempotent) and return it."""
        self._states.add(state)
        return state

    def set_initial(self, state: State) -> None:
        """Declare the (unique) initial state."""
        self.add_state(state)
        self._initial = state

    def add_final(self, state: State) -> None:
        """Mark *state* as accepting."""
        self.add_state(state)
        self._finals.add(state)

    def add_letter_transition(self, source: State, symbol: str, target: State) -> None:
        """Add a letter transition ``(source, symbol, target)``."""
        if not isinstance(symbol, str) or len(symbol) != 1:
            raise CompilationError(f"letter transitions need single-character symbols, got {symbol!r}")
        self.add_state(source)
        self.add_state(target)
        self._letter.setdefault(source, {}).setdefault(symbol, set()).add(target)

    def add_variable_transition(self, source: State, marker: Marker, target: State) -> None:
        """Add a variable transition ``(source, marker, target)``."""
        if not isinstance(marker, Marker):
            raise CompilationError(f"variable transitions need a Marker label, got {marker!r}")
        self.add_state(source)
        self.add_state(target)
        self._variable.setdefault(source, {}).setdefault(marker, set()).add(target)

    def add_open_transition(self, source: State, variable: str, target: State) -> None:
        """Add a transition opening *variable*."""
        self.add_variable_transition(source, open_(variable), target)

    def add_close_transition(self, source: State, variable: str, target: State) -> None:
        """Add a transition closing *variable*."""
        self.add_variable_transition(source, close(variable), target)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def states(self) -> frozenset[State]:
        """All states of the automaton."""
        return frozenset(self._states)

    @property
    def initial(self) -> State:
        """The initial state."""
        if self._initial is None:
            raise CompilationError("the automaton has no initial state")
        return self._initial

    @property
    def has_initial(self) -> bool:
        """Whether an initial state has been declared."""
        return self._initial is not None

    @property
    def finals(self) -> frozenset[State]:
        """The accepting states."""
        return frozenset(self._finals)

    def variables(self) -> frozenset[str]:
        """``var(A)``: all variables mentioned by some transition."""
        found: set[str] = set()
        for per_state in self._variable.values():
            for marker in per_state:
                found.add(marker.variable)
        return frozenset(found)

    def alphabet(self) -> frozenset[str]:
        """All symbols mentioned by letter transitions."""
        found: set[str] = set()
        for per_state in self._letter.values():
            found.update(per_state)
        return frozenset(found)

    def letter_targets(self, state: State, symbol: str) -> frozenset[State]:
        """Targets of letter transitions from *state* on *symbol*."""
        return frozenset(self._letter.get(state, {}).get(symbol, ()))

    def variable_targets(self, state: State, marker: Marker) -> frozenset[State]:
        """Targets of variable transitions from *state* on *marker*."""
        return frozenset(self._variable.get(state, {}).get(marker, ()))

    def letter_transitions_from(self, state: State) -> Iterator[tuple[str, State]]:
        """Iterate over ``(symbol, target)`` letter transitions from *state*."""
        for symbol, targets in self._letter.get(state, {}).items():
            for target in targets:
                yield symbol, target

    def variable_transitions_from(self, state: State) -> Iterator[tuple[Marker, State]]:
        """Iterate over ``(marker, target)`` variable transitions from *state*."""
        for marker, targets in self._variable.get(state, {}).items():
            for target in targets:
                yield marker, target

    def transitions(self) -> Iterator[tuple[State, object, State]]:
        """Iterate over all transitions as ``(source, label, target)``."""
        for source, per_symbol in self._letter.items():
            for symbol, targets in per_symbol.items():
                for target in targets:
                    yield source, symbol, target
        for source, per_marker in self._variable.items():
            for marker, targets in per_marker.items():
                for target in targets:
                    yield source, marker, target

    @property
    def num_states(self) -> int:
        """The number of states."""
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        """The number of transitions (letter plus variable)."""
        return sum(1 for _ in self.transitions())

    @property
    def size(self) -> int:
        """``|A|``: number of states plus number of transitions."""
        return self.num_states + self.num_transitions

    # ------------------------------------------------------------------ #
    # Reference semantics
    # ------------------------------------------------------------------ #

    def runs(self, document: object) -> Iterator[VARun]:
        """Enumerate the valid accepting runs of the automaton over *document*.

        Invalid prefixes (marker reuse, closing an unopened variable) are
        pruned eagerly, which also guarantees termination in the presence of
        cycles of variable transitions.
        """
        text = as_text(document)
        if self._initial is None:
            return

        # Depth-first search over configurations.  The per-variable status is
        # a frozenset pair (open, closed); a marker may only move a variable
        # forward (unseen -> open -> closed), so variable-transition chains
        # always terminate.
        stack: list[tuple[State, int, frozenset[str], frozenset[str], tuple]] = [
            (self._initial, 0, frozenset(), frozenset(), ())
        ]
        while stack:
            state, position, opened, closed, steps = stack.pop()
            if position == len(text) and state in self._finals and opened == closed:
                yield VARun(steps)
            # Letter transitions consume the next character.
            if position < len(text):
                symbol = text[position]
                for target in self._letter.get(state, {}).get(symbol, ()):
                    stack.append(
                        (target, position + 1, opened, closed, steps + ((state, symbol, target, position),))
                    )
            # Variable transitions stay at the same position.
            for marker, targets in self._variable.get(state, {}).items():
                variable = marker.variable
                if marker.is_open:
                    if variable in opened:
                        continue
                    new_opened, new_closed = opened | {variable}, closed
                else:
                    if variable not in opened or variable in closed:
                        continue
                    new_opened, new_closed = opened, closed | {variable}
                for target in targets:
                    stack.append(
                        (target, position, new_opened, new_closed, steps + ((state, marker, target, position),))
                    )

    def evaluate(self, document: object) -> set[Mapping]:
        """``⟦A⟧(d)``: the set of mappings of valid accepting runs."""
        return {run.mapping() for run in self.runs(document)}

    # ------------------------------------------------------------------ #
    # Structural helpers
    # ------------------------------------------------------------------ #

    def copy(self) -> "VariableSetAutomaton":
        """Return a deep copy of the automaton."""
        duplicate = VariableSetAutomaton()
        for state in self._states:
            duplicate.add_state(state)
        if self._initial is not None:
            duplicate.set_initial(self._initial)
        for state in self._finals:
            duplicate.add_final(state)
        for source, label, target in self.transitions():
            if isinstance(label, Marker):
                duplicate.add_variable_transition(source, label, target)
            else:
                duplicate.add_letter_transition(source, label, target)
        return duplicate

    def rename_states(self, naming: dict[State, State] | None = None) -> "VariableSetAutomaton":
        """Return a copy with states renamed (default: consecutive integers)."""
        if naming is None:
            ordered = sorted(self._states, key=repr)
            naming = {state: index for index, state in enumerate(ordered)}
        renamed = VariableSetAutomaton()
        for state in self._states:
            renamed.add_state(naming[state])
        if self._initial is not None:
            renamed.set_initial(naming[self._initial])
        for state in self._finals:
            renamed.add_final(naming[state])
        for source, label, target in self.transitions():
            if isinstance(label, Marker):
                renamed.add_variable_transition(naming[source], label, naming[target])
            else:
                renamed.add_letter_transition(naming[source], label, naming[target])
        return renamed

    def to_dot(self, name: str = "va") -> str:
        """Render the automaton in Graphviz dot format (for documentation)."""
        lines = [f"digraph {name} {{", "  rankdir=LR;"]
        for state in sorted(self._states, key=repr):
            shape = "doublecircle" if state in self._finals else "circle"
            lines.append(f'  "{state!r}" [shape={shape}];')
        if self._initial is not None:
            lines.append('  __start [shape=point];')
            lines.append(f'  __start -> "{self._initial!r}";')
        for source, label, target in self.transitions():
            text = str(label)
            lines.append(f'  "{source!r}" -> "{target!r}" [label="{text}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"VariableSetAutomaton(states={self.num_states}, "
            f"transitions={self.num_transitions}, variables={len(self.variables())})"
        )

    # Late-bound convenience wrappers around the analysis module (kept as
    # methods because callers naturally ask the automaton about itself).

    def is_sequential(self) -> bool:
        """Whether every accepting run is valid (see the paper, Section 2)."""
        from repro.automata.analysis import is_sequential

        return is_sequential(self)

    def is_functional(self) -> bool:
        """Whether every accepting run is valid and uses all variables."""
        from repro.automata.analysis import is_functional

        return is_functional(self)


def make_va(
    states: Iterable[State],
    initial: State,
    finals: Iterable[State],
    letter_transitions: Iterable[tuple[State, str, State]] = (),
    variable_transitions: Iterable[tuple[State, Marker, State]] = (),
) -> VariableSetAutomaton:
    """Construct a VA from explicit component collections."""
    automaton = VariableSetAutomaton()
    for state in states:
        automaton.add_state(state)
    automaton.set_initial(initial)
    for state in finals:
        automaton.add_final(state)
    for source, symbol, target in letter_transitions:
        automaton.add_letter_transition(source, symbol, target)
    for source, marker, target in variable_transitions:
        automaton.add_variable_transition(source, marker, target)
    return automaton
