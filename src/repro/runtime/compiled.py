"""The compiled, integer-indexed representation of a deterministic seVA.

The reference evaluation engine (:mod:`repro.enumeration.evaluate`) walks
hashable-state dictionaries and per-state ``frozenset`` tables for every
character of every document.  For the batch workloads targeted by the
roadmap the automaton is fixed while millions of characters stream through
it, so it pays to *compile* the automaton once:

* states are interned to the contiguous integers ``0 .. num_states - 1``;
* alphabet symbols are interned to ``0 .. num_symbols - 1``;
* letter transitions become one dense row per state (a list indexed by
  symbol id, ``-1`` meaning "no transition");
* extended variable transitions become one flat tuple of
  ``(marker_set_id, target_state_id)`` pairs per state, with the marker
  sets themselves interned into a side table.

The resulting :class:`CompiledEVA` is immutable, cheap to pickle (plain
tuples and lists of ints plus the interned marker sets), and is the input
format of the integer-only inner loop in :mod:`repro.runtime.engine` and of
the multiprocessing batch engine in :mod:`repro.runtime.batch`.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.errors import CompilationError, NotDeterministicError
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet

__all__ = ["CompiledEVA", "compile_eva", "encode_symbols", "marker_decode_tables_for"]

State = Hashable

#: Sentinel target meaning "no transition" in the dense letter table.
NO_TARGET = -1


def marker_decode_tables_for(marker_sets) -> tuple[tuple, tuple]:
    """Per-marker-set-id ``(opened, closed)`` variable-name tuples.

    Shared by every compiled runtime (:class:`CompiledEVA` and the lazy
    :class:`~repro.runtime.subset.CompiledSubsetEVA`), so the arena
    enumerator decodes run steps identically whichever engine produced
    the arena.
    """
    opens = tuple(tuple(sorted(s.opened())) for s in marker_sets)
    closes = tuple(tuple(sorted(s.closed())) for s in marker_sets)
    return opens, closes


def encode_symbols(symbol_index: dict[str, int], text: str) -> list[int]:
    """Translate *text* into symbol ids (``NO_TARGET`` for foreign chars).

    A character outside the compiled alphabet can never be consumed by any
    letter transition, so the engines treat ``-1`` as "every live run dies
    here".
    """
    get = symbol_index.get
    return [get(character, NO_TARGET) for character in text]


class CompiledEVA:
    """An immutable dense-table view of a deterministic sequential eVA.

    Instances are produced by :func:`compile_eva`; all fields are plain
    containers of ints (plus the interned marker-set table), which keeps
    pickling cheap — the batch engine ships one compiled automaton to each
    worker process and never re-derives the tables per document.
    """

    __slots__ = (
        "state_objects",
        "state_index",
        "initial",
        "final_ids",
        "is_final",
        "symbols",
        "symbol_index",
        "letter_table",
        "marker_sets",
        "marker_set_index",
        "variable_table",
        "source",
        "_marker_decode",
    )

    def __init__(
        self,
        *,
        state_objects: tuple[State, ...],
        initial: int,
        final_ids: tuple[int, ...],
        symbols: tuple[str, ...],
        letter_table: tuple[tuple[int, ...], ...],
        marker_sets: tuple[MarkerSet, ...],
        variable_table: tuple[tuple[tuple[int, int], ...], ...],
        source: ExtendedVA,
    ) -> None:
        self.state_objects = state_objects
        self.state_index = {state: index for index, state in enumerate(state_objects)}
        self.initial = initial
        self.final_ids = final_ids
        finals = set(final_ids)
        self.is_final = tuple(index in finals for index in range(len(state_objects)))
        self.symbols = symbols
        self.symbol_index = {symbol: index for index, symbol in enumerate(symbols)}
        self.letter_table = letter_table
        self.marker_sets = marker_sets
        self.marker_set_index = {
            marker_set: index for index, marker_set in enumerate(marker_sets)
        }
        self.variable_table = variable_table
        self.source = source
        self._marker_decode: tuple[tuple, tuple] | None = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_states(self) -> int:
        """The number of interned states."""
        return len(self.state_objects)

    @property
    def num_symbols(self) -> int:
        """The number of interned alphabet symbols."""
        return len(self.symbols)

    @property
    def num_marker_sets(self) -> int:
        """The number of distinct interned marker sets."""
        return len(self.marker_sets)

    def marker_decode_tables(self) -> tuple[tuple, tuple]:
        """Per-marker-set-id ``(opened, closed)`` variable-name tuples.

        Precomputed once so the arena enumerator decodes each run step with
        two tuple iterations instead of walking :class:`MarkerSet` objects.
        """
        if self._marker_decode is None:
            self._marker_decode = marker_decode_tables_for(self.marker_sets)
        return self._marker_decode

    def portable_state_key(self, state_id: int) -> int:
        """A process-stable key for *state_id* (the id itself: compilation
        is deterministic, so every process interns states identically)."""
        return state_id

    def resolve_state_key(self, key: int) -> int:
        """Inverse of :meth:`portable_state_key`."""
        return key

    def encode_text(self, text: str) -> list[int]:
        """Translate *text* into a list of symbol ids (``-1`` for foreign chars)."""
        return encode_symbols(self.symbol_index, text)

    # ------------------------------------------------------------------ #
    # Pickling: the derived index dicts are rebuilt on load so that only
    # the flat tables travel between processes.
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict:
        return {
            "state_objects": self.state_objects,
            "initial": self.initial,
            "final_ids": self.final_ids,
            "symbols": self.symbols,
            "letter_table": self.letter_table,
            "marker_sets": self.marker_sets,
            "variable_table": self.variable_table,
            "source": self.source,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    def __repr__(self) -> str:
        return (
            f"CompiledEVA(states={self.num_states}, symbols={self.num_symbols}, "
            f"marker_sets={self.num_marker_sets})"
        )


def _ordered_states(automaton: ExtendedVA) -> tuple[State, ...]:
    """A deterministic state order with the initial state first."""
    initial = automaton.initial
    rest = sorted((s for s in automaton.states if s != initial), key=repr)
    return (initial, *rest)


def compile_eva(automaton: ExtendedVA, *, check_determinism: bool = True) -> CompiledEVA:
    """Intern *automaton* into a :class:`CompiledEVA`.

    The automaton must be deterministic (the dense letter rows hold a
    single target per symbol).  Sequentiality is not checked here — the
    same caveat as for the reference engine applies.
    """
    if not automaton.has_initial:
        raise CompilationError("cannot compile an automaton without an initial state")
    if check_determinism and not automaton.is_deterministic():
        raise NotDeterministicError(
            "the compiled runtime requires a deterministic extended VA"
        )

    state_objects = _ordered_states(automaton)
    state_index = {state: index for index, state in enumerate(state_objects)}
    symbols = tuple(sorted(automaton.alphabet()))
    symbol_index = {symbol: index for index, symbol in enumerate(symbols)}

    letter_rows: list[tuple[int, ...]] = []
    for state in state_objects:
        row = [NO_TARGET] * len(symbols)
        for symbol, target in automaton.letter_transitions_from(state):
            column = symbol_index[symbol]
            if row[column] != NO_TARGET:
                raise NotDeterministicError(
                    f"state {state!r} has two letter transitions on {symbol!r}"
                )
            row[column] = state_index[target]
        letter_rows.append(tuple(row))

    marker_sets: list[MarkerSet] = []
    marker_set_index: dict[MarkerSet, int] = {}
    variable_rows: list[tuple[tuple[int, int], ...]] = []
    for state in state_objects:
        pairs: list[tuple[int, int]] = []
        for marker_set, target in automaton.variable_transitions_from(state):
            set_id = marker_set_index.get(marker_set)
            if set_id is None:
                set_id = len(marker_sets)
                marker_set_index[marker_set] = set_id
                marker_sets.append(marker_set)
            pairs.append((set_id, state_index[target]))
        variable_rows.append(tuple(pairs))

    final_ids = tuple(sorted(state_index[state] for state in automaton.finals))

    return CompiledEVA(
        state_objects=state_objects,
        initial=state_index[automaton.initial],
        final_ids=final_ids,
        symbols=symbols,
        letter_table=tuple(letter_rows),
        marker_sets=tuple(marker_sets),
        variable_table=tuple(variable_rows),
        source=automaton,
    )
