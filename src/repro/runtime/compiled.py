"""The compiled, integer-indexed representation of a deterministic seVA.

The reference evaluation engine (:mod:`repro.enumeration.evaluate`) walks
hashable-state dictionaries and per-state ``frozenset`` tables for every
character of every document.  For the batch workloads targeted by the
roadmap the automaton is fixed while millions of characters stream through
it, so it pays to *compile* the automaton once:

* states are interned to the contiguous integers ``0 .. num_states - 1``;
* alphabet symbols are interned to ``0 .. num_symbols - 1``;
* letter transitions become one dense row per state (a list indexed by
  symbol id, ``-1`` meaning "no transition");
* extended variable transitions become one flat tuple of
  ``(marker_set_id, target_state_id)`` pairs per state, with the marker
  sets themselves interned into a side table.

The resulting :class:`CompiledEVA` is immutable, cheap to pickle (plain
tuples and lists of ints plus the interned marker sets), and is the input
format of every generated Algorithm-1 inner loop in
:mod:`repro.runtime.kernel` (the engine entry points in
:mod:`repro.runtime.engine` and its siblings bind one kernel each) and of
the multiprocessing batch engine in :mod:`repro.runtime.batch`.
"""

from __future__ import annotations

import re
from typing import Hashable

from repro.core.errors import CompilationError, NotDeterministicError
from repro.automata.eva import ExtendedVA
from repro.automata.markers import MarkerSet
from repro.runtime import resilience
from repro.runtime.encoding import SymbolClassing

__all__ = [
    "CompiledEVA",
    "compile_eva",
    "classify_columns",
    "encode_symbols",
    "marker_decode_tables_for",
    "store_stop_pattern",
]

State = Hashable

#: Sentinel target meaning "no transition" in the dense letter table.
NO_TARGET = -1


def marker_decode_tables_for(marker_sets) -> tuple[tuple, tuple]:
    """Per-marker-set-id ``(opened, closed)`` variable-name tuples.

    Shared by every compiled runtime (:class:`CompiledEVA` and the lazy
    :class:`~repro.runtime.subset.CompiledSubsetEVA`), so the arena
    enumerator decodes run steps identically whichever engine produced
    the arena.
    """
    opens = tuple(tuple(sorted(s.opened())) for s in marker_sets)
    closes = tuple(tuple(sorted(s.closed())) for s in marker_sets)
    return opens, closes


def encode_symbols(symbol_index: dict[str, int], text: str) -> list[int]:
    """Translate *text* into symbol ids (``NO_TARGET`` for foreign chars).

    A character outside the compiled alphabet can never be consumed by any
    letter transition, so the engines treat ``-1`` as "every live run dies
    here".

    .. deprecated-in-practice:: the engines no longer call this — they
       consume the cached, C-level class-id buffers of
       :mod:`repro.runtime.encoding` instead.  Kept for introspection and
       backward compatibility; new engines should not call it (see
       CONTRIBUTING).
    """
    get = symbol_index.get
    return [get(character, NO_TARGET) for character in text]


#: Upper bound on cached sprint patterns per runtime — a backstop against
#: pathological automata whose evaluations visit unboundedly many distinct
#: quiescent state sets; past the cap, patterns are compiled per use.
SPRINT_PATTERN_CACHE_CAP = 4096


def store_stop_pattern(cache: dict, key, stop_ids) -> "re.Pattern":
    """Compile the byte-class pattern matching any of *stop_ids*, caching it.

    Shared by every compiled runtime's ``sprint_pattern`` variants: the
    caller enumerates the class ids on which its live state (or state set)
    stops self-looping, and receives a compiled ``bytes`` character-class
    pattern whose ``search`` is the C-level quiescent skip.  The pattern is
    stored in *cache* under *key* unless the cache has reached
    :data:`SPRINT_PATTERN_CACHE_CAP`.
    """
    stops = b"".join(
        re.escape(bytes((class_id,))) for class_id in sorted(set(stop_ids))
    )
    pattern = re.compile(b"[" + stops + b"]")
    if len(cache) < SPRINT_PATTERN_CACHE_CAP:
        cache[key] = pattern
    return pattern


def classify_columns(columns) -> tuple[list[int], list]:
    """Group identical *columns* into equivalence classes.

    Returns ``(class_of, representatives)``: the class id of each column in
    input order, and one representative column per class id.  Used by both
    compiled runtimes to collapse alphabet symbols with identical transition
    behaviour into one character class.
    """
    class_of: list[int] = []
    index: dict = {}
    representatives: list = []
    for column in columns:
        class_id = index.get(column)
        if class_id is None:
            class_id = len(representatives)
            index[column] = class_id
            representatives.append(column)
        class_of.append(class_id)
    return class_of, representatives


class CompiledEVA:
    """An immutable dense-table view of a deterministic sequential eVA.

    Instances are produced by :func:`compile_eva`; all fields are plain
    containers of ints (plus the interned marker-set table), which keeps
    pickling cheap — the batch engine ships one compiled automaton to each
    worker process and never re-derives the tables per document.
    """

    __slots__ = (
        "state_objects",
        "state_index",
        "initial",
        "final_ids",
        "is_final",
        "symbols",
        "symbol_index",
        "letter_table",
        "marker_sets",
        "marker_set_index",
        "variable_table",
        "source",
        "classing",
        "class_table",
        "silent",
        "_marker_decode",
        "_sprint_patterns",
        "_runlength",
    )

    def __init__(
        self,
        *,
        state_objects: tuple[State, ...],
        initial: int,
        final_ids: tuple[int, ...],
        symbols: tuple[str, ...],
        letter_table: tuple[tuple[int, ...], ...],
        marker_sets: tuple[MarkerSet, ...],
        variable_table: tuple[tuple[tuple[int, int], ...], ...],
        source: ExtendedVA,
    ) -> None:
        self.state_objects = state_objects
        self.state_index = {state: index for index, state in enumerate(state_objects)}
        self.initial = initial
        self.final_ids = final_ids
        finals = set(final_ids)
        self.is_final = tuple(index in finals for index in range(len(state_objects)))
        self.symbols = symbols
        self.symbol_index = {symbol: index for index, symbol in enumerate(symbols)}
        self.letter_table = letter_table
        self.marker_sets = marker_sets
        self.marker_set_index = {
            marker_set: index for index, marker_set in enumerate(marker_sets)
        }
        self.variable_table = variable_table
        self.source = source
        self._marker_decode: tuple[tuple, tuple] | None = None

        # Derived (never pickled): symbol equivalence classes, the
        # class-indexed dense rows with a trailing all-dead foreign column,
        # the per-state "no variable transition" flags driving the
        # quiescent-run fast path, and the lazily built sprint patterns.
        columns = tuple(zip(*letter_table)) if letter_table and symbols else ()
        class_of, representatives = classify_columns(columns)
        self.classing = SymbolClassing(symbols, class_of)
        if representatives:
            self.class_table = tuple(
                row + (NO_TARGET,) for row in zip(*representatives)
            )
        else:
            self.class_table = tuple((NO_TARGET,) for _ in state_objects)
        self.silent = tuple(not row for row in variable_table)
        self._sprint_patterns: dict[int, re.Pattern] = {}
        # The run-length kernel (repro.runtime.runlength) caches its
        # per-class matrices here; like the sprint patterns it is derived
        # and never pickled (__setstate__ re-runs __init__).
        self._runlength = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_states(self) -> int:
        """The number of interned states."""
        return len(self.state_objects)

    @property
    def num_symbols(self) -> int:
        """The number of interned alphabet symbols."""
        return len(self.symbols)

    @property
    def num_marker_sets(self) -> int:
        """The number of distinct interned marker sets."""
        return len(self.marker_sets)

    @property
    def num_classes(self) -> int:
        """Distinct symbol equivalence classes (excluding the foreign class)."""
        return self.classing.num_classes

    def sprint_pattern(self, state: int) -> re.Pattern:
        """A compiled byte-pattern matching every class id that *leaves* *state*.

        The quiescent-run fast path uses it to skip, at C speed, over the
        (usually long) stretches of a ``bytes`` class buffer on which
        *state* only self-loops: ``pattern.search(buffer, pos)`` finds the
        next position whose class either moves to another state or kills
        the run (the foreign column guarantees the stop set is never
        empty).  Only meaningful for byte buffers, i.e. classings with at
        most 256 ids.
        """
        pattern = self._sprint_patterns.get(state)
        if pattern is None:
            row = self.class_table[state]
            pattern = store_stop_pattern(
                self._sprint_patterns,
                state,
                (
                    class_id
                    for class_id, target in enumerate(row)
                    if target != state
                ),
            )
        return pattern

    def sprint_pattern_multi(self, states: tuple[int, ...]) -> re.Pattern:
        """The union stop pattern of several live states.

        Matches every class id on which at least one of *states* does not
        self-loop: positions before the next match are guaranteed to leave
        the whole active set (and its parked lists) untouched, so the
        engines skip them in one C-level scan even when more than one
        silent run is live — the steady state of sparse-match scanning,
        where a finished-match run and the scanning run coexist to the end
        of the document.  *states* must be a sorted tuple (the cache key).
        """
        pattern = self._sprint_patterns.get(states)
        if pattern is None:
            class_table = self.class_table
            pattern = store_stop_pattern(
                self._sprint_patterns,
                states,
                (
                    class_id
                    for state in states
                    for class_id, target in enumerate(class_table[state])
                    if target != state
                ),
            )
        return pattern

    def marker_decode_tables(self) -> tuple[tuple, tuple]:
        """Per-marker-set-id ``(opened, closed)`` variable-name tuples.

        Precomputed once so the arena enumerator decodes each run step with
        two tuple iterations instead of walking :class:`MarkerSet` objects.
        """
        if self._marker_decode is None:
            self._marker_decode = marker_decode_tables_for(self.marker_sets)
        return self._marker_decode

    def portable_state_key(self, state_id: int) -> int:
        """A process-stable key for *state_id* (the id itself: compilation
        is deterministic, so every process interns states identically)."""
        return state_id

    def resolve_state_key(self, key: int) -> int:
        """Inverse of :meth:`portable_state_key`."""
        return key

    def encode_text(self, text: str) -> list[int]:
        """Translate *text* into a list of symbol ids (``-1`` for foreign chars).

        Introspection only — the engines consume :meth:`encode` (class-id
        buffers, cached per document) instead.
        """
        return encode_symbols(self.symbol_index, text)

    def encode(self, document: object):
        """The cached class-id :class:`~repro.runtime.encoding.EncodedDocument`
        of *document* under this automaton's classing."""
        if resilience._ACTIVE_PLAN is not None:
            resilience.maybe_fault("encode")
        return self.classing.encode(document)

    # ------------------------------------------------------------------ #
    # Pickling: the derived index dicts are rebuilt on load so that only
    # the flat tables travel between processes.
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict:
        return {
            "state_objects": self.state_objects,
            "initial": self.initial,
            "final_ids": self.final_ids,
            "symbols": self.symbols,
            "letter_table": self.letter_table,
            "marker_sets": self.marker_sets,
            "variable_table": self.variable_table,
            "source": self.source,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    def __repr__(self) -> str:
        return (
            f"CompiledEVA(states={self.num_states}, symbols={self.num_symbols}, "
            f"classes={self.num_classes}, marker_sets={self.num_marker_sets})"
        )


def _ordered_states(automaton: ExtendedVA) -> tuple[State, ...]:
    """A deterministic state order with the initial state first."""
    initial = automaton.initial
    rest = sorted((s for s in automaton.states if s != initial), key=repr)
    return (initial, *rest)


def compile_eva(automaton: ExtendedVA, *, check_determinism: bool = True) -> CompiledEVA:
    """Intern *automaton* into a :class:`CompiledEVA`.

    The automaton must be deterministic (the dense letter rows hold a
    single target per symbol).  Sequentiality is not checked here — the
    same caveat as for the reference engine applies.
    """
    if not automaton.has_initial:
        raise CompilationError("cannot compile an automaton without an initial state")
    if check_determinism and not automaton.is_deterministic():
        raise NotDeterministicError(
            "the compiled runtime requires a deterministic extended VA"
        )

    state_objects = _ordered_states(automaton)
    state_index = {state: index for index, state in enumerate(state_objects)}
    symbols = tuple(sorted(automaton.alphabet()))
    symbol_index = {symbol: index for index, symbol in enumerate(symbols)}

    letter_rows: list[tuple[int, ...]] = []
    for state in state_objects:
        row = [NO_TARGET] * len(symbols)
        for symbol, target in automaton.letter_transitions_from(state):
            column = symbol_index[symbol]
            if row[column] != NO_TARGET:
                raise NotDeterministicError(
                    f"state {state!r} has two letter transitions on {symbol!r}"
                )
            row[column] = state_index[target]
        letter_rows.append(tuple(row))

    marker_sets: list[MarkerSet] = []
    marker_set_index: dict[MarkerSet, int] = {}
    variable_rows: list[tuple[tuple[int, int], ...]] = []
    for state in state_objects:
        pairs: list[tuple[int, int]] = []
        for marker_set, target in automaton.variable_transitions_from(state):
            set_id = marker_set_index.get(marker_set)
            if set_id is None:
                set_id = len(marker_sets)
                marker_set_index[marker_set] = set_id
                marker_sets.append(marker_set)
            pairs.append((set_id, state_index[target]))
        variable_rows.append(tuple(pairs))

    final_ids = tuple(sorted(state_index[state] for state in automaton.finals))

    return CompiledEVA(
        state_objects=state_objects,
        initial=state_index[automaton.initial],
        final_ids=final_ids,
        symbols=symbols,
        letter_table=tuple(letter_rows),
        marker_sets=tuple(marker_sets),
        variable_table=tuple(variable_rows),
        source=automaton,
    )
