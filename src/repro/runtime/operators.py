"""Physical operators executing algebra *cut edges* on result arenas.

The optimizer (:mod:`repro.algebra.optimizer`) may decide that part of an
algebra expression should **not** be fused into one automaton (the
quadratic product of Proposition 4.4 followed by a potentially exponential
determinization) but instead be evaluated at runtime, the route of
Propositions 4.5/4.6: evaluate the fused fragments independently and
combine their mapping sets.  This module is that runtime:

* :class:`FusedLeaf` — a fused subexpression, compiled once per alphabet
  through the regular :class:`~repro.spanners.pipeline.CompilationPipeline`
  and evaluated by the engine its own inner
  :class:`~repro.runtime.plan.ExecutionPlan` picks (``compiled`` or
  ``compiled-otf``); its output is a
  :class:`~repro.runtime.dag.CompiledResultDag` arena.
* :class:`HashJoin` — hash join on the shared variables of the operand
  schemas (hash table built from the smaller side, probed with the larger).
* :class:`MergeUnion` — k-way union with dedup across all operands.
* :class:`ArenaProject` — projection executed directly on the arena cells:
  the integer walk of Algorithm 2 decodes only the *kept* variables'
  markers, so dropped captures never materialize a span.

A prepared operator tree is picklable (its leaves hold the same
``CompiledEVA`` / ``CompiledSubsetEVA`` tables the batch engine already
ships once per worker), which is what makes physical plans portable across
the process pool — see :func:`repro.runtime.batch.run_batch` with
``engine="hybrid"``.

Operators pass the document *object* down unchanged: each fused leaf's
engine pulls the shared class-id buffer from the document's encoding cache
(:mod:`repro.runtime.encoding`), so two leaves with the same alphabet
classing — or repeated executions of one plan over one document — trigger
a single encoding pass per signature instead of one per leaf invocation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.documents import as_text
from repro.core.errors import EvaluationError
from repro.core.mappings import Mapping
from repro.core.spans import Span
from repro.algebra.operators import hash_join_mappings
from repro.runtime.dag import CompiledResultDag
from repro.runtime.plan import ExecutionPlan, choose_plan

__all__ = [
    "ArenaProject",
    "FusedLeaf",
    "HashJoin",
    "MergeUnion",
    "OperatorResult",
    "PhysicalOperator",
    "hash_join_mappings",
    "merge_union_mappings",
    "project_arena",
    "render_physical",
]


# ---------------------------------------------------------------------- #
# The materialized result of a cut-edge operator
# ---------------------------------------------------------------------- #


class OperatorResult:
    """The output of a physical operator: a deduplicated mapping set.

    Duck-compatible with the arena result for everything downstream code
    uses — iteration, :meth:`mappings`, :meth:`count`, :meth:`is_empty` and
    :attr:`document_length` — and ships across process boundaries through
    :meth:`to_portable` / :meth:`from_portable` (plain tuples of ints and
    strings, like the arena's portable form).
    """

    __slots__ = ("document_length", "_mappings")

    def __init__(self, mappings: Iterable[Mapping], document_length: int) -> None:
        self._mappings = tuple(mappings)
        self.document_length = document_length

    def __iter__(self) -> Iterator[Mapping]:
        return iter(self._mappings)

    def mappings(self) -> Iterator[Mapping]:
        """Iterate over the output mappings."""
        return iter(self._mappings)

    def count(self) -> int:
        """The number of output mappings."""
        return len(self._mappings)

    def is_empty(self) -> bool:
        """Whether the operator produced no output mapping at all."""
        return not self._mappings

    def to_portable(self) -> tuple:
        """Flatten into picklable tuples (mirrors the arena's portable form)."""
        return (
            self.document_length,
            tuple(
                tuple(
                    (variable, span.begin, span.end)
                    for variable, span in sorted(mapping.items())
                )
                for mapping in self._mappings
            ),
        )

    @classmethod
    def from_portable(cls, portable: tuple) -> "OperatorResult":
        """Rebuild a result from :meth:`to_portable` output."""
        document_length, rows = portable
        return cls(
            (
                Mapping({variable: Span(begin, end) for variable, begin, end in row})
                for row in rows
            ),
            document_length,
        )

    def __repr__(self) -> str:
        return f"OperatorResult({len(self._mappings)} mappings)"


# ---------------------------------------------------------------------- #
# Mapping-set combinators (the runtime side of Propositions 4.5/4.6)
# ---------------------------------------------------------------------- #


def merge_union_mappings(operands: Iterable[Iterable[Mapping]]) -> list[Mapping]:
    """K-way union with dedup, in first-seen order across the operands."""
    seen: set[Mapping] = set()
    out: list[Mapping] = []
    for operand in operands:
        for mapping in operand:
            if mapping not in seen:
                seen.add(mapping)
                out.append(mapping)
    return out


def project_arena(result, keep: Iterable[str]) -> Iterator[Mapping]:
    """``π_Y`` directly over a result's cells — without decoding dropped spans.

    For a :class:`CompiledResultDag` this delegates to the arena walk of
    :meth:`CompiledResultDag.mappings` with its ``keep`` filter: the
    marker decode step skips every variable outside *keep*, so
    projected-away captures never allocate a
    :class:`~repro.core.spans.Span`.  The caller deduplicates (projection
    can collapse distinct runs onto one mapping).  Non-arena inputs (an
    upstream :class:`OperatorResult`) fall back to mapping restriction.
    """
    keep = frozenset(keep)
    if isinstance(result, CompiledResultDag):
        yield from result.mappings(keep=keep)
        return
    for mapping in result:
        yield mapping.restrict(keep)


# ---------------------------------------------------------------------- #
# The physical operator tree
# ---------------------------------------------------------------------- #


class PhysicalOperator:
    """Base class of physical plan nodes.

    ``reason`` records the optimizer's justification for placing the node
    (rendered by ``repro explain``).  A tree must be :meth:`prepare`-d for
    an alphabet key before :meth:`execute` runs a document through it.
    """

    def __init__(self, reason: str = "") -> None:
        self.reason = reason

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def prepare(self, alphabet: frozenset[str]) -> "PhysicalOperator":
        """Compile every fused leaf for *alphabet* (idempotent per key)."""
        for child in self.children():
            child.prepare(alphabet)
        return self

    def execute(self, document: object):
        """Evaluate *document*, returning an arena or an :class:`OperatorResult`."""
        raise NotImplementedError

    def label(self) -> str:
        """One-line description for :func:`render_physical`."""
        raise NotImplementedError

    def leaves(self) -> Iterator["FusedLeaf"]:
        """The fused leaves of the subtree, left to right."""
        for child in self.children():
            yield from child.leaves()


class FusedLeaf(PhysicalOperator):
    """A fused subexpression, compiled once per alphabet and run as a unit.

    The leaf owns a private :class:`CompilationPipeline` over its (already
    rewritten) expression fragment; :meth:`prepare` resolves the inner
    :class:`ExecutionPlan` from the sequential automaton's statistics
    exactly like the facade does for monolithic sources, so a small
    deterministic fragment gets dense tables while a large
    non-deterministic one is determinized on the fly.
    """

    def __init__(self, expression, reason: str = "") -> None:
        super().__init__(reason)
        self.expression = expression
        self.plan: ExecutionPlan | None = None
        self.runtime = None
        self._alphabet: frozenset[str] | None = None
        self._scratch = None

    def prepare(self, alphabet: frozenset[str]) -> "FusedLeaf":
        alphabet = frozenset(alphabet)
        if self.runtime is not None and self._alphabet == alphabet:
            return self
        # Imported here: the pipeline imports the algebra package, which
        # must be importable before this runtime module's class bodies run.
        from dataclasses import replace

        from repro.automata.analysis import statistics
        from repro.runtime.subset import CompiledSubsetEVA
        from repro.spanners.pipeline import CompilationPipeline

        pipeline = CompilationPipeline(self.expression, alphabet)
        sequential, report = pipeline.compile_sequential()
        stats = replace(
            statistics(sequential), deterministic=sequential.is_deterministic()
        )
        self.plan = choose_plan(stats, engine="auto")
        if self.plan.engine == "compiled-otf":
            self.runtime = CompiledSubsetEVA(sequential)
        else:
            automaton, report = pipeline.determinize_stage(sequential, report)
            self.runtime = pipeline.intern(automaton, report)
        self._alphabet = alphabet
        self._scratch = None
        return self

    def execute(self, document: object) -> CompiledResultDag:
        if self.runtime is None:
            raise EvaluationError("a FusedLeaf must be prepared before execution")
        from repro.runtime.compiled import CompiledEVA
        from repro.runtime.engine import EvaluationScratch, evaluate_compiled_arena
        from repro.runtime.subset import evaluate_subset_arena

        if isinstance(self.runtime, CompiledEVA):
            if self._scratch is None:
                self._scratch = EvaluationScratch(self.runtime)
            return evaluate_compiled_arena(self.runtime, document, scratch=self._scratch)
        return evaluate_subset_arena(self.runtime, document)

    def label(self) -> str:
        engine = self.plan.engine if self.plan is not None else "not compiled yet"
        states = getattr(self.runtime, "num_states", None)
        if states is None:
            states = getattr(self.runtime, "num_subset_states", None)
        size = f", {states} states" if states is not None else ""
        text = repr(self.expression)
        if len(text) > 60:
            text = text[:57] + "..."
        return f"fused[{engine}{size}] {text}"

    def leaves(self) -> Iterator["FusedLeaf"]:
        yield self

    def __getstate__(self) -> dict:
        return {
            "expression": self.expression,
            "reason": self.reason,
            "plan": self.plan,
            "runtime": self.runtime,
            "_alphabet": self._alphabet,
        }

    def __setstate__(self, state: dict) -> None:
        self.expression = state["expression"]
        self.reason = state["reason"]
        self.plan = state["plan"]
        self.runtime = state["runtime"]
        self._alphabet = state["_alphabet"]
        self._scratch = None


class HashJoin(PhysicalOperator):
    """Natural join of the operand results, left to right."""

    def __init__(self, operands: Iterable[PhysicalOperator], reason: str = "") -> None:
        super().__init__(reason)
        self.operands = tuple(operands)
        if len(self.operands) < 2:
            raise EvaluationError("HashJoin requires at least two operands")

    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.operands

    def execute(self, document: object) -> OperatorResult:
        # Operands are evaluated lazily, left to right: as soon as an
        # intermediate join result is empty the remaining operands are
        # never run — a selectivity short-circuit the fused automaton
        # route cannot perform (it always walks the full product).
        document_length = len(as_text(document))
        joined = list(self.operands[0].execute(document))
        for operand in self.operands[1:]:
            if not joined:
                break
            joined = hash_join_mappings(joined, operand.execute(document))
        return OperatorResult(joined, document_length)

    def label(self) -> str:
        return f"hash-join ({len(self.operands)}-way)"


class MergeUnion(PhysicalOperator):
    """K-way union of the operand results, with dedup."""

    def __init__(self, operands: Iterable[PhysicalOperator], reason: str = "") -> None:
        super().__init__(reason)
        self.operands = tuple(operands)
        if len(self.operands) < 2:
            raise EvaluationError("MergeUnion requires at least two operands")

    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.operands

    def execute(self, document: object) -> OperatorResult:
        document_length = len(as_text(document))
        return OperatorResult(
            merge_union_mappings(
                operand.execute(document) for operand in self.operands
            ),
            document_length,
        )

    def label(self) -> str:
        return f"merge-union ({len(self.operands)}-way)"


class ArenaProject(PhysicalOperator):
    """``π_Y`` over the child's result cells, with dedup.

    In optimizer-built plans the child is always a *cut* operator (an
    :class:`OperatorResult`): when a projection's child is fusible, fusing
    the projection into the leaf automaton (Proposition 4.4's linear
    construction) strictly dominates materializing the unprojected arena,
    so the optimizer never emits ``ArenaProject(FusedLeaf)``.  The arena
    input path (the ``keep``-filtered walk of
    :meth:`CompiledResultDag.mappings`) serves direct projections over
    leaf arenas in hand-built plans.
    """

    def __init__(self, child: PhysicalOperator, keep: Iterable[str], reason: str = "") -> None:
        super().__init__(reason)
        self.child = child
        self.keep = frozenset(keep)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def execute(self, document: object) -> OperatorResult:
        result = self.child.execute(document)
        seen: set[Mapping] = set()
        out: list[Mapping] = []
        for mapping in project_arena(result, self.keep):
            if mapping not in seen:
                seen.add(mapping)
                out.append(mapping)
        return OperatorResult(out, result.document_length)

    def label(self) -> str:
        return f"project[{', '.join(sorted(self.keep))}]"


def render_physical(root: PhysicalOperator) -> str:
    """Render a physical operator tree as an indented multi-line string."""
    from repro.algebra.logical import render_tree

    return render_tree(
        root,
        label=lambda node: node.label(),
        children=lambda node: node.children(),
        annotate=lambda node: node.reason,
    )
