"""C-speed document encoding shared by every compiled engine.

The compiled runtimes spend most of their per-character budget *before*
Algorithm 1 even runs: translating the document into integer symbol ids.
The original :func:`~repro.runtime.compiled.encode_symbols` walked the
string with a per-character dict ``.get`` — a Python-level loop paid again
on **every** engine invocation, even when the same document was evaluated
repeatedly (``enumerate`` then ``count``, every fused leaf of a hybrid
plan, every benchmark repeat).  This module replaces it with:

* **Symbol equivalence classes** — a :class:`SymbolClassing` maps each
  alphabet symbol to the id of its *behavioural class*: two symbols whose
  columns in the dense letter table are identical (every ``[a-z]``-style
  wildcard edge) share one class, so the per-state rows consumed by the
  engines shrink from ``|Σ|`` to the (often far smaller) class count.  One
  extra *foreign* class, whose column is all ``NO_TARGET``, absorbs every
  character outside the compiled alphabet — the engines need no
  out-of-alphabet branch at all.

* **One C-level encoding pass per document** — :meth:`SymbolClassing.encode`
  translates the whole document in bulk (``bytes.translate`` for latin-1
  texts, ``str.translate`` otherwise — both single C passes) into a compact
  class-id buffer: ``bytes`` when the class count fits a byte (the overwhelming
  case; byte indexing yields ints for free), an ``array('I')`` otherwise.

* **A per-document cache** — the resulting :class:`EncodedDocument` is
  cached on the :class:`~repro.core.documents.Document` keyed by the
  classing's *signature* (the ``(symbols, classes)`` pair), so two compiled
  automata with the same behavioural classing — or one automaton invoked
  through ``enumerate``/``count``/``extract``/``run_batch`` — share a
  single encoding pass.  The module-level :func:`encoding_passes` counter
  exists so tests can pin the "encoded at most once per signature"
  invariant.

Engine authors: consume :meth:`SymbolClassing.encode` (or accept an
:class:`EncodedDocument` directly) — do **not** call the legacy
``encode_symbols``; see CONTRIBUTING.
"""

from __future__ import annotations

import re
import sys
from array import array

from repro.core.documents import Document, as_text

__all__ = [
    "EncodedDocument",
    "SymbolClassing",
    "encoding_passes",
    "reset_encoding_passes",
    "runs_of_buffer",
]

#: How many fresh (non-cached) encoding passes have run since import (or the
#: last :func:`reset_encoding_passes`).  A test hook: the satellite invariant
#: "one batch document is encoded at most once per alphabet signature" is
#: asserted by comparing this counter across evaluations.
_fresh_passes = 0


def encoding_passes() -> int:
    """The number of fresh document-encoding passes performed so far."""
    return _fresh_passes


def reset_encoding_passes() -> None:
    """Reset the pass counter (test isolation)."""
    global _fresh_passes
    _fresh_passes = 0


#: Maximal same-byte runs of a ``bytes`` class-id buffer, in one C-level
#: regex pass (the backreference keeps the whole scan inside the engine).
_RUN_PATTERN = re.compile(rb"(.)\1*", re.DOTALL)


def runs_of_buffer(buffer) -> tuple[tuple[int, int], ...]:
    """The run-length encoding of a class-id buffer: ``(class_id, length)``.

    Works on both buffer flavours the encoders produce — ``bytes`` (scanned
    with one C-level regex pass) and ``array('I')`` (grouped with
    :func:`itertools.groupby`).  Shard workers call this directly on buffer
    *slices*, so a run split across a shard boundary simply shows up as one
    run per side; every consumer composes per-character, which makes the
    split exact.
    """
    if isinstance(buffer, bytes):
        return tuple(
            (match.group()[0], match.end() - match.start())
            for match in _RUN_PATTERN.finditer(buffer)
        )
    from itertools import groupby

    return tuple(
        (class_id, sum(1 for _ in group)) for class_id, group in groupby(buffer)
    )


#: Delimiter-probe window: segment statistics are estimated on a prefix so
#: the probe stays O(1) in the document length.
_SEGMENT_PROBE_CHARS = 65536
#: A usable delimiter must cut the probe window into at least this many
#: segments (fewer means the memo would amortize nothing) ...
_SEGMENT_MIN_COUNT = 8
#: ... of a bounded mean length (huge segments are effectively unique, so
#: memoizing them would just cache the document) ...
_SEGMENT_MAX_MEAN = 512
#: ... and of a non-trivial mean length (a delimiter making up most of the
#: buffer produces more segments than characters saved).
_SEGMENT_MIN_MEAN = 4.0
#: Segments between delimiter occurrences must actually repeat: at most
#: this fraction of the probe window's segments may be distinct.
_SEGMENT_MAX_DISTINCT_RATIO = 0.25

_UNPROBED = object()


class EncodedDocument:
    """A document translated once into a flat class-id buffer.

    ``buffer`` is ``bytes`` (one class id per byte) when the classing has at
    most 256 ids, otherwise an ``array('I')``; indexing either yields plain
    ints, which is exactly what the engines' inner loops consume.  The
    original ``text`` is kept so that downstream consumers (span slicing,
    ``as_text``) keep working when an :class:`EncodedDocument` is passed
    where a document is expected.

    Beside the buffer, the run-length view used by the run-length kernels
    (:meth:`runs`, :meth:`mean_run_length`, :meth:`segment_delimiter`) is
    memoized lazily *on this object*: it shares the buffer's lifetime and
    its cache slot on the owning :class:`~repro.core.documents.Document`,
    so evicting the encoding necessarily evicts the RLE view with it — the
    two can never describe different classing signatures.  Pickling drops
    the memo the same way the document-level encoding cache is dropped.
    """

    __slots__ = ("text", "buffer", "length", "signature", "_runs", "_delimiter")

    def __init__(self, text: str, buffer, signature: tuple) -> None:
        self.text = text
        self.buffer = buffer
        self.length = len(text)
        self.signature = signature
        self._runs = None
        self._delimiter = _UNPROBED

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        kind = "bytes" if isinstance(self.buffer, bytes) else "array"
        return f"EncodedDocument({self.length} chars, {kind} buffer)"

    # ------------------------------------------------------------------ #
    # Run-length view (lazy, evicted with the encoding, never pickled)
    # ------------------------------------------------------------------ #

    def runs(self) -> tuple[tuple[int, int], ...]:
        """The RLE of the class-id buffer: maximal ``(class_id, length)`` runs."""
        runs = self._runs
        if runs is None:
            runs = runs_of_buffer(self.buffer)
            self._runs = runs
        return runs

    def mean_run_length(self) -> float:
        """Average run length — the planner's repetitiveness statistic."""
        runs = self.runs()
        return self.length / len(runs) if runs else 0.0

    def segment_delimiter(self) -> int | None:
        """The class id the count kernel should segment this buffer on.

        Probes a bounded prefix of the buffer for a byte value that cuts it
        into many short *repeating* segments (for machine-generated text,
        typically the record separator: segments between newlines are drawn
        from a small set of class-id shapes even when the raw characters
        differ).  Returns ``None`` when no byte qualifies — non-``bytes``
        buffers, short documents, or genuinely non-repetitive content —
        and memoizes either answer beside the buffer.
        """
        delimiter = self._delimiter
        if delimiter is _UNPROBED:
            delimiter = self._probe_delimiter()
            self._delimiter = delimiter
        return delimiter

    def _probe_delimiter(self) -> int | None:
        buffer = self.buffer
        if not isinstance(buffer, bytes):
            return None
        prefix = buffer[:_SEGMENT_PROBE_CHARS]
        best: tuple[int, int] | None = None
        for value in set(prefix):
            segments = prefix.split(bytes((value,)))
            count = len(segments)
            mean = len(prefix) / count
            if (
                count < _SEGMENT_MIN_COUNT
                or mean > _SEGMENT_MAX_MEAN
                or mean < _SEGMENT_MIN_MEAN
            ):
                continue
            if len(set(segments)) > count * _SEGMENT_MAX_DISTINCT_RATIO:
                continue
            # The steady-state cost of the segmented count pass is one memo
            # lookup per segment, so among qualifying delimiters the one
            # producing the fewest segments wins.
            if best is None or count < best[0]:
                best = (count, value)
        return None if best is None else best[1]

    # ------------------------------------------------------------------ #
    # Pickling drops the lazy run-length memo, mirroring the encoding
    # cache dropped by Document.__getstate__.
    # ------------------------------------------------------------------ #

    def __getstate__(self):
        return (self.text, self.buffer, self.signature)

    def __setstate__(self, state) -> None:
        text, buffer, signature = state
        self.__init__(text, buffer, signature)


class SymbolClassing:
    """The alphabet → equivalence-class translation of one compiled automaton.

    Built once at compile time from the interned symbol order and the
    per-symbol class ids (symbols whose letter-table columns coincide share
    a class).  Two classings compare (and hash) equal iff their signatures
    do, so encodings cached on documents are shared across independently
    compiled automata with the same behaviour.
    """

    __slots__ = (
        "symbols",
        "class_of",
        "num_classes",
        "foreign_class",
        "num_ids",
        "signature",
        "_hash",
        "_byte_table",
        "_str_table",
        "_cleanup",
        "_foreign_char",
    )

    def __init__(self, symbols: tuple[str, ...], class_of) -> None:
        self.symbols = tuple(symbols)
        self.class_of = tuple(class_of)
        if len(self.symbols) != len(self.class_of):
            raise ValueError("one class id per symbol is required")
        self.num_classes = (max(self.class_of) + 1) if self.class_of else 0
        #: The one extra class whose letter column is all ``NO_TARGET``.
        self.foreign_class = self.num_classes
        self.num_ids = self.num_classes + 1
        self.signature = (self.symbols, self.class_of)
        self._hash = hash(self.signature)

        # str.translate table: alphabet symbols map to their class id; the
        # low codepoints that could be confused with class ids map to the
        # foreign class.  After translation every char with ord <= the
        # foreign id IS a class id, and everything above is a foreign
        # character, fixed up by one C-level regex substitution.
        table = {ord(symbol): cls for symbol, cls in zip(self.symbols, self.class_of)}
        for codepoint in range(self.num_ids):
            table.setdefault(codepoint, self.foreign_class)
        self._str_table = table
        self._foreign_char = chr(self.foreign_class)
        self._cleanup = re.compile(
            "[^\\x00-" + re.escape(chr(self.foreign_class)) + "]"
        )

        # bytes.translate table for the fast path: latin-1 documents over a
        # <=256-id classing translate at memcpy speed.
        if self.num_ids <= 256:
            byte_table = bytearray([self.foreign_class]) * 256
            for symbol, cls in zip(self.symbols, self.class_of):
                point = ord(symbol)
                if point < 256:
                    byte_table[point] = cls
            self._byte_table = bytes(byte_table)
        else:
            self._byte_table = None

    # ------------------------------------------------------------------ #
    # Equality by signature, so caches hit across compilations
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SymbolClassing):
            return self.signature == other.signature
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"SymbolClassing({len(self.symbols)} symbols -> "
            f"{self.num_classes} classes + foreign)"
        )

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def encode_fresh(self, text: str) -> EncodedDocument:
        """Translate *text* into a class-id buffer (no cache consulted)."""
        global _fresh_passes
        _fresh_passes += 1

        if self._byte_table is not None:
            # Fast path: latin-1 text over a byte-sized classing translates
            # with two C passes (encode + translate); any symbol >= U+0100
            # in the text falls back to the general route below.
            try:
                raw = text.encode("latin-1")
            except UnicodeEncodeError:
                pass
            else:
                return EncodedDocument(
                    text, raw.translate(self._byte_table), self.signature
                )

        translated = text.translate(self._str_table)
        cleaned = self._cleanup.sub(self._foreign_char, translated)
        if self.num_ids <= 256:
            buffer: object = cleaned.encode("latin-1")
        else:
            codec = "utf-32-le" if sys.byteorder == "little" else "utf-32-be"
            buffer = array("I", cleaned.encode(codec))
            if buffer.itemsize != 4:  # pragma: no cover - exotic platforms
                buffer = array("I", (ord(char) for char in cleaned))
        return EncodedDocument(text, buffer, self.signature)

    def encode(self, document: object) -> EncodedDocument:
        """The encoded form of *document*, reusing every available cache.

        Accepts a ``str``, a :class:`~repro.core.documents.Document` (whose
        per-signature cache is consulted and filled) or an
        :class:`EncodedDocument` — an already-encoded document with a
        matching signature passes straight through, so callers can encode
        once at the top of a pipeline and hand the buffer down.
        """
        if isinstance(document, EncodedDocument):
            if document.signature == self.signature:
                return document
            document = document.text
        if isinstance(document, Document):
            cached = document.cached_encoding(self.signature)
            if cached is not None:
                return cached
            encoded = self.encode_fresh(document.text)
            document.store_encoding(self.signature, encoded)
            return encoded
        return self.encode_fresh(as_text(document))
