"""Multi-document batch evaluation over a compiled automaton.

:func:`run_batch` streams ``(doc_id, ResultDag)`` pairs for every document
of a collection, compiling nothing per document: the caller compiles once
(typically via :meth:`repro.spanners.Spanner.run_batch`) and the engine
reuses one :class:`~repro.runtime.engine.EvaluationScratch` per worker.

Two execution modes are supported:

``serial``
    A lazy generator in the calling process.  Constant memory beyond the
    current document's DAG.

``processes``
    Documents are chunked and fanned out to a ``multiprocessing`` pool.
    The compiled automaton is pickled **once per worker** (via the pool
    initializer), not once per task.  Result DAGs are linked structures of
    :class:`DagNode`/:class:`LazyList` cells, which naive pickling would
    recurse through; workers instead flatten each DAG into a *portable*
    form — flat tuples of ints in topological order — that the parent
    rehydrates into an equivalent ``ResultDag``.

Both engines are available in both modes: ``engine="compiled"`` (the
integer runtime) and ``engine="reference"`` (the legacy dict-based
Algorithm 1), which the property tests use to cross-check results.
"""

from __future__ import annotations

import multiprocessing
from typing import Iterable, Iterator

from repro.core.documents import DocumentCollection, as_text
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.evaluate import ResultDag, evaluate as reference_evaluate
from repro.enumeration.lazylist import LazyList
from repro.runtime.compiled import CompiledEVA
from repro.runtime.engine import EvaluationScratch, evaluate_compiled

__all__ = ["run_batch", "freeze_result", "thaw_result"]

ENGINES = ("compiled", "reference")
MODES = ("serial", "processes")

#: ``(document_length, nodes, finals)`` where ``nodes[i]`` is
#: ``(marker_set_id, position, adjacency_ids)`` in topological (children
#: first) order and ``finals`` maps state ids to entry-node ids; ``-1``
#: denotes the ⊥ sink in both adjacency and final entries.
PortableDag = tuple[int, tuple, tuple]


# ---------------------------------------------------------------------- #
# Portable (process-crossing) DAG representation
# ---------------------------------------------------------------------- #


def freeze_result(result: ResultDag, compiled: CompiledEVA) -> PortableDag:
    """Flatten a :class:`ResultDag` into picklable tuples of ints."""
    marker_index = compiled.marker_set_index
    state_index = compiled.state_index
    node_ids: dict[int, int] = {}
    nodes: list[tuple[int, int, tuple[int, ...]]] = []

    def entry_ids(lazy_list: LazyList) -> tuple[int, ...]:
        return tuple(
            -1 if child is BOTTOM else node_ids[id(child)] for child in lazy_list
        )

    def visit(root: DagNode) -> None:
        stack: list[tuple[DagNode, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in node_ids:
                continue
            if expanded:
                node_ids[id(node)] = len(nodes)
                nodes.append(
                    (marker_index[node.markers], node.position, entry_ids(node.adjacency))
                )
            else:
                stack.append((node, True))
                for child in node.adjacency:
                    if child is not BOTTOM and id(child) not in node_ids:
                        stack.append((child, False))

    finals: list[tuple[int, tuple[int, ...]]] = []
    for state, lazy_list in result.final_lists.items():
        for entry in lazy_list:
            if entry is not BOTTOM:
                visit(entry)
        finals.append((state_index[state], entry_ids(lazy_list)))

    return (result.document_length, tuple(nodes), tuple(finals))


def thaw_result(portable: PortableDag, compiled: CompiledEVA) -> ResultDag:
    """Rebuild a :class:`ResultDag` from its portable form.

    Node sharing (and therefore path counts and enumeration output) is
    preserved: portable node ids map one-to-one onto rebuilt nodes.
    """
    document_length, nodes, finals = portable
    marker_sets = compiled.marker_sets
    state_objects = compiled.state_objects

    def rebuild_list(entries: tuple[int, ...], built: list[DagNode]) -> LazyList:
        lazy_list = LazyList()
        for entry in reversed(entries):
            lazy_list.add(BOTTOM if entry < 0 else built[entry])
        return lazy_list

    built: list[DagNode] = []
    for set_id, position, adjacency in nodes:
        built.append(DagNode(marker_sets[set_id], position, rebuild_list(adjacency, built)))

    final_lists = {
        state_objects[state_id]: rebuild_list(entries, built)
        for state_id, entries in finals
    }
    return ResultDag(compiled.source, document_length, final_lists)


# ---------------------------------------------------------------------- #
# Worker-process plumbing (module level so it pickles under any context)
# ---------------------------------------------------------------------- #

_worker_compiled: CompiledEVA | None = None
_worker_scratch: EvaluationScratch | None = None
_worker_engine: str = "compiled"


def _init_worker(compiled: CompiledEVA, engine: str) -> None:
    global _worker_compiled, _worker_scratch, _worker_engine
    _worker_compiled = compiled
    _worker_scratch = EvaluationScratch(compiled)
    _worker_engine = engine


def _evaluate_one(compiled: CompiledEVA, text: str, engine: str, scratch) -> ResultDag:
    if engine == "reference":
        return reference_evaluate(compiled.source, text, check_determinism=False)
    return evaluate_compiled(compiled, text, scratch=scratch)


def _process_chunk(chunk: list[tuple[object, str]]) -> list[tuple[object, PortableDag]]:
    compiled = _worker_compiled
    assert compiled is not None, "worker pool used before initialization"
    out = []
    for doc_id, text in chunk:
        result = _evaluate_one(compiled, text, _worker_engine, _worker_scratch)
        out.append((doc_id, freeze_result(result, compiled)))
    return out


# ---------------------------------------------------------------------- #
# The batch driver
# ---------------------------------------------------------------------- #


def _pairs_of(collection: DocumentCollection) -> Iterator[tuple[object, str]]:
    """Yield ``(doc_id, text)`` pairs of a collection."""
    for doc_id, document in collection.items():
        yield doc_id, as_text(document)


def _chunked(pairs: Iterator[tuple[object, str]], size: int) -> Iterator[list]:
    chunk: list[tuple[object, str]] = []
    for pair in pairs:
        chunk.append(pair)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def run_batch(
    compiled: CompiledEVA,
    documents: DocumentCollection | Iterable[object],
    *,
    mode: str = "serial",
    engine: str = "compiled",
    chunk_size: int = 16,
    max_workers: int | None = None,
) -> Iterator[tuple[object, ResultDag]]:
    """Evaluate *compiled* over every document, streaming the results.

    Parameters
    ----------
    compiled:
        The compiled automaton (see :func:`repro.runtime.compile_eva`).
    documents:
        A :class:`~repro.core.documents.DocumentCollection` or any iterable
        of documents (``str`` or ``Document``).
    mode:
        ``"serial"`` (default) or ``"processes"``.
    engine:
        ``"compiled"`` (default) or ``"reference"``.
    chunk_size:
        Documents per worker task in process mode (ignored when serial).
    max_workers:
        Pool size in process mode; defaults to ``os.cpu_count()``.

    Yields
    ------
    ``(doc_id, ResultDag)`` pairs, in collection order.
    """
    # Validate and coerce eagerly: run_batch itself is a plain function, so
    # a bad mode, engine or documents argument fails at the call site, not
    # at the first iteration of the returned generator.
    if mode not in MODES:
        raise ValueError(f"unknown batch mode {mode!r}; expected one of {MODES}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    collection = DocumentCollection.coerce(documents)
    return _stream_batch(compiled, collection, mode, engine, chunk_size, max_workers)


def _stream_batch(
    compiled: CompiledEVA,
    collection: DocumentCollection,
    mode: str,
    engine: str,
    chunk_size: int,
    max_workers: int | None,
) -> Iterator[tuple[object, ResultDag]]:
    pairs = _pairs_of(collection)

    if mode == "serial":
        scratch = EvaluationScratch(compiled)
        for doc_id, text in pairs:
            yield doc_id, _evaluate_one(compiled, text, engine, scratch)
        return

    context = multiprocessing.get_context()
    pool = context.Pool(
        processes=max_workers, initializer=_init_worker, initargs=(compiled, engine)
    )
    try:
        for chunk_result in pool.imap(_process_chunk, _chunked(pairs, chunk_size)):
            for doc_id, portable in chunk_result:
                yield doc_id, thaw_result(portable, compiled)
    finally:
        pool.terminate()
        pool.join()
