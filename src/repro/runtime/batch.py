"""Multi-document batch evaluation over a compiled automaton.

:func:`run_batch` streams ``(doc_id, result)`` pairs for every document of
a collection, compiling nothing per document: the caller compiles once
(typically via :meth:`repro.spanners.Spanner.run_batch`) and the engine
reuses one :class:`~repro.runtime.engine.EvaluationScratch` per worker.

Two execution modes are supported:

``serial``
    A lazy generator in the calling process.  Constant memory beyond the
    current document's DAG.

``processes``
    Documents are chunked and fanned out to a ``multiprocessing`` pool.
    The compiled automaton is pickled **once per worker** (via the pool
    initializer), not once per task.  Results cross the process boundary
    in the flat portable form of
    :class:`~repro.runtime.dag.CompiledResultDag` — tuples of ints that
    pickle in one piece — and the parent reattaches them to its own
    compiled automaton; legacy object DAGs from the reference engine are
    interned into an arena first.

In both modes the :class:`~repro.core.documents.Document` objects flow
down to the engines unconverted, so the per-document encoded-buffer cache
(:mod:`repro.runtime.encoding`) is hit whenever one document appears
several times in a collection, or is evaluated again by another engine
with the same alphabet classing (a document's encoding cache is dropped at
the pickling boundary — each worker encodes against its own tables).

``streaming=True`` additionally switches the ``compiled`` engine to
chunk-fed evaluation (:mod:`repro.runtime.streaming`): each worker feeds
a document through the arena engine in bounded slices instead of
encoding it whole, cutting peak memory per document to one encoded chunk
plus the live arena — the results are array-identical.

Four engines are available in both modes: ``engine="compiled"`` (the
arena-building integer runtime over a :class:`CompiledEVA`),
``engine="compiled-otf"`` (the lazily determinized subset runtime over a
:class:`~repro.runtime.subset.CompiledSubsetEVA` — pass that as the
*compiled* argument; its discovered rows are shared across the whole
batch), ``engine="hybrid"`` (a *prepared* physical operator tree from the
expression optimizer — the portable physical plan pickles once per worker
exactly like a compiled automaton, fused-leaf tables included) and
``engine="reference"`` (the legacy dict-based Algorithm 1), which the
property tests use to cross-check results.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Iterable, Iterator

from repro.core.documents import DocumentCollection
from repro.core.errors import ReproError, ResourceLimitError
from repro.enumeration.evaluate import ResultDag, evaluate as reference_evaluate
from repro.runtime.compiled import CompiledEVA
from repro.runtime.dag import CompiledResultDag
from repro.runtime.engine import EvaluationScratch
from repro.runtime.operators import OperatorResult, PhysicalOperator
from repro.runtime.runlength import KERNELS, evaluate_arena_with_kernel
from repro.runtime import resilience, sharding
from repro.runtime.resilience import (
    FailureReport,
    ResiliencePolicy,
    ResourceBudget,
    SupervisedPool,
)
from repro.runtime.streaming import evaluate_streaming
from repro.runtime.subset import CompiledSubsetEVA, evaluate_subset_arena

__all__ = ["run_batch", "freeze_result", "thaw_result"]

ENGINES = ("compiled", "compiled-otf", "reference", "hybrid")
MODES = ("serial", "processes")

#: Tag discriminating an :class:`OperatorResult` portable form from the
#: arena's (whose first element is the integer document length).
_MAPPINGS_TAG = "mappings"


# ---------------------------------------------------------------------- #
# Portable (process-crossing) result representation
# ---------------------------------------------------------------------- #


def freeze_result(
    result: ResultDag | CompiledResultDag, compiled
) -> tuple:
    """Flatten a result into picklable tuples of ints.

    An arena result is already flat and serializes directly; a legacy
    :class:`ResultDag` (the reference engine) is interned into an arena
    first.  Final states travel under the compiled automaton's
    process-stable keys, so the parent can thaw results produced by a
    worker whose lazy subset runtime interned states in a different order.
    """
    if isinstance(result, OperatorResult):
        return (_MAPPINGS_TAG, *result.to_portable())
    if isinstance(result, CompiledResultDag):
        return result.to_portable()
    return CompiledResultDag.from_result_dag(result, compiled).to_portable()


def thaw_result(portable: tuple, compiled) -> CompiledResultDag | OperatorResult:
    """Reattach a portable result to *compiled*.

    Arena results are rebuilt onto the compiled automaton (node sharing,
    and therefore path counts and enumeration output, is preserved: the
    arena arrays travel verbatim); hybrid operator results are plain
    mapping sets and need no tables.
    """
    if portable and portable[0] == _MAPPINGS_TAG:
        return OperatorResult.from_portable(portable[1:])
    return CompiledResultDag.from_portable(portable, compiled)


# ---------------------------------------------------------------------- #
# Worker-process plumbing (module level so it pickles under any context)
# ---------------------------------------------------------------------- #

_worker_compiled: CompiledEVA | CompiledSubsetEVA | PhysicalOperator | None = None
_worker_scratch: EvaluationScratch | None = None
_worker_engine: str = "compiled"
_worker_stream_chunk: int = 0  # 0: evaluate documents whole
_worker_kernel: str = "auto"
_worker_budget: ResourceBudget | None = None


def _init_worker(
    compiled,
    engine: str,
    stream_chunk: int = 0,
    kernel: str = "auto",
    budget: ResourceBudget | None = None,
    faults: resilience.FaultPlan | None = None,
) -> None:
    global _worker_compiled, _worker_scratch, _worker_engine, _worker_stream_chunk
    global _worker_kernel, _worker_budget
    _worker_compiled = compiled
    _worker_scratch = (
        EvaluationScratch(compiled) if isinstance(compiled, CompiledEVA) else None
    )
    _worker_engine = engine
    _worker_stream_chunk = stream_chunk
    _worker_kernel = kernel
    _worker_budget = budget
    resilience.install_fault_plan(faults)
    # Prime the shard-task globals too, so the same pool can serve
    # intra-document shard tasks (run_batch's shard_min_chars path)
    # without a second automaton transfer.
    if isinstance(compiled, CompiledEVA):
        sharding._init_shard_worker(compiled)


def _evaluate_one(
    compiled,
    document: object,
    engine: str,
    scratch,
    stream_chunk: int = 0,
    kernel: str = "auto",
):
    if resilience._ACTIVE_PLAN is not None:
        resilience.maybe_fault("evaluate")
    if engine == "hybrid":
        return compiled.execute(document)
    if engine == "reference":
        return reference_evaluate(compiled.source, document, check_determinism=False)
    if engine == "compiled-otf":
        # The lazily determinized capture path has no run-length arena;
        # it runs scalar regardless of the requested kernel.
        return evaluate_subset_arena(compiled, document)
    if stream_chunk:
        # Chunk-fed evaluation: same arena, array for array, but peak
        # memory is one encoded chunk instead of a whole-document buffer.
        # Streaming never sees the whole run-length encoding, so it is
        # always scalar (run_batch rejects kernel="runlength" up front).
        return evaluate_streaming(
            compiled, document, chunk_size=stream_chunk, scratch=scratch
        )
    return evaluate_arena_with_kernel(
        compiled, document, kernel=kernel, scratch=scratch
    )


def _process_chunk(chunk: list[tuple[object, object]]) -> list[tuple[object, tuple]]:
    compiled = _worker_compiled
    assert compiled is not None, "worker pool used before initialization"
    if resilience._ACTIVE_PLAN is not None:
        resilience.maybe_fault("task")
    budget = _worker_budget
    out = []
    for doc_id, document in chunk:
        if budget is not None:
            budget.check_document(document)
        result = _evaluate_one(
            compiled,
            document,
            _worker_engine,
            _worker_scratch,
            _worker_stream_chunk,
            _worker_kernel,
        )
        if budget is not None:
            budget.check_result(result)
        out.append((doc_id, freeze_result(result, compiled)))
    return out


# ---------------------------------------------------------------------- #
# The batch driver
# ---------------------------------------------------------------------- #


def _pairs_of(collection: DocumentCollection) -> Iterator[tuple[object, object]]:
    """Yield ``(doc_id, document)`` pairs of a collection.

    Documents are passed through as objects (not flattened to ``str``) so
    that the engines' per-document encoding cache can be shared: a document
    appearing twice in the collection is translated once.
    """
    yield from collection.items()


def _chunked(pairs: Iterator[tuple[object, object]], size: int) -> Iterator[list]:
    chunk: list[tuple[object, object]] = []
    for pair in pairs:
        chunk.append(pair)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def run_batch(
    compiled: CompiledEVA | CompiledSubsetEVA | PhysicalOperator,
    documents: DocumentCollection | Iterable[object],
    *,
    mode: str = "serial",
    engine: str = "compiled",
    chunk_size: int = 16,
    max_workers: int | None = None,
    streaming: bool = False,
    stream_chunk_size: int = 65536,
    shard_min_chars: int | None = None,
    kernel: str = "auto",
    policy: ResiliencePolicy | None = None,
    report: FailureReport | None = None,
) -> Iterator[tuple[object, ResultDag | CompiledResultDag | OperatorResult]]:
    """Evaluate *compiled* over every document, streaming the results.

    Parameters
    ----------
    compiled:
        The compiled evaluator: a :class:`CompiledEVA` for the
        ``compiled`` / ``reference`` engines, a :class:`CompiledSubsetEVA`
        for ``compiled-otf``, or a prepared
        :class:`~repro.runtime.operators.PhysicalOperator` tree for
        ``hybrid``.
    documents:
        A :class:`~repro.core.documents.DocumentCollection` or any iterable
        of documents (``str`` or ``Document``).
    mode:
        ``"serial"`` (default) or ``"processes"``.
    engine:
        ``"compiled"`` (default), ``"compiled-otf"``, ``"hybrid"`` or
        ``"reference"``.
    chunk_size:
        Documents per worker task in process mode (ignored when serial).
    max_workers:
        Pool size in process mode; defaults to ``os.cpu_count()``.
    streaming:
        Feed each document to the engine in ``stream_chunk_size``-character
        slices through :func:`~repro.runtime.streaming.evaluate_streaming`
        instead of evaluating it whole.  Only ``engine="compiled"``
        streams; results are array-identical to whole-document arenas,
        but no whole-document class-id buffer is materialized.
    stream_chunk_size:
        Characters per streaming slice (ignored unless *streaming*).
    shard_min_chars:
        Process mode, ``compiled`` engine only: documents at least this
        long get intra-document shard parallelism
        (:func:`~repro.runtime.sharding.evaluate_sharded`) across the
        whole pool instead of occupying one worker — the right call when
        a collection mixes a few outsized documents into many small
        ones.  Sharded documents are evaluated (and their results held)
        before the small-document stream starts; yields stay in
        collection order.  ``None`` (default) disables sharding, and
        serial mode ignores it (there is no pool to shard across).
    kernel:
        Inner-loop kernel for the ``compiled`` engine:
        ``"auto"`` (default — per document, by run-length statistics),
        ``"scalar"``, or ``"runlength"``
        (:mod:`repro.runtime.runlength`).  Results are identical either
        way.  The other engines run scalar regardless; forcing
        ``"runlength"`` on them, or on a streaming batch (which never
        sees a whole run-length encoding), is an error.
    policy:
        The fault-tolerance policy (:mod:`repro.runtime.resilience`).
        Process mode is *always* supervised — with ``policy=None`` it
        runs under :data:`~repro.runtime.resilience.DEFAULT_POLICY`
        (bounded task deadlines, crash retries, one pool rebuild, exact
        inline fallback, fail-fast on poison documents).  Serial mode
        engages the policy's guards/faults/quarantine only when a policy
        is passed, keeping the default serial path overhead-free.  With
        ``policy.quarantine`` set, documents that fail deterministically
        are recorded in *report* and omitted from the yielded stream
        instead of aborting the batch.
    report:
        A :class:`~repro.runtime.resilience.FailureReport` collecting
        quarantined documents and recovery counters for this run.
        Required when ``policy.quarantine`` is set (one is created
        internally otherwise, but then the caller cannot read it).

    Yields
    ------
    ``(doc_id, result)`` pairs, in collection order; the compiled engines
    yield :class:`CompiledResultDag` arenas, the reference engine legacy
    :class:`ResultDag` objects (arenas in process mode, where everything
    crosses as a portable arena).
    """
    # Validate and coerce eagerly: run_batch itself is a plain function, so
    # a bad mode, engine or documents argument fails at the call site, not
    # at the first iteration of the returned generator.
    if mode not in MODES:
        raise ValueError(f"unknown batch mode {mode!r}; expected one of {MODES}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if engine == "compiled-otf" and not isinstance(compiled, CompiledSubsetEVA):
        raise ValueError(
            "engine='compiled-otf' needs a CompiledSubsetEVA "
            f"(got {type(compiled).__name__})"
        )
    if engine != "compiled-otf" and isinstance(compiled, CompiledSubsetEVA):
        raise ValueError(
            f"engine={engine!r} needs a CompiledEVA, not a CompiledSubsetEVA"
        )
    if engine == "hybrid" and not isinstance(compiled, PhysicalOperator):
        raise ValueError(
            "engine='hybrid' needs a prepared physical operator tree "
            f"(got {type(compiled).__name__})"
        )
    if engine != "hybrid" and isinstance(compiled, PhysicalOperator):
        raise ValueError(
            f"engine={engine!r} cannot run a physical operator tree"
        )
    if streaming and engine != "compiled":
        raise ValueError(
            f"engine={engine!r} cannot evaluate chunk-fed documents; "
            "streaming batches run the compiled engine"
        )
    if streaming and stream_chunk_size < 1:
        raise ValueError(
            f"stream_chunk_size must be positive, got {stream_chunk_size}"
        )
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    if kernel == "runlength" and engine != "compiled":
        raise ValueError(
            f"engine {engine!r} has no run-length kernel; "
            "kernel='runlength' needs the dense-table compiled engine"
        )
    if kernel == "runlength" and streaming:
        raise ValueError(
            "a streaming batch cannot force kernel='runlength': chunk-fed "
            "evaluation never sees the whole run-length encoding"
        )
    if shard_min_chars is not None:
        if shard_min_chars < 1:
            raise ValueError(
                f"shard_min_chars must be positive, got {shard_min_chars}"
            )
        if engine != "compiled":
            raise ValueError(
                f"engine={engine!r} cannot shard documents across workers; "
                "shard_min_chars needs the dense-table compiled engine"
            )
        if streaming:
            raise ValueError(
                "streaming batches cannot shard documents: sharding needs "
                "the whole class-id buffer up front to split it"
            )
    if policy is not None and policy.quarantine and report is None:
        report = FailureReport()
    collection = DocumentCollection.coerce(documents)
    stream_chunk = stream_chunk_size if streaming else 0
    return _stream_batch(
        compiled,
        collection,
        mode,
        engine,
        chunk_size,
        max_workers,
        stream_chunk,
        shard_min_chars,
        kernel,
        policy,
        report,
    )


def _serial_supervised(
    compiled,
    pairs: Iterator[tuple[object, object]],
    engine: str,
    stream_chunk: int,
    kernel: str,
    policy: ResiliencePolicy,
    report: FailureReport | None,
) -> Iterator[tuple[object, ResultDag | CompiledResultDag | OperatorResult]]:
    """The serial loop with guards, fault hooks and quarantine engaged."""
    scratch = (
        EvaluationScratch(compiled) if isinstance(compiled, CompiledEVA) else None
    )
    budget = policy.budget
    if policy.faults is not None:
        resilience.install_fault_plan(policy.faults)
    try:
        for doc_id, document in pairs:
            try:
                if budget is not None:
                    budget.check_document(document)
                result = _evaluate_one(
                    compiled, document, engine, scratch, stream_chunk, kernel
                )
                if budget is not None:
                    budget.check_result(result)
            except Exception as error:
                if policy.quarantine and report is not None:
                    stage = "guard" if _is_guard_error(error) else "evaluate"
                    report.quarantine(doc_id, stage, error)
                    continue
                raise
            yield doc_id, result
    finally:
        if policy.faults is not None:
            resilience.clear_fault_plan()


def _is_guard_error(error: BaseException) -> bool:
    return isinstance(error, ResourceLimitError)


def _isolate_chunk(
    supervised: SupervisedPool,
    chunk: list[tuple[object, object]],
    policy: ResiliencePolicy,
    report: FailureReport | None,
) -> list[tuple[object, tuple]]:
    """Re-run a failed chunk one document at a time, inline.

    The inline path runs without fault injection (it is the exactness
    backstop), so only documents that fail *deterministically* — guard
    trips, engine errors — surface here; each is quarantined (or raised,
    when quarantine is off) individually, and the chunk's healthy
    documents still produce their exact results.
    """
    out: list[tuple[object, tuple]] = []
    for pair in chunk:
        try:
            out.extend(supervised.run_inline(_process_chunk, [pair]))
        except Exception as error:
            if policy.quarantine and report is not None:
                stage = "guard" if _is_guard_error(error) else "evaluate"
                report.quarantine(pair[0], stage, error)
                continue
            raise
    return out


def _stream_batch(
    compiled: CompiledEVA | CompiledSubsetEVA | PhysicalOperator,
    collection: DocumentCollection,
    mode: str,
    engine: str,
    chunk_size: int,
    max_workers: int | None,
    stream_chunk: int,
    shard_min_chars: int | None = None,
    kernel: str = "auto",
    policy: ResiliencePolicy | None = None,
    report: FailureReport | None = None,
) -> Iterator[tuple[object, ResultDag | CompiledResultDag | OperatorResult]]:
    pairs = _pairs_of(collection)

    if mode == "serial":
        if policy is not None:
            yield from _serial_supervised(
                compiled, pairs, engine, stream_chunk, kernel, policy, report
            )
            return
        scratch = (
            EvaluationScratch(compiled) if isinstance(compiled, CompiledEVA) else None
        )
        for doc_id, document in pairs:
            yield doc_id, _evaluate_one(
                compiled, document, engine, scratch, stream_chunk, kernel
            )
        return

    # Process mode is always supervised: with no explicit policy the
    # defaults bound hangs (per-task deadline), absorb worker crashes
    # (retry → one rebuild → exact inline fallback) and fail fast with a
    # typed error on poison documents.
    if policy is None:
        policy = resilience.DEFAULT_POLICY
    workers = max_workers or os.cpu_count() or 1

    def inline_setup():
        saved = (
            _worker_compiled,
            _worker_scratch,
            _worker_engine,
            _worker_stream_chunk,
            _worker_kernel,
            _worker_budget,
            sharding._WORKER_COMPILED,
            sharding._WORKER_FAST_PATH,
        )
        # Same initializer the workers run, minus the fault plan: the
        # inline path is the exactness backstop and must never fault.
        _init_worker(compiled, engine, stream_chunk, kernel, policy.budget, None)
        resilience.clear_fault_plan()

        def teardown():
            global _worker_compiled, _worker_scratch, _worker_engine
            global _worker_stream_chunk, _worker_kernel, _worker_budget
            (
                _worker_compiled,
                _worker_scratch,
                _worker_engine,
                _worker_stream_chunk,
                _worker_kernel,
                _worker_budget,
                sharding._WORKER_COMPILED,
                sharding._WORKER_FAST_PATH,
            ) = saved

        return teardown

    supervised = SupervisedPool(
        workers,
        initializer=_init_worker,
        initargs=(compiled, engine, stream_chunk, kernel, policy.budget, policy.faults),
        inline_setup=inline_setup,
        policy=policy,
        report=report,
    )
    try:
        # Outsized documents first, each sharded across the whole pool
        # (every worker already holds the automaton via the initializer);
        # the per-document fan-out below then only sees the small ones.
        sharded: dict[object, CompiledResultDag] = {}
        shard_ids: set[object] = set()
        if shard_min_chars is not None:
            shard_ids = {
                doc_id
                for doc_id, document in collection.items()
                if len(document) >= shard_min_chars
            }
            if shard_ids:
                submitter = sharding.adapt_pool(supervised.raw_pool, workers)
                for doc_id, document in collection.items():
                    if doc_id in shard_ids:
                        try:
                            if policy.budget is not None:
                                policy.budget.check_document(document)
                            result = sharding.evaluate_sharded(
                                compiled,
                                document,
                                pool=submitter,
                                shards=workers,
                                kernel=kernel,
                                policy=policy,
                            )
                            if policy.budget is not None:
                                policy.budget.check_result(result)
                        except ReproError as error:
                            if policy.quarantine and report is not None:
                                stage = (
                                    "guard" if _is_guard_error(error) else "evaluate"
                                )
                                report.quarantine(doc_id, stage, error)
                                continue
                            raise
                        sharded[doc_id] = result

        # Small documents: bounded-window supervised pipeline, collected
        # in submission order so yields stay in collection order.
        small = (pair for pair in pairs if pair[0] not in shard_ids)
        chunks = _chunked(small, chunk_size)
        window: deque = deque()
        capacity = max(2, workers * 2)

        def refill() -> None:
            while len(window) < capacity:
                chunk = next(chunks, None)
                if chunk is None:
                    return
                window.append((chunk, supervised.submit(_process_chunk, chunk)))

        refill()
        ready: deque = deque()

        def advance() -> bool:
            """Collect the next chunk into ``ready``; False when drained."""
            if not window:
                return False
            chunk, task = window.popleft()
            refill()
            try:
                ready.extend(supervised.collect(task))
            except Exception:
                # A failure somewhere in the chunk: isolate per document
                # (inline, exact) so only the poison one is lost.
                ready.extend(_isolate_chunk(supervised, chunk, policy, report))
            return True

        for doc_id, _document in collection.items():
            if doc_id in shard_ids:
                if doc_id in sharded:
                    yield doc_id, sharded[doc_id]
                continue  # quarantined sharded document: omitted
            while not ready and advance():
                pass
            if ready and ready[0][0] == doc_id:
                small_id, portable = ready.popleft()
                yield small_id, thaw_result(portable, compiled)
            # else: no result arrived for doc_id — it was quarantined
            # during chunk isolation; the report carries its record.
    except BaseException:
        # Error path (including an early generator close): in-flight
        # tasks are abandoned, so a hard terminate is the right teardown.
        supervised.terminate()
        raise
    else:
        # Clean completion: every submitted task has been collected, so
        # close/join gracefully instead of tearing workers down mid-exit.
        supervised.close()
