"""The integer-only inner evaluation loop over a :class:`CompiledEVA`.

This is Algorithm 1 again — the same capturing/reading alternation and the
same lazy-list DAG construction as the reference engine in
:mod:`repro.enumeration.evaluate` — but operating purely on ints:

* live states are slots in a flat list indexed by state id (no hashing),
* the document is translated once into symbol ids, so the reading phase is
  two list indexings per live state and character,
* marker sets are referenced by id and only materialized into DAG nodes,
* the per-document state arrays live in an :class:`EvaluationScratch` that
  batch callers reuse across documents, so steady-state evaluation
  allocates only the DAG it returns.

The produced :class:`~repro.enumeration.evaluate.ResultDag` is keyed by the
original automaton states, so enumeration, counting and the delay profiler
work on it unchanged.
"""

from __future__ import annotations

from repro.core.documents import as_text
from repro.core.errors import EvaluationError
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.evaluate import ResultDag
from repro.enumeration.lazylist import LazyList
from repro.runtime.compiled import CompiledEVA

__all__ = ["EvaluationScratch", "evaluate_compiled"]


class EvaluationScratch:
    """Reusable per-document work buffers for :func:`evaluate_compiled`.

    Holds the two state-indexed slot arrays that the engine ping-pongs
    between phases.  A scratch is tied to the state count of the automaton
    it was created for; the batch engine keeps one per worker.
    """

    __slots__ = ("num_states", "current", "pending")

    def __init__(self, compiled: CompiledEVA) -> None:
        self.num_states = compiled.num_states
        self.current: list[LazyList | None] = [None] * self.num_states
        self.pending: list[LazyList | None] = [None] * self.num_states


def evaluate_compiled(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
) -> ResultDag:
    """Run the constant-delay preprocessing on the compiled automaton.

    Equivalent to :func:`repro.enumeration.evaluate.evaluate` on
    ``compiled.source`` (the property suite asserts this), at a fraction of
    the per-character cost.  Pass a reused *scratch* when evaluating many
    documents with the same automaton.
    """
    text = as_text(document)
    n = len(text)

    if scratch is None:
        scratch = EvaluationScratch(compiled)
    elif scratch.num_states != compiled.num_states:
        raise EvaluationError(
            "the evaluation scratch was created for a different automaton "
            f"({scratch.num_states} states, expected {compiled.num_states})"
        )

    current = scratch.current
    pending = scratch.pending
    variable_table = compiled.variable_table
    letter_table = compiled.letter_table
    marker_sets = compiled.marker_sets

    initial_list = LazyList()
    initial_list.add(BOTTOM)
    initial = compiled.initial
    current[initial] = initial_list
    active = [initial]

    position = 0
    for symbol in compiled.encode_text(text):
        # Capturing phase: simulate the extended variable transitions at
        # `position`.  The snapshot is taken before any additions so that a
        # transition's source list is its pre-phase value.
        snapshot = [
            (state, current[state].lazycopy()) for state in active if variable_table[state]
        ]
        for state, old_list in snapshot:
            for set_id, target in variable_table[state]:
                node = DagNode(marker_sets[set_id], position, old_list)
                target_list = current[target]
                if target_list is None:
                    target_list = LazyList()
                    current[target] = target_list
                    active.append(target)
                target_list.add(node)

        # Reading phase: consume the character, moving every live list
        # through its (unique) letter transition.  symbol < 0 means the
        # character is outside the compiled alphabet: every run dies.
        next_active: list[int] = []
        if symbol >= 0:
            for state in active:
                old_list = current[state]
                current[state] = None
                target = letter_table[state][symbol]
                if target < 0:
                    continue
                target_list = pending[target]
                if target_list is None:
                    target_list = LazyList()
                    pending[target] = target_list
                    next_active.append(target)
                target_list.append(old_list)
        else:
            for state in active:
                current[state] = None
        current, pending = pending, current
        active = next_active
        position += 1
        if not active:
            break

    # Final capturing phase at position n (no-op if no run survived).
    snapshot = [
        (state, current[state].lazycopy()) for state in active if variable_table[state]
    ]
    for state, old_list in snapshot:
        for set_id, target in variable_table[state]:
            node = DagNode(marker_sets[set_id], position, old_list)
            target_list = current[target]
            if target_list is None:
                target_list = LazyList()
                current[target] = target_list
                active.append(target)
            target_list.add(node)

    state_objects = compiled.state_objects
    final_lists = {}
    for state in compiled.final_ids:
        lazy_list = current[state]
        if lazy_list is not None and not lazy_list.is_empty():
            final_lists[state_objects[state]] = lazy_list

    # Release the slot arrays for the next document; the lazy lists that
    # escaped into the ResultDag are unaffected.
    for state in active:
        current[state] = None
    scratch.current = current
    scratch.pending = pending

    return ResultDag(compiled.source, n, final_lists)
