"""The integer-only evaluation entry points over a :class:`CompiledEVA`.

This is Algorithm 1 again — the same capturing/reading alternation and the
same lazy-list DAG construction as the reference engine in
:mod:`repro.enumeration.evaluate` — but operating purely on ints:

* live states are slots in a flat list indexed by state id (no hashing),
* the document is translated **once per alphabet classing** into a compact
  class-id buffer (:mod:`repro.runtime.encoding`) cached on the document,
  so the reading phase is two indexings per live state and character and
  repeated evaluations of one document skip the translation entirely,
* symbols with identical letter-table columns share one equivalence class,
  shrinking the dense rows; one extra all-dead *foreign* class absorbs
  out-of-alphabet characters, so the inner loops have no foreign branch,
* marker sets are referenced by id and only materialized into DAG nodes,
* the per-document state arrays live in an :class:`EvaluationScratch` that
  batch callers reuse across documents, so steady-state evaluation
  allocates only the DAG it returns,
* the live-state list is kept **sorted by state id** after every phase
  that could disorder it.  This canonical order makes each engine's arena
  a pure function of ``(entry state set, buffer)`` — the invariant the
  shard-parallel engine (:mod:`repro.runtime.sharding`) relies on to
  replay shards independently and concatenate bit-identical fragments —
  and it costs one ``sort`` of a usually length-≤2 list per phase.

On top of that sits the **quiescent-run fast path**: when every live state
is *silent* (no extended variable transition), the capturing phase is a
guaranteed no-op and is skipped; when additionally exactly one run is live
— the overwhelmingly common case on sparse-match workloads, since a
deterministic reading phase never forks — the engine *sprints*: the run's
list/count is parked, and a compiled byte-pattern finds the next position
whose character class leaves the current state at C speed (for byte
buffers; a tight Python loop otherwise).  No arena cell, lazy list or
snapshot is touched while sprinting.

Since the kernel-spec refactor the loops themselves live in
:mod:`repro.runtime.kernel`: each entry point here binds one generated
kernel (one :class:`~repro.runtime.kernel.KernelSpec` point) at import
time and wraps it behind the stable public signature — encode the
document, borrow the scratch, run the kernel, collect the result, hand
the scratch back.  The generated loops are statement-for-statement the
hand-written ones this module used to carry, so arenas stay
bit-identical and the sprint fast path keeps its benchmarked floors.

The produced :class:`~repro.enumeration.evaluate.ResultDag` is keyed by the
original automaton states, so enumeration, counting and the delay profiler
work on it unchanged.
"""

from __future__ import annotations

from repro.core.errors import EvaluationError
from repro.enumeration.evaluate import ResultDag
from repro.enumeration.lazylist import LazyList
from repro.runtime.compiled import CompiledEVA
from repro.runtime.dag import NIL, CompiledResultDag
from repro.runtime.kernel import KernelSpec, build_kernel, sprint

__all__ = [
    "EvaluationScratch",
    "count_compiled",
    "evaluate_compiled",
    "evaluate_compiled_arena",
]

# Back-compat alias: the sprint helper moved to the kernel module with the
# kernel-spec refactor; sibling engines historically import it from here.
_sprint = sprint


class EvaluationScratch:
    """Reusable per-document work buffers for the compiled engines.

    Holds the state-indexed slot arrays that the engines ping-pong between
    phases: the legacy loop keeps per-state :class:`LazyList` slots, the
    arena loop per-state ``(start, end)`` cell-index pairs, and
    :func:`count_compiled` two per-state partial-run count rows.  A scratch
    is tied to the state count of the automaton it was created for; the
    batch engine keeps one per worker and the
    :class:`~repro.spanners.Spanner` facade one per cached alphabet (a
    scratch is single-threaded — share automata across threads, not
    scratches).
    """

    __slots__ = (
        "num_states",
        "current",
        "pending",
        "cur_start",
        "cur_end",
        "pend_start",
        "pend_end",
        "count_cur",
        "count_pend",
    )

    def __init__(self, compiled: CompiledEVA) -> None:
        self.num_states = compiled.num_states
        self.current: list[LazyList | None] = [None] * self.num_states
        self.pending: list[LazyList | None] = [None] * self.num_states
        self.cur_start = [NIL] * self.num_states
        self.cur_end = [NIL] * self.num_states
        self.pend_start = [NIL] * self.num_states
        self.pend_end = [NIL] * self.num_states
        self.count_cur = [0] * self.num_states
        self.count_pend = [0] * self.num_states


def _checked_scratch(
    compiled: CompiledEVA, scratch: EvaluationScratch | None
) -> EvaluationScratch:
    if scratch is None:
        return EvaluationScratch(compiled)
    if scratch.num_states != compiled.num_states:
        raise EvaluationError(
            "the evaluation scratch was created for a different automaton "
            f"({scratch.num_states} states, expected {compiled.num_states})"
        )
    return scratch


_lazylist_kernel = build_kernel(KernelSpec(capture="lazylist"))
_arena_kernel = build_kernel(KernelSpec(capture="arena"))
_count_kernel = build_kernel(KernelSpec(capture="count"))


def _collect_arena(
    compiled: CompiledEVA,
    n: int,
    scratch: EvaluationScratch,
    result: tuple,
) -> CompiledResultDag:
    """Turn an arena kernel's raw return into a :class:`CompiledResultDag`.

    Collects the final-state entry pairs, releases the borrowed slot
    arrays for the next document and writes the (possibly swapped) slot
    arrays back into the scratch.  Shared by the scalar arena engine and
    the run-length engine, which return the same tuple shape.
    """
    (
        active,
        cur_start,
        cur_end,
        pend_start,
        pend_end,
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
    ) = result

    is_final = compiled.is_final
    final_entries = []
    for state in active:
        if is_final[state] and cur_start[state] != NIL:
            final_entries.append((state, cur_start[state], cur_end[state]))

    for state in active:
        cur_start[state] = NIL
    scratch.cur_start = cur_start
    scratch.cur_end = cur_end
    scratch.pend_start = pend_start
    scratch.pend_end = pend_end

    return CompiledResultDag(
        compiled,
        n,
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
        final_entries,
    )


def evaluate_compiled(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> ResultDag:
    """Run the constant-delay preprocessing on the compiled automaton.

    Equivalent to :func:`repro.enumeration.evaluate.evaluate` on
    ``compiled.source`` (the property suite asserts this), at a fraction of
    the per-character cost.  Pass a reused *scratch* when evaluating many
    documents with the same automaton; ``fast_path=False`` disables the
    quiescent-run sprint (benchmark and test instrumentation only).
    """
    encoded = compiled.encode(document)
    buf = encoded.buffer
    n = encoded.length
    scratch = _checked_scratch(compiled, scratch)

    active, current, pending = _lazylist_kernel(compiled, buf, n, scratch, fast_path)

    state_objects = compiled.state_objects
    final_lists = {}
    for state in compiled.final_ids:
        lazy_list = current[state]
        if lazy_list is not None and not lazy_list.is_empty():
            final_lists[state_objects[state]] = lazy_list

    # Release the slot arrays for the next document; the lazy lists that
    # escaped into the ResultDag are unaffected.
    for state in active:
        current[state] = None
    scratch.current = current
    scratch.pending = pending

    return ResultDag(compiled.source, n, final_lists)


def evaluate_compiled_arena(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> CompiledResultDag:
    """Algorithm 1 on the dense tables, building the node arena natively.

    The same capturing/reading alternation as :func:`evaluate_compiled`,
    but no :class:`DagNode` or :class:`LazyList` object is ever created:
    DAG nodes are rows appended to parallel int arrays and lists are
    ``(start, end)`` cell-index pairs held in the scratch's slot arrays.
    The paper's ``lazycopy`` degenerates to copying two ints, ``add``
    appends one cell, and ``append`` splices by assigning one next-pointer
    (asserting the single-assignment discipline, as the object lists do).
    While a lone silent run sprints, not even the two ints move.

    Returns the flat :class:`CompiledResultDag`, on which enumeration and
    counting run integer-only (see :mod:`repro.runtime.dag`).
    """
    encoded = compiled.encode(document)
    buf = encoded.buffer
    n = encoded.length
    scratch = _checked_scratch(compiled, scratch)
    result = _arena_kernel(compiled, buf, n, scratch, fast_path)
    return _collect_arena(compiled, n, scratch, result)


def count_compiled(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> int:
    """Algorithm 3 (Theorem 5.1) on the dense integer tables.

    Keeps one partial-run count per state id in a flat list — the integer
    rewrite of :func:`repro.counting.count.count_mappings`.  No DAG, no
    dictionaries, ``O(|A| × |d|)`` time and ``O(|A|)`` space.  Like the
    evaluate engines, it accepts a reusable *scratch* (the same
    :class:`EvaluationScratch`; its two count rows are borrowed and
    returned zeroed) so batch and census callers allocate nothing per
    document, and it sprints through quiescent stretches.
    """
    encoded = compiled.encode(document)
    buf = encoded.buffer
    n = encoded.length
    scratch = _checked_scratch(compiled, scratch)

    active, counts, pending = _count_kernel(compiled, buf, n, scratch, fast_path)

    is_final = compiled.is_final
    total = sum(counts[state] for state in active if is_final[state])

    # Return the borrowed count rows zeroed for the next document.
    for state in active:
        counts[state] = 0
    scratch.count_cur = counts
    scratch.count_pend = pending

    return total
