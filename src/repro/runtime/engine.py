"""The integer-only inner evaluation loop over a :class:`CompiledEVA`.

This is Algorithm 1 again — the same capturing/reading alternation and the
same lazy-list DAG construction as the reference engine in
:mod:`repro.enumeration.evaluate` — but operating purely on ints:

* live states are slots in a flat list indexed by state id (no hashing),
* the document is translated **once per alphabet classing** into a compact
  class-id buffer (:mod:`repro.runtime.encoding`) cached on the document,
  so the reading phase is two indexings per live state and character and
  repeated evaluations of one document skip the translation entirely,
* symbols with identical letter-table columns share one equivalence class,
  shrinking the dense rows; one extra all-dead *foreign* class absorbs
  out-of-alphabet characters, so the inner loops have no foreign branch,
* marker sets are referenced by id and only materialized into DAG nodes,
* the per-document state arrays live in an :class:`EvaluationScratch` that
  batch callers reuse across documents, so steady-state evaluation
  allocates only the DAG it returns,
* the live-state list is kept **sorted by state id** after every phase
  that could disorder it.  This canonical order makes each engine's arena
  a pure function of ``(entry state set, buffer)`` — the invariant the
  shard-parallel engine (:mod:`repro.runtime.sharding`) relies on to
  replay shards independently and concatenate bit-identical fragments —
  and it costs one ``sort`` of a usually length-≤2 list per phase.

On top of that sits the **quiescent-run fast path**: when every live state
is *silent* (no extended variable transition), the capturing phase is a
guaranteed no-op and is skipped; when additionally exactly one run is live
— the overwhelmingly common case on sparse-match workloads, since a
deterministic reading phase never forks — the engine *sprints*: the run's
list/count is parked, and a compiled byte-pattern finds the next position
whose character class leaves the current state at C speed (for byte
buffers; a tight Python loop otherwise).  No arena cell, lazy list or
snapshot is touched while sprinting.

The produced :class:`~repro.enumeration.evaluate.ResultDag` is keyed by the
original automaton states, so enumeration, counting and the delay profiler
work on it unchanged.
"""

from __future__ import annotations

from repro.core.errors import EvaluationError, NotDeterministicError
from repro.enumeration.dag import BOTTOM, DagNode
from repro.enumeration.evaluate import ResultDag
from repro.enumeration.lazylist import LazyList
from repro.runtime.compiled import NO_TARGET, CompiledEVA
from repro.runtime.dag import NIL, CompiledResultDag

__all__ = [
    "EvaluationScratch",
    "count_compiled",
    "evaluate_compiled",
    "evaluate_compiled_arena",
]


class EvaluationScratch:
    """Reusable per-document work buffers for the compiled engines.

    Holds the state-indexed slot arrays that the engines ping-pong between
    phases: the legacy loop keeps per-state :class:`LazyList` slots, the
    arena loop per-state ``(start, end)`` cell-index pairs, and
    :func:`count_compiled` two per-state partial-run count rows.  A scratch
    is tied to the state count of the automaton it was created for; the
    batch engine keeps one per worker and the
    :class:`~repro.spanners.Spanner` facade one per cached alphabet (a
    scratch is single-threaded — share automata across threads, not
    scratches).
    """

    __slots__ = (
        "num_states",
        "current",
        "pending",
        "cur_start",
        "cur_end",
        "pend_start",
        "pend_end",
        "count_cur",
        "count_pend",
    )

    def __init__(self, compiled: CompiledEVA) -> None:
        self.num_states = compiled.num_states
        self.current: list[LazyList | None] = [None] * self.num_states
        self.pending: list[LazyList | None] = [None] * self.num_states
        self.cur_start = [NIL] * self.num_states
        self.cur_end = [NIL] * self.num_states
        self.pend_start = [NIL] * self.num_states
        self.pend_end = [NIL] * self.num_states
        self.count_cur = [0] * self.num_states
        self.count_pend = [0] * self.num_states


def _checked_scratch(
    compiled: CompiledEVA, scratch: EvaluationScratch | None
) -> EvaluationScratch:
    if scratch is None:
        return EvaluationScratch(compiled)
    if scratch.num_states != compiled.num_states:
        raise EvaluationError(
            "the evaluation scratch was created for a different automaton "
            f"({scratch.num_states} states, expected {compiled.num_states})"
        )
    return scratch


def _sprint(
    compiled: CompiledEVA, buf, pos: int, n: int, state: int, use_patterns: bool
) -> tuple[int, int]:
    """Advance a lone silent run until it stops being boring.

    Returns ``(state, pos)``.  ``state == NO_TARGET`` means the run died at
    ``pos``; otherwise either ``pos == n`` (document exhausted, *state*
    still live) or ``state`` is non-silent (a capturing phase is due at
    ``pos``).  Precondition: *state* is silent and ``pos < n``.

    With a ``bytes`` buffer, stretches where *state* self-loops are skipped
    by :meth:`CompiledEVA.sprint_pattern` — a C-level scan for the next
    class id that leaves the state — so the Python-level cost is one
    iteration per state *change*, not per character.
    """
    class_table = compiled.class_table
    silent = compiled.silent
    if use_patterns:
        while True:
            match = compiled.sprint_pattern(state).search(buf, pos)
            if match is None:
                return state, n
            pos = match.start()
            target = class_table[state][buf[pos]]
            pos += 1
            if target < 0:
                return NO_TARGET, pos
            state = target
            if pos >= n or not silent[state]:
                return state, pos
    row = class_table[state]
    while pos < n:
        target = row[buf[pos]]
        pos += 1
        if target < 0:
            return NO_TARGET, pos
        if target != state:
            if not silent[target]:
                return target, pos
            state = target
            row = class_table[state]
    return state, pos


def evaluate_compiled(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> ResultDag:
    """Run the constant-delay preprocessing on the compiled automaton.

    Equivalent to :func:`repro.enumeration.evaluate.evaluate` on
    ``compiled.source`` (the property suite asserts this), at a fraction of
    the per-character cost.  Pass a reused *scratch* when evaluating many
    documents with the same automaton; ``fast_path=False`` disables the
    quiescent-run sprint (benchmark and test instrumentation only).
    """
    encoded = compiled.encode(document)
    buf = encoded.buffer
    n = encoded.length
    scratch = _checked_scratch(compiled, scratch)

    current = scratch.current
    pending = scratch.pending
    variable_table = compiled.variable_table
    class_table = compiled.class_table
    silent = compiled.silent
    marker_sets = compiled.marker_sets
    use_patterns = fast_path and isinstance(buf, bytes)

    initial_list = LazyList()
    initial_list.add(BOTTOM)
    initial = compiled.initial
    current[initial] = initial_list
    active = [initial]
    quiet = silent[initial]

    def capturing(position: int) -> None:
        # Simulate the extended variable transitions at `position`.  The
        # snapshot is taken before any additions so that a transition's
        # source list is its pre-phase value.
        snapshot = [
            (state, current[state].lazycopy())
            for state in active
            if variable_table[state]
        ]
        for state, old_list in snapshot:
            for set_id, target in variable_table[state]:
                node = DagNode(marker_sets[set_id], position, old_list)
                target_list = current[target]
                if target_list is None:
                    target_list = LazyList()
                    current[target] = target_list
                    active.append(target)
                target_list.add(node)

    pos = 0
    while pos < n:
        if quiet and fast_path:
            if len(active) == 1:
                # Quiescent sprint: the lone silent run's list rides along
                # untouched while the reading-only loop below advances it.
                state = active[0]
                carried = current[state]
                current[state] = None
                state, pos = _sprint(compiled, buf, pos, n, state, use_patterns)
                if state < 0:
                    active = []
                    break
                current[state] = carried
                active[0] = state
                quiet = silent[state]
                if pos >= n:
                    break
            elif use_patterns:
                # Several silent runs: skip to the next class on which at
                # least one of them stops self-looping; everything before
                # it leaves the whole set (and its lists) untouched.
                match = compiled.sprint_pattern_multi(
                    tuple(sorted(active))
                ).search(buf, pos)
                if match is None:
                    pos = n
                    break
                pos = match.start()
        if not quiet:
            alive = len(active)
            capturing(pos)
            if len(active) > alive:
                # Restore the canonical (sorted-by-id) live order after
                # the capture phase appended fresh targets.
                active.sort()

        # Reading phase: consume the character class, moving every live
        # list through its (unique) letter transition.  The foreign class
        # column is all NO_TARGET, so out-of-alphabet characters kill every
        # run with no special case.
        symbol = buf[pos]
        pos += 1
        next_active: list[int] = []
        quiet = True
        for state in active:
            old_list = current[state]
            current[state] = None
            target = class_table[state][symbol]
            if target < 0:
                continue
            target_list = pending[target]
            if target_list is None:
                target_list = LazyList()
                pending[target] = target_list
                next_active.append(target)
                if quiet and not silent[target]:
                    quiet = False
            target_list.append(old_list)
        current, pending = pending, current
        if len(next_active) > 1:
            next_active.sort()
        active = next_active
        if not active:
            break

    # Final capturing phase at position n (no-op if no run survived or
    # every surviving run is silent).
    if active and not quiet:
        alive = len(active)
        capturing(pos)
        if len(active) > alive:
            active.sort()

    state_objects = compiled.state_objects
    final_lists = {}
    for state in compiled.final_ids:
        lazy_list = current[state]
        if lazy_list is not None and not lazy_list.is_empty():
            final_lists[state_objects[state]] = lazy_list

    # Release the slot arrays for the next document; the lazy lists that
    # escaped into the ResultDag are unaffected.
    for state in active:
        current[state] = None
    scratch.current = current
    scratch.pending = pending

    return ResultDag(compiled.source, n, final_lists)


def evaluate_compiled_arena(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> CompiledResultDag:
    """Algorithm 1 on the dense tables, building the node arena natively.

    The same capturing/reading alternation as :func:`evaluate_compiled`,
    but no :class:`DagNode` or :class:`LazyList` object is ever created:
    DAG nodes are rows appended to parallel int arrays and lists are
    ``(start, end)`` cell-index pairs held in the scratch's slot arrays.
    The paper's ``lazycopy`` degenerates to copying two ints, ``add``
    appends one cell, and ``append`` splices by assigning one next-pointer
    (asserting the single-assignment discipline, as the object lists do).
    While a lone silent run sprints, not even the two ints move.

    Returns the flat :class:`CompiledResultDag`, on which enumeration and
    counting run integer-only (see :mod:`repro.runtime.dag`).
    """
    encoded = compiled.encode(document)
    buf = encoded.buffer
    n = encoded.length
    scratch = _checked_scratch(compiled, scratch)

    cur_start = scratch.cur_start
    cur_end = scratch.cur_end
    pend_start = scratch.pend_start
    pend_end = scratch.pend_end
    variable_table = compiled.variable_table
    class_table = compiled.class_table
    silent = compiled.silent
    use_patterns = fast_path and isinstance(buf, bytes)

    node_markers: list[int] = []
    node_positions: list[int] = []
    node_starts: list[int] = []
    node_ends: list[int] = []
    cell_nodes: list[int] = [NIL]  # cell 0: the initial list [⊥]
    cell_nexts: list[int] = [NIL]

    initial = compiled.initial
    cur_start[initial] = 0
    cur_end[initial] = 0
    active = [initial]
    quiet = silent[initial]

    def capturing(position: int) -> None:
        # The (start, end) snapshot *is* the paper's lazycopy: pairs are
        # values, so the pre-phase lists are captured for free.
        snapshot = [
            (state, cur_start[state], cur_end[state])
            for state in active
            if variable_table[state]
        ]
        for state, old_start, old_end in snapshot:
            for set_id, target in variable_table[state]:
                node = len(node_markers)
                node_markers.append(set_id)
                node_positions.append(position)
                node_starts.append(old_start)
                node_ends.append(old_end)
                # add(node) on the target's list.
                cell = len(cell_nodes)
                cell_nodes.append(node)
                target_start = cur_start[target]
                cell_nexts.append(target_start)
                if target_start == NIL:
                    cur_end[target] = cell
                    active.append(target)
                cur_start[target] = cell

    pos = 0
    while pos < n:
        if quiet and fast_path:
            if len(active) == 1:
                # Quiescent sprint: park the (start, end) pair, chase
                # letter transitions only.  With a bytes buffer the chase
                # is a C-level pattern search per state change, not a
                # Python step per char.
                state = active[0]
                start = cur_start[state]
                end = cur_end[state]
                cur_start[state] = NIL
                state, pos = _sprint(compiled, buf, pos, n, state, use_patterns)
                if state < 0:
                    active = []
                    break
                cur_start[state] = start
                cur_end[state] = end
                active[0] = state
                quiet = silent[state]
                if pos >= n:
                    break
            elif use_patterns:
                # Several silent runs: skip to the next class on which at
                # least one of them stops self-looping; everything before
                # it leaves the whole set (and its pairs) untouched.
                match = compiled.sprint_pattern_multi(
                    tuple(sorted(active))
                ).search(buf, pos)
                if match is None:
                    pos = n
                    break
                pos = match.start()
        if not quiet:
            alive = len(active)
            capturing(pos)
            if len(active) > alive:
                # Restore the canonical (sorted-by-id) live order after
                # the capture phase appended fresh targets; the sharded
                # engine replays fragments assuming exactly this order.
                active.sort()

        # Reading phase: move every live pair through its (unique) letter
        # transition; the foreign class column is all NO_TARGET, so
        # out-of-alphabet characters kill every run uniformly.
        symbol = buf[pos]
        pos += 1
        next_active: list[int] = []
        quiet = True
        for state in active:
            old_start = cur_start[state]
            old_end = cur_end[state]
            cur_start[state] = NIL
            target = class_table[state][symbol]
            if target < 0:
                continue
            target_start = pend_start[target]
            if target_start == NIL:
                pend_start[target] = old_start
                pend_end[target] = old_end
                next_active.append(target)
                if quiet and not silent[target]:
                    quiet = False
            else:
                # append(old_list): splice at the end of the target's
                # pending list; the end cell's next must still be unset.
                end_cell = pend_end[target]
                if cell_nexts[end_cell] != NIL:
                    raise NotDeterministicError(
                        "arena append would overwrite a next pointer; the "
                        "compiled automaton is not deterministic"
                    )
                cell_nexts[end_cell] = old_start
                pend_end[target] = old_end
        cur_start, pend_start = pend_start, cur_start
        cur_end, pend_end = pend_end, cur_end
        if len(next_active) > 1:
            next_active.sort()
        active = next_active
        if not active:
            break

    # Final capturing phase at position n (no-op if no run survived or
    # every surviving run is silent).
    if active and not quiet:
        alive = len(active)
        capturing(pos)
        if len(active) > alive:
            active.sort()

    is_final = compiled.is_final
    final_entries = []
    for state in active:
        if is_final[state] and cur_start[state] != NIL:
            final_entries.append((state, cur_start[state], cur_end[state]))

    for state in active:
        cur_start[state] = NIL
    scratch.cur_start = cur_start
    scratch.cur_end = cur_end
    scratch.pend_start = pend_start
    scratch.pend_end = pend_end

    return CompiledResultDag(
        compiled,
        n,
        node_markers,
        node_positions,
        node_starts,
        node_ends,
        cell_nodes,
        cell_nexts,
        final_entries,
    )


def count_compiled(
    compiled: CompiledEVA,
    document: object,
    *,
    scratch: EvaluationScratch | None = None,
    fast_path: bool = True,
) -> int:
    """Algorithm 3 (Theorem 5.1) on the dense integer tables.

    Keeps one partial-run count per state id in a flat list — the integer
    rewrite of :func:`repro.counting.count.count_mappings`.  No DAG, no
    dictionaries, ``O(|A| × |d|)`` time and ``O(|A|)`` space.  Like the
    evaluate engines, it accepts a reusable *scratch* (the same
    :class:`EvaluationScratch`; its two count rows are borrowed and
    returned zeroed) so batch and census callers allocate nothing per
    document, and it sprints through quiescent stretches.
    """
    encoded = compiled.encode(document)
    buf = encoded.buffer
    n = encoded.length
    scratch = _checked_scratch(compiled, scratch)

    counts = scratch.count_cur
    pending = scratch.count_pend
    variable_table = compiled.variable_table
    class_table = compiled.class_table
    silent = compiled.silent
    use_patterns = fast_path and isinstance(buf, bytes)

    initial = compiled.initial
    counts[initial] = 1
    active = [initial]
    quiet = silent[initial]

    def capturing() -> None:
        snapshot = [
            (state, counts[state]) for state in active if variable_table[state]
        ]
        for state, amount in snapshot:
            for _set_id, target in variable_table[state]:
                if counts[target] == 0:
                    active.append(target)
                counts[target] += amount

    pos = 0
    while pos < n:
        if quiet and fast_path:
            if len(active) == 1:
                # Quiescent sprint: a lone silent run's count is invariant
                # under reading (deterministic transitions never fork).
                state = active[0]
                amount = counts[state]
                counts[state] = 0
                state, pos = _sprint(compiled, buf, pos, n, state, use_patterns)
                if state < 0:
                    active = []
                    break
                counts[state] = amount
                active[0] = state
                quiet = silent[state]
                if pos >= n:
                    break
            elif use_patterns:
                # Several silent runs: their counts are invariant until a
                # class leaves at least one of them.
                match = compiled.sprint_pattern_multi(
                    tuple(sorted(active))
                ).search(buf, pos)
                if match is None:
                    pos = n
                    break
                pos = match.start()
        if not quiet:
            alive = len(active)
            capturing()
            if len(active) > alive:
                active.sort()

        symbol = buf[pos]
        pos += 1
        next_active: list[int] = []
        quiet = True
        for state in active:
            amount = counts[state]
            counts[state] = 0
            if not amount:
                continue
            target = class_table[state][symbol]
            if target < 0:
                continue
            if pending[target] == 0:
                next_active.append(target)
                if quiet and not silent[target]:
                    quiet = False
            pending[target] += amount
        counts, pending = pending, counts
        if len(next_active) > 1:
            next_active.sort()
        active = next_active
        if not active:
            break

    if active and not quiet:
        alive = len(active)
        capturing()
        if len(active) > alive:
            active.sort()

    is_final = compiled.is_final
    total = sum(counts[state] for state in active if is_final[state])

    # Return the borrowed count rows zeroed for the next document.
    for state in active:
        counts[state] = 0
    scratch.count_cur = counts
    scratch.count_pend = pending

    return total
